//! The `txtime` command-line tool: execute scripts in the surface syntax
//! against a storage engine.
//!
//! ```text
//! txtime run script.txq                       # check + lint + execute, print displays
//! txtime run script.txq --no-check            # skip the static checker (and the lint)
//! txtime run script.txq --backend fwd-delta   # choose physical design
//! txtime run script.txq --wal journal.wal     # journal mutations
//! txtime recover journal.wal                  # rebuild + summarize
//! txtime check script.txq                     # static check + verify engine ≡ reference
//! txtime check script.txq --lint              # also run txtime-lint (W-series warnings)
//! txtime check script.txq --deny-warnings     # lint warnings become fatal
//! txtime stats script.txq                     # execute, report space/cache/exec counters
//! txtime stats script.txq --threads 4         # size the query worker pool
//! txtime stats script.txq --shards 4          # shard each relation's store 4 ways
//! txtime compact script.txq --every 8         # execute, then fold delta chains
//! txtime explain script.txq                   # print chosen plans for displays
//! txtime explain script.txq --optimize 2      # ...under cost-based plan search
//! txtime serve --listen 127.0.0.1:7617        # multi-session TCP server
//! txtime serve --wal journal.wal              # ...recovering + journaling durably
//! txtime serve --no-group-commit              # fsync per commit (baseline)
//! txtime stats --addr 127.0.0.1:7617          # gauges from a running server
//! ```
//!
//! `run` and `check` both start by parsing and statically checking the
//! script; diagnostics are printed as `file:line:col: error[E0xx]: ...`
//! and lint warnings as `file:line:col: warning[W0xx]: ...`. Exit code 0
//! on success, 1 on any parse/check/execution error. Warnings do not
//! affect the exit code unless `--deny-warnings` is given (which implies
//! `--lint`).

use std::num::NonZeroUsize;
use std::process::ExitCode;

use txtime::analyze::{lint_sentence, Diagnostic, Warning};
use txtime::core::{Command, CommandOutcome, Sentence, SentenceSpans};
use txtime::parser::parse_sentence_spanned;
use txtime::server::{Client, Failpoint, ServerConfig};
use txtime::storage::{
    check_equivalence, parse_auto_compact, recovery::recover, BackendKind, CheckpointPolicy, Engine,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => run(rest),
        Some((cmd, rest)) if cmd == "recover" => recover_cmd(rest),
        Some((cmd, rest)) if cmd == "check" => check(rest),
        Some((cmd, rest)) if cmd == "stats" => stats(rest),
        Some((cmd, rest)) if cmd == "compact" => compact(rest),
        Some((cmd, rest)) if cmd == "explain" => explain(rest),
        Some((cmd, rest)) if cmd == "serve" => serve_cmd(rest),
        _ => {
            eprintln!("usage: txtime <run|recover|check|stats|compact|explain|serve> <file> [--backend KIND] [--wal FILE] [--checkpoint K] [--threads N] [--shards K] [--every N] [--optimize L] [--auto-compact N] [--no-check] [--lint] [--deny-warnings]");
            eprintln!("       txtime serve [--listen ADDR] [--wal FILE] [--no-group-commit] [--max-sessions N] [tuning flags]");
            eprintln!("       txtime stats --addr ADDR    # gauges from a running server");
            eprintln!("backends: full-copy (default), fwd-delta, rev-delta, tuple-ts");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    /// The script (or journal) file. Optional because `serve` and
    /// `stats --addr` operate without one.
    file: Option<String>,
    backend: BackendKind,
    wal: Option<String>,
    checkpoint: CheckpointPolicy,
    no_check: bool,
    /// Run the `txtime-lint` pass and print W-series warnings.
    lint: bool,
    /// Treat lint warnings as errors (implies `lint`).
    deny_warnings: bool,
    /// Worker-pool size for query evaluation; `None` defers to the
    /// engine's default (`TXTIME_THREADS` / available parallelism).
    threads: Option<usize>,
    /// Shards per history-keeping relation; `None` defers to the
    /// engine's default (`TXTIME_SHARDS`, else unsharded).
    shards: Option<usize>,
    /// Fold interval for `txtime compact`; `None` defers to the
    /// checkpoint policy's own interval.
    every: Option<usize>,
    /// Optimization level 0/1/2; `None` defers to the engine's default
    /// (`TXTIME_OPTIMIZE`, else 1 = pushdown).
    optimize: Option<u8>,
    /// Opportunistic compaction threshold; `None` defers to the engine's
    /// default (`TXTIME_AUTO_COMPACT`, else 64).
    auto_compact: Option<NonZeroUsize>,
    /// `serve`: the address to listen on.
    listen: String,
    /// `serve`: fsync once per commit instead of once per group.
    no_group_commit: bool,
    /// `serve`: connection cap before `ERR busy`.
    max_sessions: usize,
    /// `stats`: query a running server instead of executing a script.
    addr: Option<String>,
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut file = None;
    let mut backend = BackendKind::FullCopy;
    let mut wal = None;
    let mut checkpoint = CheckpointPolicy::every_k(16).unwrap();
    let mut no_check = false;
    let mut lint = false;
    let mut deny_warnings = false;
    let mut threads = None;
    let mut shards = None;
    let mut every = None;
    let mut optimize = None;
    let mut auto_compact = None;
    let mut listen = "127.0.0.1:7617".to_string();
    let mut no_group_commit = false;
    let mut max_sessions = 64usize;
    let mut addr = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-check" => no_check = true,
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid shard count {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                shards = Some(n);
            }
            "--every" => {
                let v = it.next().ok_or("--every needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid compaction interval {v:?}"))?;
                if n == 0 {
                    return Err("--every must be at least 1".to_string());
                }
                every = Some(n);
            }
            "--optimize" => {
                let v = it.next().ok_or("--optimize needs a value")?;
                let n: u8 = v
                    .parse()
                    .map_err(|_| format!("invalid optimization level {v:?}"))?;
                if n > 2 {
                    return Err(
                        "--optimize takes 0 (as written), 1 (pushdown), or 2 (cost-based search)"
                            .to_string(),
                    );
                }
                optimize = Some(n);
            }
            "--auto-compact" => {
                let v = it.next().ok_or("--auto-compact needs a value")?;
                auto_compact = Some(parse_auto_compact(v)?);
            }
            "--listen" => listen = it.next().ok_or("--listen needs a value")?.clone(),
            "--no-group-commit" => no_group_commit = true,
            "--max-sessions" => {
                let v = it.next().ok_or("--max-sessions needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid session cap {v:?}"))?;
                if n == 0 {
                    return Err("--max-sessions must be at least 1".to_string());
                }
                max_sessions = n;
            }
            "--addr" => addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--lint" => lint = true,
            "--deny-warnings" => {
                lint = true;
                deny_warnings = true;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("invalid thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a value")?;
                backend = match v.as_str() {
                    "full-copy" => BackendKind::FullCopy,
                    "fwd-delta" | "forward-delta" => BackendKind::ForwardDelta,
                    "rev-delta" | "reverse-delta" => BackendKind::ReverseDelta,
                    "tuple-ts" | "tuple-timestamp" => BackendKind::TupleTimestamp,
                    other => return Err(format!("unknown backend {other:?}")),
                };
            }
            "--wal" => wal = Some(it.next().ok_or("--wal needs a value")?.clone()),
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a value")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("invalid checkpoint interval {v:?}"))?;
                // 0 keeps its CLI meaning of "no checkpoints".
                checkpoint = CheckpointPolicy::every_k(k).unwrap_or(CheckpointPolicy::Never);
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Options {
        file,
        backend,
        wal,
        checkpoint,
        no_check,
        lint,
        deny_warnings,
        threads,
        shards,
        every,
        optimize,
        auto_compact,
        listen,
        no_group_commit,
        max_sessions,
        addr,
    })
}

impl Options {
    /// The positional file argument, for the subcommands that need one.
    fn require_file(&self) -> Result<&str, String> {
        self.file
            .as_deref()
            .ok_or_else(|| "missing input file".to_string())
    }
}

/// Applies the `--threads`/`--shards`/`--optimize` tuning flags.
fn tune(engine: &mut Engine, opts: &Options) {
    if let Some(n) = opts.threads {
        engine.set_threads(n);
    }
    if let Some(k) = opts.shards {
        engine.set_shards(k);
    }
    if let Some(l) = opts.optimize {
        engine.set_optimize(l);
    }
    if let Some(n) = opts.auto_compact {
        engine.set_auto_compact(Some(n));
    }
}

/// Parses the script with spans and runs the static checker (plus, when
/// `lint`, the `txtime-lint` pass), printing diagnostics and warnings.
/// Returns the parsed sentence, whether it checked clean, and the number
/// of lint warnings — or `None` on a parse error (already reported).
fn parse_and_check(
    source: &str,
    file: &str,
    lint: bool,
) -> Option<(Sentence, SentenceSpans, bool, usize)> {
    let (sentence, spans) = match parse_sentence_spanned(source) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("parse error: {e}");
            return None;
        }
    };
    // The linter embeds the checker, so one sentence replay produces
    // both the E-series diagnostics and (when asked) the W-series.
    let report = lint_sentence(&sentence, Some(&spans));
    for d in &report.diagnostics {
        print_diagnostic(file, d);
    }
    let mut warnings = 0;
    if lint {
        for w in &report.warnings {
            print_warning(file, w);
        }
        warnings = report.warnings.len();
    }
    let clean = report.diagnostics.is_empty();
    Some((sentence, spans, clean, warnings))
}

fn print_diagnostic(file: &str, d: &Diagnostic) {
    if d.span.is_known() {
        eprintln!("{file}:{}: error[{}]: {}", d.span, d.code, d.message);
    } else {
        eprintln!("{file}: error[{}]: {}", d.code, d.message);
    }
    if let Some(h) = &d.help {
        eprintln!("  help: {h}");
    }
}

fn print_warning(file: &str, w: &Warning) {
    if w.span.is_known() {
        eprintln!("{file}:{}: warning[{}]: {}", w.span, w.code, w.message);
    } else {
        eprintln!("{file}: warning[{}]: {}", w.code, w.message);
    }
    if let Some(h) = &w.help {
        eprintln!("  help: {h}");
    }
}

fn run(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match opts.require_file() {
        Ok(f) => f.to_string(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // An engine always starts from the empty database (a WAL is appended
    // to, not replayed), so whole-sentence checking is exactly the state
    // the script will execute against. Lint warnings are printed but
    // never stop a run unless --deny-warnings asks them to.
    if !opts.no_check {
        match parse_and_check(&source, &file, true) {
            Some((_, _, true, warnings)) => {
                if warnings > 0 && opts.deny_warnings {
                    eprintln!("error: {warnings} lint warning(s) denied by --deny-warnings");
                    return ExitCode::FAILURE;
                }
            }
            Some((_, _, false, _)) => {
                eprintln!("error: static check failed (rerun with --no-check to force)");
                return ExitCode::FAILURE;
            }
            None => return ExitCode::FAILURE,
        }
    }
    let mut engine = match &opts.wal {
        Some(path) => match Engine::with_wal(opts.backend, opts.checkpoint, path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: cannot open WAL {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Engine::new(opts.backend, opts.checkpoint),
    };
    tune(&mut engine, &opts);
    match engine.execute_script(&source) {
        Ok(outcomes) => {
            for o in &outcomes {
                if let CommandOutcome::Displayed(state) = o {
                    println!("{state}");
                }
            }
            eprintln!(
                "ok: {} commands, clock at tx {}, {} relations",
                outcomes.len(),
                engine.tx(),
                engine.relations().len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn recover_cmd(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match opts.require_file() {
        Ok(f) => f.to_string(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match recover(&file, opts.backend, opts.checkpoint) {
        Ok(rec) => {
            eprintln!(
                "recovered {} commands; clock at tx {}; {} corrupt line(s) skipped",
                rec.replayed,
                rec.engine.tx(),
                rec.skipped.len()
            );
            for (line, reason) in &rec.skipped {
                eprintln!("  line {line}: {reason}");
            }
            for name in rec.engine.relations() {
                eprintln!(
                    "  {name}: {} ({} versions)",
                    rec.engine.relation_type(name).expect("listed"),
                    rec.engine.version_count(name).unwrap_or(0)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Executes the script and reports the physical picture: per-relation
/// space usage and the materialization-cache counters the run produced.
/// With `--addr`, instead asks a running `txtime serve` for its gauges.
fn stats(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = &opts.addr {
        return match Client::connect(addr.as_str()).and_then(|mut c| c.stats()) {
            Ok(report) => {
                let report = report.strip_prefix("OK stats\n").unwrap_or(&report);
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: cannot query {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let file = match opts.require_file() {
        Ok(f) => f.to_string(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut engine = Engine::new(opts.backend, opts.checkpoint);
    tune(&mut engine, &opts);
    if let Err(e) = engine.execute_script(&source) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!("{}", engine.space_report());
    print!("{}", engine.cache_stats());
    // Per-operator wall time and chunk counts from the worker pool (the
    // header echoes the thread budget the run used).
    print!("{}", engine.exec_stats());
    // Physical-join gauges: kernel invocations, build/probe volume, and
    // how many probe partitions the pool scheduled.
    println!("       {}", engine.join_stats());
    // The optimizer's counters: level, plan searches vs. plan-cache
    // hits, and the summed search work (plans enumerated, groups
    // memoized, rewrites fired).
    print!("{}", engine.optimizer_stats());
    // The view memo's counters, the hash-consed expression DAG behind
    // it, and the per-relation string pools inside the delta backends.
    print!("{}", engine.memo_stats());
    let (nodes, bytes) = engine.memo_interner_footprint();
    println!("       expr interner: {nodes} nodes / {bytes} bytes");
    for (name, interner) in engine.interner_report() {
        println!("pool:  {name}: {interner}");
    }
    // Shard layout and compaction counters, one block per
    // history-keeping relation.
    for (name, report) in engine.shard_reports() {
        print!("shards: {name}: {report}");
    }
    ExitCode::SUCCESS
}

/// Executes the script, then folds every relation's delta chain into
/// materialized checkpoints (`--every N` overrides the checkpoint
/// policy's own interval) and reports what the pass did.
fn compact(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match opts.require_file() {
        Ok(f) => f.to_string(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut engine = Engine::new(opts.backend, opts.checkpoint);
    tune(&mut engine, &opts);
    if let Err(e) = engine.execute_script(&source) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let every = opts.every.and_then(std::num::NonZeroUsize::new);
    let stats = engine.compact(every);
    println!(
        "compacted every {} versions: {stats}",
        every
            .unwrap_or_else(|| engine.default_compact_every())
            .get()
    );
    for (name, report) in engine.shard_reports() {
        print!("shards: {name}: {report}");
    }
    ExitCode::SUCCESS
}

/// Executes the script's mutations, but for each `display` prints the
/// plan the engine would run — the chosen tree annotated with per-node
/// cardinality/cost estimates and the rewrites that produced it —
/// instead of the evaluated state. Honors `--no-check`, `--lint`, and
/// `--deny-warnings` exactly as `run` does.
fn explain(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match opts.require_file() {
        Ok(f) => f.to_string(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sentence = if opts.no_check {
        match parse_sentence_spanned(&source) {
            Ok((s, _)) => s,
            Err(e) => {
                eprintln!("parse error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match parse_and_check(&source, &file, opts.lint || opts.deny_warnings) {
            Some((s, _, true, warnings)) => {
                if warnings > 0 && opts.deny_warnings {
                    eprintln!("error: {warnings} lint warning(s) denied by --deny-warnings");
                    return ExitCode::FAILURE;
                }
                s
            }
            Some((_, _, false, _)) => {
                eprintln!("error: static check failed (rerun with --no-check to force)");
                return ExitCode::FAILURE;
            }
            None => return ExitCode::FAILURE,
        }
    };
    let mut engine = Engine::new(opts.backend, opts.checkpoint);
    tune(&mut engine, &opts);
    let mut shown = 0;
    for cmd in sentence.commands() {
        match cmd {
            Command::Display(e) => {
                if shown > 0 {
                    println!();
                }
                println!("{}", engine.explain(e));
                shown += 1;
            }
            other => {
                if let Err(e) = engine.execute(other) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    eprintln!(
        "ok: {} plan(s) explained at optimize level {}",
        shown,
        engine.optimize_level()
    );
    ExitCode::SUCCESS
}

fn check(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match opts.require_file() {
        Ok(f) => f.to_string(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (sentence, warnings) = match parse_and_check(&source, &file, opts.lint) {
        Some((s, _, true, w)) => (s, w),
        Some((_, _, false, _)) => {
            eprintln!("static check: FAILED");
            return ExitCode::FAILURE;
        }
        None => return ExitCode::FAILURE,
    };
    if opts.lint {
        eprintln!(
            "parse: ok ({} commands); static check: ok; lint: {warnings} warning(s)",
            sentence.commands().len()
        );
    } else {
        eprintln!(
            "parse: ok ({} commands); static check: ok",
            sentence.commands().len()
        );
    }
    if warnings > 0 && opts.deny_warnings {
        eprintln!("error: {warnings} lint warning(s) denied by --deny-warnings");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for backend in BackendKind::ALL {
        match check_equivalence(sentence.commands(), backend, opts.checkpoint) {
            Ok(()) => eprintln!("{backend}: ≡ reference semantics"),
            Err(e) => {
                eprintln!("{backend}: DIVERGENCE — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Starts the multi-session server: recover the journal (if any), bind,
/// and serve until a client sends `SHUTDOWN`. Group commit is on by
/// default; `--no-group-commit` is the per-commit-fsync baseline.
fn serve_cmd(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A non-empty journal is replayed first so the transaction clock
    // continues where the last process stopped; the committer then
    // appends to the same file.
    let mut engine = match &opts.wal {
        Some(path)
            if std::fs::metadata(path)
                .map(|m| m.len() > 0)
                .unwrap_or(false) =>
        {
            match recover(path, opts.backend, opts.checkpoint) {
                Ok(rec) => {
                    eprintln!(
                        "recovered {} commands from {path}; clock at tx {}; {} corrupt line(s) skipped",
                        rec.replayed,
                        rec.engine.tx(),
                        rec.skipped.len()
                    );
                    rec.engine
                }
                Err(e) => {
                    eprintln!("error: cannot recover {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => Engine::new(opts.backend, opts.checkpoint),
    };
    tune(&mut engine, &opts);
    let listener = match std::net::TcpListener::bind(&opts.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServerConfig {
        wal_path: opts.wal.clone().map(std::path::PathBuf::from),
        group_commit: !opts.no_group_commit,
        max_sessions: opts.max_sessions,
        failpoint: Failpoint::from_env(),
        ..ServerConfig::default()
    };
    let handle = match txtime::server::serve(engine, listener, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "listening on {} ({}, group commit {})",
        handle.addr(),
        opts.backend,
        if opts.no_group_commit { "off" } else { "on" }
    );
    let report = handle.wait();
    eprint!("{}{}", report.sessions, report.group_commit);
    eprintln!(
        "stopped: clock at tx {}, {} relation(s)",
        report.engine.tx(),
        report.engine.relations().len()
    );
    ExitCode::SUCCESS
}
