//! The `txtime` command-line tool: execute scripts in the surface syntax
//! against a storage engine.
//!
//! ```text
//! txtime run script.txq                       # execute, print displays
//! txtime run script.txq --backend fwd-delta   # choose physical design
//! txtime run script.txq --wal journal.wal     # journal mutations
//! txtime recover journal.wal                  # rebuild + summarize
//! txtime check script.txq                     # parse + verify engine ≡ reference
//! ```
//!
//! Exit code 0 on success, 1 on any parse/execution error.

use std::process::ExitCode;

use txtime::core::CommandOutcome;
use txtime::parser::parse_sentence;
use txtime::storage::{
    check_equivalence, recovery::recover, BackendKind, CheckpointPolicy, Engine,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => run(rest),
        Some((cmd, rest)) if cmd == "recover" => recover_cmd(rest),
        Some((cmd, rest)) if cmd == "check" => check(rest),
        _ => {
            eprintln!("usage: txtime <run|recover|check> <file> [--backend KIND] [--wal FILE] [--checkpoint K]");
            eprintln!("backends: full-copy (default), fwd-delta, rev-delta, tuple-ts");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    file: String,
    backend: BackendKind,
    wal: Option<String>,
    checkpoint: CheckpointPolicy,
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut file = None;
    let mut backend = BackendKind::FullCopy;
    let mut wal = None;
    let mut checkpoint = CheckpointPolicy::EveryK(16);
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => {
                let v = it.next().ok_or("--backend needs a value")?;
                backend = match v.as_str() {
                    "full-copy" => BackendKind::FullCopy,
                    "fwd-delta" | "forward-delta" => BackendKind::ForwardDelta,
                    "rev-delta" | "reverse-delta" => BackendKind::ReverseDelta,
                    "tuple-ts" | "tuple-timestamp" => BackendKind::TupleTimestamp,
                    other => return Err(format!("unknown backend {other:?}")),
                };
            }
            "--wal" => wal = Some(it.next().ok_or("--wal needs a value")?.clone()),
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a value")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("invalid checkpoint interval {v:?}"))?;
                checkpoint = if k == 0 {
                    CheckpointPolicy::Never
                } else {
                    CheckpointPolicy::EveryK(k)
                };
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Options {
        file: file.ok_or("missing input file")?,
        backend,
        wal,
        checkpoint,
    })
}

fn run(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let mut engine = match &opts.wal {
        Some(path) => match Engine::with_wal(opts.backend, opts.checkpoint, path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: cannot open WAL {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Engine::new(opts.backend, opts.checkpoint),
    };
    match engine.execute_script(&source) {
        Ok(outcomes) => {
            for o in &outcomes {
                if let CommandOutcome::Displayed(state) = o {
                    println!("{state}");
                }
            }
            eprintln!(
                "ok: {} commands, clock at tx {}, {} relations",
                outcomes.len(),
                engine.tx(),
                engine.relations().len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn recover_cmd(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match recover(&opts.file, opts.backend, opts.checkpoint) {
        Ok(rec) => {
            eprintln!(
                "recovered {} commands; clock at tx {}; {} corrupt line(s) skipped",
                rec.replayed,
                rec.engine.tx(),
                rec.skipped.len()
            );
            for (line, reason) in &rec.skipped {
                eprintln!("  line {line}: {reason}");
            }
            for name in rec.engine.relations() {
                eprintln!(
                    "  {name}: {} ({} versions)",
                    rec.engine.relation_type(name).expect("listed"),
                    rec.engine.version_count(name).unwrap_or(0)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check(rest: &[String]) -> ExitCode {
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let sentence = match parse_sentence(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("parse: ok ({} commands)", sentence.commands().len());
    let mut failed = false;
    for backend in BackendKind::ALL {
        match check_equivalence(sentence.commands(), backend, opts.checkpoint) {
            Ok(()) => eprintln!("{backend}: ≡ reference semantics"),
            Err(e) => {
                eprintln!("{backend}: DIVERGENCE — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
