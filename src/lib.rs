#![warn(missing_docs)]

//! # txtime — a relational algebra extended with transaction time
//!
//! An implementation of McKenzie & Snodgrass, *Extending the Relational
//! Algebra to Support Transaction Time* (SIGMOD 1987): a command language
//! with denotational semantics whose expressions are a (slightly extended)
//! relational algebra, supporting snapshot, rollback, historical, and
//! temporal relations.
//!
//! This umbrella crate re-exports the workspace crates:
//!
//! * [`snapshot`] — the conventional relational model and the snapshot
//!   algebra (∪, −, ×, π, σ plus derived operators).
//! * [`historical`] — an historical algebra supporting valid time
//!   (historical states, ∪̂ −̂ ×̂ π̂ σ̂, and the valid-time operator δ).
//! * [`core`] — the paper's contribution: expressions with the rollback
//!   operators ρ/ρ̂, commands (`define_relation`, `modify_state`, …),
//!   sentences, and their denotational semantics.
//! * [`parser`] — a concrete surface syntax for sentences.
//! * [`storage`] — efficient storage backends (deltas, checkpoints,
//!   tuple-timestamping) observationally equivalent to the reference
//!   semantics, plus a WAL-backed engine.
//! * [`analyze`] — the static checker: expression typing (the paper's
//!   FINDTYPE, statically), command well-formedness, and structured
//!   `E0xx` diagnostics with source spans.
//! * [`optimizer`] — algebraic rewrite rules, all equivalence-preserving.
//! * [`txn`] — atomic transactions and a concurrency front-end preserving
//!   the paper's sequential commit-time semantics.
//! * [`benzvi`] — Ben-Zvi's time-relational model and Time-View operator,
//!   the baseline the paper compares against.
//! * [`server`] — `txtime serve`: a multi-session TCP front end with
//!   MVCC snapshot reads, group commit, and admission control.
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use txtime_analyze as analyze;
pub use txtime_benzvi as benzvi;
pub use txtime_core as core;
pub use txtime_historical as historical;
pub use txtime_optimizer as optimizer;
pub use txtime_parser as parser;
pub use txtime_server as server;
pub use txtime_snapshot as snapshot;
pub use txtime_storage as storage;
pub use txtime_txn as txn;
