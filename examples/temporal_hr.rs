//! Valid time × transaction time on a temporal relation: the classic
//! "employee department history" example.
//!
//! ```text
//! cargo run --example temporal_hr
//! ```
//!
//! A temporal relation records, at each transaction, the database's
//! *current belief about the entire history* of who worked where. The
//! two time dimensions answer different questions:
//!
//! * valid time    — when was alice in the cs department *in reality*?
//! * transaction time — when did the database *learn/believe* that?
//!
//! This is §4 of the paper: ρ̂ navigates transaction time, δ and
//! timeslice navigate valid time, and the two compose orthogonally.

use txtime::core::prelude::*;
use txtime::historical::{HistoricalState, TemporalElement, TemporalExpr, TemporalPred};
use txtime::snapshot::{DomainType, Schema, Tuple, Value};

/// Chronons are months since January 2020 in this example.
fn month(year: u32, month: u32) -> u32 {
    (year - 2020) * 12 + (month - 1)
}

fn main() {
    let schema = Schema::new(vec![("name", DomainType::Str), ("dept", DomainType::Str)])
        .expect("valid scheme");
    let fact = |name: &str, dept: &str| Tuple::new(vec![Value::str(name), Value::str(dept)]);

    // Belief v1 (recorded at tx 2): alice joined cs in Jan 2020, still
    // there; bob was in ee from Mar 2020.
    let v1 = HistoricalState::new(
        schema.clone(),
        vec![
            (
                fact("alice", "cs"),
                TemporalElement::from_chronon(month(2020, 1)),
            ),
            (
                fact("bob", "ee"),
                TemporalElement::from_chronon(month(2020, 3)),
            ),
        ],
    )
    .expect("valid history");

    // Belief v2 (tx 3): we learn alice actually transferred to ee in
    // June 2021 — a *retroactive correction* of the history.
    let v2 = HistoricalState::new(
        schema.clone(),
        vec![
            (
                fact("alice", "cs"),
                TemporalElement::period(month(2020, 1), month(2021, 6)),
            ),
            (
                fact("alice", "ee"),
                TemporalElement::from_chronon(month(2021, 6)),
            ),
            (
                fact("bob", "ee"),
                TemporalElement::from_chronon(month(2020, 3)),
            ),
        ],
    )
    .expect("valid history");

    // Belief v3 (tx 4): bob left the company at the end of 2021.
    let v3 = HistoricalState::new(
        schema.clone(),
        vec![
            (
                fact("alice", "cs"),
                TemporalElement::period(month(2020, 1), month(2021, 6)),
            ),
            (
                fact("alice", "ee"),
                TemporalElement::from_chronon(month(2021, 6)),
            ),
            (
                fact("bob", "ee"),
                TemporalElement::period(month(2020, 3), month(2022, 1)),
            ),
        ],
    )
    .expect("valid history");

    let db = Sentence::new(vec![
        Command::define_relation("staff", RelationType::Temporal),
        Command::modify_state("staff", Expr::historical_const(v1)),
        Command::modify_state("staff", Expr::historical_const(v2)),
        Command::modify_state("staff", Expr::historical_const(v3)),
    ])
    .expect("non-empty")
    .eval()
    .expect("valid sentence");

    // Q1: where was alice in August 2021, according to what we believed
    // at each point in transaction time?
    println!("Q1. alice's department in Aug 2021, per recorded belief:");
    for tx in 2..=4u64 {
        let belief = Expr::hrollback("staff", TxSpec::At(TransactionNumber(tx)))
            .eval(&db)
            .expect("rollback answers")
            .into_historical()
            .expect("historical state");
        let slice = belief.timeslice(month(2021, 8));
        let dept: Vec<String> = slice
            .iter()
            .filter(|t| t.get(0).as_str() == Some("alice"))
            .map(|t| t.get(1).as_str().unwrap_or("?").to_string())
            .collect();
        println!("  belief at tx {tx}: alice was in {:?}", dept);
    }
    // At tx 2 we believed cs; from tx 3 on we (retroactively) know ee.

    // Q2: δ — clip the current history to the 2021 calendar year.
    let year_2021 = TemporalElement::period(month(2021, 1), month(2022, 1));
    let q = Expr::hcurrent("staff").delta(
        TemporalPred::overlaps(
            TemporalExpr::ValidTime,
            TemporalExpr::constant(year_2021.clone()),
        ),
        TemporalExpr::intersect(TemporalExpr::ValidTime, TemporalExpr::constant(year_2021)),
    );
    let clipped = q
        .eval(&db)
        .expect("valid query")
        .into_historical()
        .expect("historical state");
    println!("\nQ2. staff assignments during 2021 (current belief):");
    for (t, e) in clipped.iter() {
        println!("  {} in {} over months {e}", t.get(0), t.get(1));
    }

    // Q3: orthogonality — valid-time and transaction-time lookups
    // commute. The corrected history only exists from tx 3 onward.
    let at = |tx: u64, valid: u32| {
        Expr::hrollback("staff", TxSpec::At(TransactionNumber(tx)))
            .eval(&db)
            .expect("rollback answers")
            .into_historical()
            .expect("historical")
            .timeslice(valid)
            .iter()
            .map(|t| format!("{}@{}", t.get(0), t.get(1)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("\nQ3. the two-dimensional lookup (transaction × valid):");
    println!("  (tx 2, Aug 2021): {}", at(2, month(2021, 8)));
    println!("  (tx 4, Aug 2021): {}", at(4, month(2021, 8)));
    println!("  (tx 4, Feb 2022): {}", at(4, month(2022, 2)));

    assert!(at(2, month(2021, 8)).contains("cs")); // old belief
    assert!(at(4, month(2021, 8)).contains("ee")); // corrected belief
    assert!(!at(4, month(2022, 2)).contains("bob")); // bob has left
    println!("\nall assertions hold: the dimensions are orthogonal.");
}
