//! Quickstart: the transaction-time language in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's core ideas end to end: define a rollback relation,
//! change its state with `modify_state` (append / delete / replace, all
//! through one command), and query the past with the rollback operator ρ.

use txtime::core::prelude::*;
use txtime::snapshot::{DomainType, Predicate, Schema, SnapshotState, Value};

fn main() {
    // A scheme for an employee relation.
    let schema = Schema::new(vec![
        ("name", DomainType::Str),
        ("dept", DomainType::Str),
        ("sal", DomainType::Int),
    ])
    .expect("valid scheme");

    let row = |name: &str, dept: &str, sal: i64| {
        vec![Value::str(name), Value::str(dept), Value::Int(sal)]
    };
    let state = |rows: Vec<Vec<Value>>| {
        Expr::snapshot_const(SnapshotState::from_rows(schema.clone(), rows).expect("valid rows"))
    };

    // A sentence: a command sequence evaluated from the empty database.
    // Every successful command commits at transaction number n+1.
    let sentence = Sentence::new(vec![
        // tx 1: define a rollback relation — it will remember everything.
        Command::define_relation("emp", RelationType::Rollback),
        // tx 2: initial load.
        Command::modify_state(
            "emp",
            state(vec![row("alice", "cs", 100), row("bob", "ee", 120)]),
        ),
        // tx 3: append — previous state ∪ the new tuple. ρ(emp, ∞) reads
        // the state *before* this command takes effect.
        Command::modify_state(
            "emp",
            Expr::current("emp").union(state(vec![row("carol", "cs", 90)])),
        ),
        // tx 4: replace — bob gets a raise (delete old tuple, add new).
        Command::modify_state(
            "emp",
            Expr::current("emp")
                .difference(state(vec![row("bob", "ee", 120)]))
                .union(state(vec![row("bob", "ee", 150)])),
        ),
        // tx 5: delete — carol leaves.
        Command::modify_state(
            "emp",
            Expr::current("emp").difference(state(vec![row("carol", "cs", 90)])),
        ),
    ])
    .expect("non-empty sentence");

    let db = sentence.eval().expect("all commands valid");
    println!("database clock is now at tx {}", db.tx);
    println!(
        "emp has {} recorded versions\n",
        db.state.lookup("emp").expect("defined").versions().len()
    );

    // The present: ρ(emp, ∞).
    let now = Expr::current("emp")
        .eval(&db)
        .expect("valid query")
        .into_snapshot()
        .expect("snapshot relation");
    println!("current state ρ(emp, ∞):\n  {now}\n");

    // The past: roll back to any transaction number. FINDSTATE
    // interpolates, so *every* transaction number is answerable.
    for tx in 2..=5 {
        let then = Expr::rollback("emp", TxSpec::At(TransactionNumber(tx)))
            .eval(&db)
            .expect("valid rollback")
            .into_snapshot()
            .expect("snapshot state");
        println!("as of tx {tx}: {} tuples", then.len());
    }
    println!();

    // The algebra composes over rollback results: who earned > 100 as of
    // tx 3, and what were their names?
    let query = Expr::rollback("emp", TxSpec::At(TransactionNumber(3)))
        .select(Predicate::gt_const("sal", Value::Int(100)))
        .project(vec!["name".into()]);
    let answer = query
        .eval(&db)
        .expect("valid query")
        .into_snapshot()
        .expect("snapshot state");
    println!("π_name(σ_sal>100(ρ(emp, 3))) = {answer}");

    // Rollback is side-effect-free: the database is untouched by queries.
    assert_eq!(db.tx, TransactionNumber(5));
    println!("\nqueries changed nothing: clock still at tx {}", db.tx);
}
