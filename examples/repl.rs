//! A tiny interactive REPL for the txtime language.
//!
//! ```text
//! cargo run --example repl
//! ```
//!
//! Enter commands terminated by `;`. Anything you `display(...)` is
//! printed; everything else mutates the in-memory engine. `\q` quits,
//! `\catalog` lists relations, `\versions r` shows a relation's recorded
//! history, `\memo` shows the incremental view memo's counters (queries
//! displayed more than once are registered automatically; later
//! modifications update their cached answers by delta propagation),
//! `\shards` shows each relation's shard layout and compaction counters,
//! `\optimize` shows (and `\optimize N` sets) the optimization level
//! with the planner's counters, `\plan expr` prints the plan the engine
//! would run for an expression — cost/cardinality estimates per node
//! and the rewrites that produced it — and `\lint` replays every
//! warning the session's lint pass has issued. Lint warnings print as
//! commands execute but never block them.
//!
//! ```text
//! txtime> define_relation(emp, rollback);
//! txtime> modify_state(emp, {(name: str): ("ada")});
//! txtime> display(rho(emp, inf));
//! (name: str) { ("ada") }
//! ```

use std::io::{BufRead, Write};

use txtime::analyze::Linter;
use txtime::core::{CommandOutcome, Expr, TxSpec};
use txtime::parser::{parse_command_spanned, parse_expr};
use txtime::storage::{BackendKind, CheckpointPolicy, Engine};

fn main() {
    let mut engine = Engine::new(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(16).unwrap(),
    );
    // The static linter (checker + lint pass) shadows the engine:
    // commands are checked against the state so far and rejected before
    // evaluation; only commands the engine actually executes are
    // committed to the linter's catalog, so the two can never drift
    // apart. Lint warnings are printed after execution and never block.
    let mut linter = Linter::new();
    let stdin = std::io::stdin();
    let mut buffer = String::new();

    println!(
        "txtime REPL — commands end with ';'. \\q quits, \\catalog lists relations, \\memo shows view-memo counters, \\shards shows shard/compaction layout, \\optimize [N] shows/sets the plan level, \\plan EXPR explains a query, \\lint lists this session's warnings."
    );
    print_prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();

        // Meta-commands work only at the start of an input.
        if buffer.trim().is_empty() {
            match trimmed {
                "\\q" | "\\quit" => break,
                "\\catalog" => {
                    for name in engine.relations() {
                        println!(
                            "  {name} : {} ({} versions)",
                            engine.relation_type(name).expect("listed"),
                            engine.version_count(name).unwrap_or(0)
                        );
                    }
                    print_prompt(&buffer);
                    continue;
                }
                "\\memo" => {
                    print!("{}", engine.memo_stats());
                    let (nodes, bytes) = engine.memo_interner_footprint();
                    println!("       expr interner: {nodes} nodes / {bytes} bytes");
                    print_prompt(&buffer);
                    continue;
                }
                "\\shards" => {
                    let reports = engine.shard_reports();
                    if reports.is_empty() {
                        println!("  no history-keeping relations");
                    }
                    for (name, report) in reports {
                        print!("  {name}: {report}");
                    }
                    print_prompt(&buffer);
                    continue;
                }
                "\\lint" => {
                    if linter.warnings().is_empty() {
                        println!("  no lint warnings this session");
                    }
                    for w in linter.warnings() {
                        println!("  {w}");
                    }
                    print_prompt(&buffer);
                    continue;
                }
                _ if trimmed.starts_with("\\optimize") => {
                    let arg = trimmed.trim_start_matches("\\optimize").trim();
                    if arg.is_empty() {
                        print!("{}", engine.optimizer_stats());
                    } else {
                        match arg.parse::<u8>() {
                            Ok(n) if n <= 2 => {
                                engine.set_optimize(n);
                                println!("  optimize level set to {}", engine.optimize_level());
                            }
                            _ => println!(
                                "  \\optimize takes 0 (as written), 1 (pushdown), or 2 (cost-based search)"
                            ),
                        }
                    }
                    print_prompt(&buffer);
                    continue;
                }
                _ if trimmed.starts_with("\\plan") => {
                    let text = trimmed.trim_start_matches("\\plan").trim();
                    let text = text.trim_end_matches(';');
                    if text.is_empty() {
                        println!("  usage: \\plan EXPR");
                    } else {
                        match parse_expr(text) {
                            Ok(e) => println!("{}", engine.explain(&e)),
                            Err(e) => println!("parse error: {e}"),
                        }
                    }
                    print_prompt(&buffer);
                    continue;
                }
                _ if trimmed.starts_with("\\versions") => {
                    let name = trimmed.trim_start_matches("\\versions").trim();
                    match engine.version_count(name) {
                        Some(n) => {
                            println!("  {name}: {n} recorded versions; current state:");
                            match engine.eval(&current_expr(&engine, name)) {
                                Ok(s) => println!("  {s}"),
                                Err(e) => println!("  <{e}>"),
                            }
                        }
                        None => println!("  no relation named {name:?}"),
                    }
                    print_prompt(&buffer);
                    continue;
                }
                _ => {}
            }
        }

        buffer.push_str(&line);
        buffer.push('\n');
        // Execute each complete ';'-terminated command in the buffer.
        while let Some(pos) = split_point(&buffer) {
            let (cmd_text, rest) = buffer.split_at(pos);
            let cmd_text = cmd_text.trim().trim_end_matches(';');
            let rest = rest.trim_start_matches(';').to_string();
            if !cmd_text.trim().is_empty() {
                match parse_command_spanned(cmd_text) {
                    Ok((cmd, spans)) => {
                        let diags = linter.check(&cmd, Some(&spans));
                        if diags.is_empty() {
                            let executed = match engine.execute(&cmd) {
                                Ok(CommandOutcome::Displayed(state)) => {
                                    println!("{state}");
                                    true
                                }
                                Ok(outcome) => {
                                    println!("ok ({outcome:?}, clock at tx {})", engine.tx());
                                    true
                                }
                                Err(e) => {
                                    println!("error: {e}");
                                    false
                                }
                            };
                            if executed {
                                // Non-fatal: the command already ran;
                                // warnings only explain what it wasted.
                                for w in linter.commit(&cmd, Some(&spans)) {
                                    println!("{w}");
                                }
                            }
                        } else {
                            for d in &diags {
                                println!("{d}");
                            }
                        }
                    }
                    Err(e) => println!("parse error: {e}"),
                }
            }
            buffer = rest;
        }
        print_prompt(&buffer);
    }
    println!(
        "\nbye — {} relations, clock at tx {}",
        engine.relations().len(),
        engine.tx()
    );
}

/// Finds the first top-level `;` (outside string literals).
fn split_point(s: &str) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ';' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

fn current_expr(engine: &Engine, name: &str) -> Expr {
    use txtime::core::RelationType;
    match engine.relation_type(name) {
        Some(RelationType::Historical | RelationType::Temporal) => {
            Expr::hrollback(name, TxSpec::Current)
        }
        _ => Expr::rollback(name, TxSpec::Current),
    }
}

fn print_prompt(buffer: &str) {
    if buffer.trim().is_empty() {
        print!("txtime> ");
    } else {
        print!("   ...> ");
    }
    let _ = std::io::stdout().flush();
}
