//! Compare the physical storage designs on one workload.
//!
//! ```text
//! cargo run --release --example storage_shootout
//! ```
//!
//! The paper deliberately specifies rollback relations as sequences of
//! *full* states and leaves physical design open (§1, §2). This example
//! loads the same 200-version history into all four backends, verifies
//! they answer identically, and prints the space/time trade-off each one
//! makes.

use std::time::Instant;

use txtime::core::{StateSource, TransactionNumber, TxSpec};
use txtime::storage::{BackendKind, CheckpointPolicy};
use txtime_bench::{engine_with_chain, version_chain};

fn main() {
    const VERSIONS: usize = 200;
    let chain = version_chain(VERSIONS, 300, 0.05);
    println!(
        "workload: {} versions of a 300-tuple relation, 5% churn per version\n",
        VERSIONS
    );

    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>14}",
        "backend", "bytes", "q(old) µs", "q(mid) µs", "q(now) µs"
    );

    let mut reference: Option<Vec<usize>> = None;
    for backend in BackendKind::ALL {
        let engine = engine_with_chain(backend, CheckpointPolicy::every_k(32).unwrap(), &chain);
        let bytes = engine.space_report().total_bytes();

        let mut row = format!("{:<16} {:>12}", backend.to_string(), bytes);
        let mut answers = Vec::new();
        for tx in [2u64, VERSIONS as u64 / 2, VERSIONS as u64 + 1] {
            let spec = TxSpec::At(TransactionNumber(tx));
            let t = Instant::now();
            let mut len = 0;
            for _ in 0..5 {
                len = engine
                    .resolve_rollback("r", spec, false)
                    .expect("probe answers")
                    .len();
            }
            let us = t.elapsed().as_secs_f64() * 1e6 / 5.0;
            answers.push(len);
            row.push_str(&format!(" {us:>14.1}"));
        }
        println!("{row}");

        // Every backend must agree with the first on every probe.
        match &reference {
            None => reference = Some(answers),
            Some(expected) => assert_eq!(
                &answers, expected,
                "{backend} disagreed with the reference answers"
            ),
        }
    }

    println!(
        "\nall backends returned identical states at every probe — the paper's\n\
         correctness criterion (§5): equivalence with the simple semantics."
    );
}
