//! An audit scenario on a rollback database, driven through the textual
//! surface language and the WAL-backed storage engine.
//!
//! ```text
//! cargo run --example audit_trail
//! ```
//!
//! A payroll relation is mutated over several transactions, including a
//! (deliberate) bad update. Because rollback relations are append-only —
//! "while only the most recent state of snapshot relations is saved, all
//! past states of rollback relations are saved" — the auditor can answer
//! *what did we believe, and when did we start believing it?* and the
//! engine can be rebuilt from its journal after a crash.

use txtime::core::{Expr, StateSource, TransactionNumber, TxSpec};
use txtime::parser::parse_sentence;
use txtime::storage::{recovery::recover, BackendKind, CheckpointPolicy, Engine};

fn main() {
    let wal_path = std::env::temp_dir().join(format!("txtime-audit-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);

    // The day's activity, as a script in the surface language.
    let script = r#"
        -- tx 1: payroll is born as a rollback relation: full audit trail.
        define_relation(payroll, rollback);

        -- tx 2: initial load.
        modify_state(payroll, {(name: str, sal: int):
            ("alice", 100), ("bob", 120), ("carol", 90)});

        -- tx 3: legitimate raise for alice.
        modify_state(payroll,
            (rho(payroll, inf) minus {(name: str, sal: int): ("alice", 100)})
            union {(name: str, sal: int): ("alice", 115)});

        -- tx 4: the BAD update — someone fat-fingers bob's salary.
        modify_state(payroll,
            (rho(payroll, inf) minus {(name: str, sal: int): ("bob", 120)})
            union {(name: str, sal: int): ("bob", 1200)});

        -- tx 5: correction, computed from the pre-mistake state:
        -- current − (what changed since tx 3) ∪ (bob as of tx 3).
        modify_state(payroll,
            (rho(payroll, inf) minus {(name: str, sal: int): ("bob", 1200)})
            union select[name = "bob"](rho(payroll, 3)));
    "#;
    let sentence = parse_sentence(script).expect("script parses");

    // Execute on a delta-compressed, journaled engine.
    let mut engine = Engine::with_wal(
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
        &wal_path,
    )
    .expect("journal opens");
    for cmd in sentence.commands() {
        engine.execute(cmd).expect("command valid");
    }

    println!("== audit: bob's salary across transaction time ==");
    for tx in 2..=engine.tx().0 {
        let state = engine
            .eval(&Expr::rollback(
                "payroll",
                TxSpec::At(TransactionNumber(tx)),
            ))
            .expect("rollback answers")
            .into_snapshot()
            .expect("snapshot state");
        let bob: Vec<String> = state
            .iter()
            .filter(|t| t.get(0).as_str() == Some("bob"))
            .map(|t| t.get(1).to_string())
            .collect();
        println!("  as of tx {tx}: bob earns {}", bob.join(", "));
    }

    // When was bob's salary wrong? Find transactions where it exceeded 500.
    let suspicious: Vec<u64> = (2..=engine.tx().0)
        .filter(|&tx| {
            engine
                .eval(
                    &Expr::rollback("payroll", TxSpec::At(TransactionNumber(tx))).select(
                        txtime::snapshot::Predicate::gt_const(
                            "sal",
                            txtime::snapshot::Value::Int(500),
                        ),
                    ),
                )
                .map(|s| !s.is_empty())
                .unwrap_or(false)
        })
        .collect();
    println!("\nsalaries exceeded 500 exactly during transactions: {suspicious:?}");
    assert_eq!(suspicious, vec![4]);

    // Crash! … and recovery from the journal.
    let live_tx = engine.tx();
    drop(engine);
    let rec = recover(
        &wal_path,
        BackendKind::ForwardDelta,
        CheckpointPolicy::every_k(8).unwrap(),
    )
    .expect("journal replays");
    println!(
        "\nrecovered {} commands from the journal; clock {} (live was {})",
        rec.replayed,
        rec.engine.tx(),
        live_tx
    );
    assert_eq!(rec.engine.tx(), live_tx);

    // The recovered engine still answers historical questions.
    let bad = rec
        .engine
        .resolve_rollback("payroll", TxSpec::At(TransactionNumber(4)), false)
        .expect("past state survives recovery");
    println!(
        "the bad state at tx 4 is still on record after recovery ({} tuples)",
        bad.len()
    );

    let _ = std::fs::remove_file(&wal_path);
}
