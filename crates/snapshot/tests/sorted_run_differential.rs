//! Differential property tests: the sorted-run merge kernels agree
//! byte-for-byte with the retained `BTreeSet` reference implementation
//! ([`txtime_snapshot::reference::RefSnapshot`]) — values *and* errors —
//! sequentially and across partitioned thread counts, including empty
//! operands and schema-mismatch boundary cases.

use proptest::prelude::*;

use txtime_exec::ExecPool;
use txtime_snapshot::generate::{self, GenConfig};
use txtime_snapshot::reference::RefSnapshot;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;
use txtime_snapshot::{DomainType, Predicate, Schema, SnapshotState, Tuple, Value};

fn fixed_schema() -> Schema {
    use DomainType::*;
    Schema::new(vec![("a0", Int), ("a1", Str), ("a2", Bool)]).unwrap()
}

/// A state over the shared schema; seed 0 is pinned to the empty state so
/// boundary cases always appear in every run.
fn arb_state() -> impl Strategy<Value = SnapshotState> {
    (any::<u64>(), 0usize..40).prop_map(|(seed, cardinality)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig {
            arity: 3,
            cardinality,
            int_range: 12,
            str_pool: 6,
        };
        generate::random_state(&mut rng, &fixed_schema(), &cfg)
    })
}

/// A right operand that is sometimes union-compatible, sometimes a
/// disjoint product operand, and sometimes an *incompatible* scheme — so
/// the same differential assertions also pin error selection.
fn arb_other() -> impl Strategy<Value = SnapshotState> {
    (any::<u64>(), 0usize..3, 0usize..20).prop_map(|(seed, kind, cardinality)| {
        use DomainType::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let (schema, arity) = match kind {
            0 => (fixed_schema(), 3),
            1 => (Schema::new(vec![("b0", Int), ("b1", Str)]).unwrap(), 2),
            _ => (Schema::new(vec![("a0", Str), ("a1", Int)]).unwrap(), 2),
        };
        let cfg = GenConfig {
            arity,
            cardinality,
            int_range: 12,
            str_pool: 6,
        };
        generate::random_state(&mut rng, &schema, &cfg)
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    any::<u64>().prop_map(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig {
            int_range: 12,
            str_pool: 6,
            ..GenConfig::default()
        };
        generate::random_predicate(&mut rng, &fixed_schema(), &cfg, 2)
    })
}

/// Projection targets: valid prefixes/subsets and an unknown attribute
/// (error case).
fn arb_attrs() -> impl Strategy<Value = Vec<&'static str>> {
    (0usize..6).prop_map(|i| match i {
        0 => vec!["a0"],
        1 => vec!["a1"],
        2 => vec!["a0", "a1"],
        3 => vec!["a0", "a1", "a2"],
        4 => vec!["a2", "a0"],
        _ => vec!["ghost"],
    })
}

/// Both sides reduced to a comparable form: states byte-for-byte, errors
/// by their debug rendering (the same `SnapshotError` values flow through
/// both implementations).
fn norm(r: txtime_snapshot::Result<SnapshotState>) -> Result<SnapshotState, String> {
    r.map_err(|e| format!("{e:?}"))
}

fn norm_ref(r: txtime_snapshot::Result<RefSnapshot>) -> Result<SnapshotState, String> {
    r.map(|s| s.to_state()).map_err(|e| format!("{e:?}"))
}

const THREADS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn union_matches_reference(a in arb_state(), b in arb_other()) {
        let (ra, rb) = (RefSnapshot::from_state(&a), RefSnapshot::from_state(&b));
        let expected = norm_ref(ra.union(&rb));
        prop_assert_eq!(norm(a.union(&b)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.union_par(&b, &pool)), expected.clone());
        }
    }

    #[test]
    fn difference_matches_reference(a in arb_state(), b in arb_other()) {
        let (ra, rb) = (RefSnapshot::from_state(&a), RefSnapshot::from_state(&b));
        let expected = norm_ref(ra.difference(&rb));
        prop_assert_eq!(norm(a.difference(&b)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.difference_par(&b, &pool)), expected.clone());
        }
    }

    #[test]
    fn product_matches_reference(a in arb_state(), b in arb_other()) {
        let (ra, rb) = (RefSnapshot::from_state(&a), RefSnapshot::from_state(&b));
        let expected = norm_ref(ra.product(&rb));
        prop_assert_eq!(norm(a.product(&b)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.product_par(&b, &pool)), expected.clone());
        }
    }

    #[test]
    fn project_matches_reference(a in arb_state(), attrs in arb_attrs()) {
        let ra = RefSnapshot::from_state(&a);
        let expected = norm_ref(ra.project(&attrs));
        prop_assert_eq!(norm(a.project(&attrs)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.project_par(&attrs, &pool)), expected.clone());
        }
    }

    #[test]
    fn select_matches_reference(a in arb_state(), pred in arb_predicate()) {
        let ra = RefSnapshot::from_state(&a);
        let expected = norm_ref(ra.select(&pred));
        prop_assert_eq!(norm(a.select(&pred)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.select_par(&pred, &pool)), expected.clone());
        }
        // A predicate compiled for the wrong scheme errors identically.
        let ghost = Predicate::eq_const("ghost", Value::Int(0));
        prop_assert_eq!(
            norm(a.select(&ghost)),
            norm_ref(ra.select(&ghost))
        );
    }

    #[test]
    fn apply_delta_matches_reference(
        a in arb_state(),
        b in arb_state(),
        c in arb_state(),
    ) {
        // Deltas drawn from real states exercise present and absent
        // tuples on both the removal and insertion sides, in unsorted
        // order with duplicates.
        let mut removed: Vec<Tuple> = b.iter().cloned().collect();
        removed.extend(a.iter().take(3).cloned());
        let mut added: Vec<Tuple> = c.iter().cloned().collect();
        added.reverse();
        let mut prod = a.clone();
        let mut reference = RefSnapshot::from_state(&a);
        prod.apply_delta(&removed, &added).unwrap();
        reference.apply_delta(&removed, &added).unwrap();
        prop_assert_eq!(reference.to_state(), prod);
    }
}
