//! Property-based tests of the classical snapshot-algebra laws.
//!
//! The paper's central compatibility claim is that adding transaction time
//! "preserve\[s\] all the properties of the snapshot algebra (e.g.,
//! commutativity of select, distributivity of select over join)". These
//! properties must therefore hold of our substrate; the optimizer crate
//! relies on every one of them.

use proptest::prelude::*;

use txtime_snapshot::generate::{self, GenConfig};
use txtime_snapshot::{Predicate, Schema, SnapshotState};

/// A deterministic schema shared by generated operands so that
/// union-compatibility holds by construction.
fn fixed_schema() -> Schema {
    use txtime_snapshot::DomainType::*;
    Schema::new(vec![("a0", Int), ("a1", Str), ("a2", Bool)]).unwrap()
}

fn arb_state() -> impl Strategy<Value = SnapshotState> {
    any::<u64>().prop_map(|seed| {
        use txtime_snapshot::rng::SeedableRng;
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        let cfg = GenConfig {
            arity: 3,
            cardinality: 24,
            int_range: 12,
            str_pool: 6,
        };
        generate::random_state(&mut rng, &fixed_schema(), &cfg)
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    any::<u64>().prop_map(|seed| {
        use txtime_snapshot::rng::SeedableRng;
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        let cfg = GenConfig {
            int_range: 12,
            str_pool: 6,
            ..GenConfig::default()
        };
        generate::random_predicate(&mut rng, &fixed_schema(), &cfg, 2)
    })
}

/// A disjoint-schema operand for product laws.
fn arb_right_state() -> impl Strategy<Value = SnapshotState> {
    any::<u64>().prop_map(|seed| {
        use txtime_snapshot::rng::SeedableRng;
        use txtime_snapshot::DomainType::*;
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        let schema = Schema::new(vec![("b0", Int), ("b1", Str)]).unwrap();
        let cfg = GenConfig {
            arity: 2,
            cardinality: 12,
            int_range: 12,
            str_pool: 6,
        };
        generate::random_state(&mut rng, &schema, &cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_commutative(a in arb_state(), b in arb_state()) {
        prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
    }

    #[test]
    fn union_associative(a in arb_state(), b in arb_state(), c in arb_state()) {
        prop_assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
    }

    #[test]
    fn union_idempotent(a in arb_state()) {
        prop_assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn intersect_commutative(a in arb_state(), b in arb_state()) {
        prop_assert_eq!(a.intersect(&b).unwrap(), b.intersect(&a).unwrap());
    }

    #[test]
    fn intersect_equals_double_difference(a in arb_state(), b in arb_state()) {
        let lhs = a.intersect(&b).unwrap();
        let rhs = a.difference(&a.difference(&b).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn difference_absorbs_union(a in arb_state(), b in arb_state()) {
        // (A ∪ B) − B = A − B
        let lhs = a.union(&b).unwrap().difference(&b).unwrap();
        let rhs = a.difference(&b).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_commutes(a in arb_state(), f in arb_predicate(), g in arb_predicate()) {
        let lhs = a.select(&f).unwrap().select(&g).unwrap();
        let rhs = a.select(&g).unwrap().select(&f).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_cascade_is_conjunction(a in arb_state(), f in arb_predicate(), g in arb_predicate()) {
        let lhs = a.select(&f).unwrap().select(&g).unwrap();
        let rhs = a.select(&f.clone().and(g.clone())).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_distributes_over_union(a in arb_state(), b in arb_state(), f in arb_predicate()) {
        let lhs = a.union(&b).unwrap().select(&f).unwrap();
        let rhs = a.select(&f).unwrap().union(&b.select(&f).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_distributes_over_difference(a in arb_state(), b in arb_state(), f in arb_predicate()) {
        let lhs = a.difference(&b).unwrap().select(&f).unwrap();
        let rhs = a.select(&f).unwrap().difference(&b.select(&f).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_pushes_through_product(a in arb_state(), b in arb_right_state(), f in arb_predicate()) {
        // f references only left attributes, so σ_f(A × B) = σ_f(A) × B —
        // the "distributivity of select over join" the paper cites.
        let lhs = a.product(&b).unwrap().select(&f).unwrap();
        let rhs = a.select(&f).unwrap().product(&b).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_negation_partitions(a in arb_state(), f in arb_predicate()) {
        let sel = a.select(&f).unwrap();
        let neg = a.select(&f.clone().not()).unwrap();
        prop_assert_eq!(sel.union(&neg).unwrap(), a.clone());
        prop_assert!(sel.intersect(&neg).unwrap().is_empty());
    }

    #[test]
    fn de_morgan_for_predicates(a in arb_state(), f in arb_predicate(), g in arb_predicate()) {
        let lhs = a.select(&f.clone().and(g.clone()).not()).unwrap();
        let rhs = a.select(&f.clone().not().or(g.clone().not())).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn projection_distributes_over_union(a in arb_state(), b in arb_state()) {
        let attrs = ["a0", "a1"];
        let lhs = a.union(&b).unwrap().project(&attrs).unwrap();
        let rhs = a.project(&attrs).unwrap().union(&b.project(&attrs).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn projection_cascade_absorbs(a in arb_state()) {
        // π_{a0}(π_{a0,a1}(A)) = π_{a0}(A)
        let lhs = a.project(&["a0", "a1"]).unwrap().project(&["a0"]).unwrap();
        let rhs = a.project(&["a0"]).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_then_project_when_predicate_survives(a in arb_state(), f in arb_predicate()) {
        // If f only mentions projected attributes, π and σ interchange.
        let attrs = ["a0", "a1", "a2"];
        let lhs = a.select(&f).unwrap().project(&attrs).unwrap();
        let rhs = a.project(&attrs).unwrap().select(&f).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn product_distributes_over_union(a in arb_state(), b in arb_state(), c in arb_right_state()) {
        let lhs = a.union(&b).unwrap().product(&c).unwrap();
        let rhs = a.product(&c).unwrap().union(&b.product(&c).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn semijoin_antijoin_partition(a in arb_state(), b in arb_state()) {
        let semi = a.semijoin(&b).unwrap();
        let anti = a.antijoin(&b).unwrap();
        prop_assert_eq!(semi.union(&anti).unwrap(), a.clone());
        prop_assert!(semi.intersect(&anti).unwrap().is_empty());
    }

    #[test]
    fn natural_join_with_self_is_identity(a in arb_state()) {
        prop_assert_eq!(a.natural_join(&a).unwrap(), a);
    }

    #[test]
    fn division_matches_classical_derivation(a in arb_state(), b in arb_right_state()) {
        // R ÷ S = π_Q(R) − π_Q((π_Q(R) × S) − R), over R = A × B with
        // divisor S ⊆ π_B-attrs(R): build R as a product so the schemes
        // line up by construction.
        let r = a.product(&b).unwrap();
        let divisor = b.clone();
        let q_attrs: Vec<String> = a
            .schema()
            .attributes()
            .iter()
            .map(|at| at.name.to_string())
            .collect();

        let direct = r.divide(&divisor).unwrap();

        let pq = r.project(&q_attrs).unwrap();
        let recombined = pq.product(&divisor).unwrap();
        // Reorder recombined to r's attribute order before the difference.
        let r_order: Vec<String> = r
            .schema()
            .attributes()
            .iter()
            .map(|at| at.name.to_string())
            .collect();
        let missing = recombined
            .project(&r_order)
            .unwrap()
            .difference(&r)
            .unwrap();
        let derived = pq
            .difference(&missing.project(&q_attrs).unwrap())
            .unwrap();
        prop_assert_eq!(direct, derived);
    }

    #[test]
    fn theta_join_is_select_of_product(a in arb_state(), b in arb_right_state(), f in arb_predicate()) {
        // With f over left attributes only, ⋈_f = σ_f ∘ ×.
        let lhs = a.theta_join(&b, &f).unwrap();
        let rhs = a.product(&b).unwrap().select(&f).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rename_round_trips(a in arb_state()) {
        let renamed = a.rename("a0", "zz").unwrap();
        prop_assert!(renamed.schema().contains("zz"));
        prop_assert_eq!(renamed.rename("zz", "a0").unwrap(), a);
    }
}
