//! Attribute values and their domains.
//!
//! The paper assumes "a set of domains 𝓓 = {𝓓₁ … 𝓓ₘ}, where each domain is
//! an arbitrary, non-empty, finite or countably infinite set". We provide
//! four concrete domains — integers, reals, booleans, and character
//! strings — which is enough to express every example in the temporal
//! database literature while keeping values totally ordered and hashable
//! (required for set-based states and deterministic display).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::domain::DomainType;

/// A finite IEEE-754 double with total equality, ordering, and hashing.
///
/// NaN is rejected at construction so that `Real` can participate in the
/// set-based [`crate::SnapshotState`] representation. The ordering is the
/// IEEE total order restricted to non-NaN values (i.e. the usual `<`).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Real(f64);

impl Real {
    /// Creates a `Real`, returning `None` for NaN.
    pub fn new(v: f64) -> Option<Real> {
        if v.is_nan() {
            None
        } else {
            // Normalize -0.0 to 0.0 so bitwise hashing agrees with Eq.
            Some(Real(if v == 0.0 { 0.0 } else { v }))
        }
    }

    /// The underlying double.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for Real {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Real {}

impl PartialOrd for Real {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Real {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is excluded by construction.
        self.0.partial_cmp(&other.0).expect("Real is never NaN")
    }
}

impl std::hash::Hash for Real {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A single attribute value drawn from one of the supported domains.
///
/// Values are cheap to clone: strings are reference-counted. With the
/// per-relation interning pool (see [`crate::intern::StrInterner`]) equal
/// strings share one allocation, so the manual [`Ord`] below can settle
/// most string comparisons with a pointer check instead of a byte scan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// An element of the integer domain.
    Int(i64),
    /// An element of the real domain (finite, non-NaN).
    Real(Real),
    /// An element of the boolean domain.
    Bool(bool),
    /// An element of the character-string domain.
    Str(Arc<str>),
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// The derived total order (variants in declaration order, payloads by
    /// their own `Ord`), with one extra fast path: two `Str` values backed
    /// by the *same* allocation — the common case once a relation's
    /// strings are interned — compare equal without touching the bytes.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Value {
    /// Variant rank matching the declaration (and former derived) order.
    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Real(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for real values; panics on NaN.
    pub fn real(v: f64) -> Value {
        Value::Real(Real::new(v).expect("NaN is not a valid Real"))
    }

    /// The domain this value belongs to.
    pub fn domain(&self) -> DomainType {
        match self {
            Value::Int(_) => DomainType::Int,
            Value::Real(_) => DomainType::Real,
            Value::Bool(_) => DomainType::Bool,
            Value::Str(_) => DomainType::Str,
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the real payload, if this is a `Real`.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(r.get()),
            _ => None,
        }
    }

    /// Approximate heap + inline footprint in bytes, used by storage-space
    /// accounting (experiment E3).
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            _ => std::mem::size_of::<Value>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_rejects_nan() {
        assert!(Real::new(f64::NAN).is_none());
        assert!(Real::new(1.5).is_some());
    }

    #[test]
    fn real_normalizes_negative_zero() {
        let a = Real::new(0.0).unwrap();
        let b = Real::new(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.get().to_bits(), b.get().to_bits());
    }

    #[test]
    fn real_total_order() {
        let mut v = [
            Real::new(3.0).unwrap(),
            Real::new(-1.0).unwrap(),
            Real::new(f64::INFINITY).unwrap(),
            Real::new(0.0).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[3].get(), f64::INFINITY);
    }

    #[test]
    fn value_domains() {
        assert_eq!(Value::Int(1).domain(), DomainType::Int);
        assert_eq!(Value::real(1.0).domain(), DomainType::Real);
        assert_eq!(Value::Bool(true).domain(), DomainType::Bool);
        assert_eq!(Value::str("x").domain(), DomainType::Str);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::real(2.5).as_real(), Some(2.5));
    }

    #[test]
    fn value_ordering_within_domain() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::real(2.0).to_string(), "2.0");
    }

    #[test]
    fn str_size_accounts_for_payload() {
        assert!(Value::str("hello world").size_bytes() > Value::Int(0).size_bytes());
    }

    #[test]
    fn ordering_across_domains_follows_declaration_order() {
        let mut v = [
            Value::str("a"),
            Value::Bool(false),
            Value::real(1.0),
            Value::Int(5),
        ];
        v.sort();
        assert!(matches!(v[0], Value::Int(_)));
        assert!(matches!(v[1], Value::Real(_)));
        assert!(matches!(v[2], Value::Bool(_)));
        assert!(matches!(v[3], Value::Str(_)));
    }

    #[test]
    fn shared_string_allocation_compares_equal() {
        let a = Value::str("shared");
        let b = a.clone();
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        // Distinct allocations with equal contents still compare equal.
        assert_eq!(a.cmp(&Value::str("shared")), std::cmp::Ordering::Equal);
    }
}
