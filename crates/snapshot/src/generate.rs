//! Random generation of schemes, states, and predicates.
//!
//! Used by the benchmark workload generators (experiments E2–E4, E7) and
//! by differential tests in downstream crates. Generation is deterministic
//! given the caller's RNG, so every experiment is reproducible from a
//! seed.

use crate::rng::Rng;
use crate::rng::SliceRandom;

use crate::domain::DomainType;
use crate::predicate::{CompOp, Operand, Predicate};
use crate::schema::Schema;
use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::value::Value;

/// Parameters for random state generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of attributes in generated schemes.
    pub arity: usize,
    /// Number of tuples per generated state (before deduplication).
    pub cardinality: usize,
    /// Upper bound (exclusive) for generated integers; small bounds create
    /// collisions, which exercise the set semantics.
    pub int_range: i64,
    /// Pool size for generated strings.
    pub str_pool: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            arity: 3,
            cardinality: 32,
            int_range: 100,
            str_pool: 16,
        }
    }
}

/// Generates a scheme with `arity` attributes named `a0..`, with random
/// domains.
pub fn random_schema(rng: &mut impl Rng, arity: usize) -> Schema {
    let attrs: Vec<(String, DomainType)> = (0..arity.max(1))
        .map(|i| {
            let d = *[DomainType::Int, DomainType::Str, DomainType::Bool]
                .choose(rng)
                .expect("non-empty choices");
            (format!("a{i}"), d)
        })
        .collect();
    Schema::new(attrs).expect("generated scheme is valid")
}

/// Generates a random value of the given domain.
pub fn random_value(rng: &mut impl Rng, domain: DomainType, cfg: &GenConfig) -> Value {
    match domain {
        DomainType::Int => Value::Int(rng.gen_range(0..cfg.int_range)),
        DomainType::Real => Value::real((rng.gen_range(0..cfg.int_range) as f64) / 2.0),
        DomainType::Bool => Value::Bool(rng.gen()),
        DomainType::Str => Value::str(format!("s{}", rng.gen_range(0..cfg.str_pool))),
    }
}

/// Generates a random tuple for `schema`.
pub fn random_tuple(rng: &mut impl Rng, schema: &Schema, cfg: &GenConfig) -> Tuple {
    Tuple::new(
        schema
            .attributes()
            .iter()
            .map(|a| random_value(rng, a.domain, cfg))
            .collect(),
    )
}

/// Generates a random state over `schema`.
pub fn random_state(rng: &mut impl Rng, schema: &Schema, cfg: &GenConfig) -> SnapshotState {
    SnapshotState::new(
        schema.clone(),
        (0..cfg.cardinality).map(|_| random_tuple(rng, schema, cfg)),
    )
    .expect("generated tuples are valid")
}

/// Generates a random predicate of the given depth, valid for `schema`.
pub fn random_predicate(
    rng: &mut impl Rng,
    schema: &Schema,
    cfg: &GenConfig,
    depth: usize,
) -> Predicate {
    if depth == 0 {
        let idx = rng.gen_range(0..schema.arity());
        let attr = schema.attribute(idx);
        let op = *[
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ]
        .choose(rng)
        .expect("non-empty choices");
        // Occasionally compare to another attribute of the same domain.
        let same_domain: Vec<usize> = (0..schema.arity())
            .filter(|&i| i != idx && schema.attribute(i).domain == attr.domain)
            .collect();
        let rhs = if !same_domain.is_empty() && rng.gen_bool(0.3) {
            let other = *same_domain.choose(rng).expect("non-empty");
            Operand::attr(&*schema.attribute(other).name)
        } else {
            Operand::Const(random_value(rng, attr.domain, cfg))
        };
        return Predicate::Comp(Operand::attr(&*attr.name), op, rhs);
    }
    match rng.gen_range(0..4) {
        0 => random_predicate(rng, schema, cfg, depth - 1).and(random_predicate(
            rng,
            schema,
            cfg,
            depth - 1,
        )),
        1 => random_predicate(rng, schema, cfg, depth - 1).or(random_predicate(
            rng,
            schema,
            cfg,
            depth - 1,
        )),
        2 => random_predicate(rng, schema, cfg, depth - 1).not(),
        _ => random_predicate(rng, schema, cfg, 0),
    }
}

/// Applies a random mutation (insert / delete / replace mix) to `state`,
/// changing roughly `fraction` of its tuples. Used to generate version
/// histories for rollback experiments (E2/E3).
pub fn mutate_state(
    rng: &mut impl Rng,
    state: &SnapshotState,
    cfg: &GenConfig,
    fraction: f64,
) -> SnapshotState {
    let changes = ((state.len() as f64) * fraction).ceil() as usize;
    let changes = changes.max(1);
    let mut tuples = state.tuples();
    for _ in 0..changes {
        match rng.gen_range(0..3) {
            // insert
            0 => {
                tuples.insert(random_tuple(rng, state.schema(), cfg));
            }
            // delete
            1 => {
                if let Some(victim) = tuples
                    .iter()
                    .nth(rng.gen_range(0..tuples.len().max(1)))
                    .cloned()
                {
                    tuples.remove(&victim);
                }
            }
            // replace
            _ => {
                if !tuples.is_empty() {
                    let victim = tuples
                        .iter()
                        .nth(rng.gen_range(0..tuples.len()))
                        .cloned()
                        .expect("non-empty");
                    tuples.remove(&victim);
                    tuples.insert(random_tuple(rng, state.schema(), cfg));
                }
            }
        }
    }
    SnapshotState::new(state.schema().clone(), tuples).expect("mutated tuples are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rngs::StdRng;
    use crate::rng::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa = random_schema(&mut a, 3);
        let sb = random_schema(&mut b, 3);
        assert_eq!(sa, sb);
        assert_eq!(
            random_state(&mut a, &sa, &cfg),
            random_state(&mut b, &sb, &cfg)
        );
    }

    #[test]
    fn generated_predicates_validate() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let schema = random_schema(&mut rng, 4);
            let p = random_predicate(&mut rng, &schema, &cfg, 3);
            p.validate(&schema).expect("generated predicate is valid");
        }
    }

    #[test]
    fn generated_states_respect_cardinality_bound() {
        let cfg = GenConfig {
            cardinality: 10,
            ..GenConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let schema = random_schema(&mut rng, 2);
        let s = random_state(&mut rng, &schema, &cfg);
        assert!(s.len() <= 10);
    }

    #[test]
    fn mutation_changes_state() {
        let cfg = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let schema = random_schema(&mut rng, 3);
        let s = random_state(&mut rng, &schema, &cfg);
        let m = mutate_state(&mut rng, &s, &cfg, 0.5);
        assert_eq!(m.schema(), s.schema());
        // With 50% churn on a 32-tuple state, identical output is
        // effectively impossible.
        assert_ne!(m, s);
    }
}
