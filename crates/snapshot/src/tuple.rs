//! Tuples: immutable, cheaply clonable value sequences.

use std::fmt;
use std::sync::Arc;

use crate::error::SnapshotError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// An immutable tuple of attribute values.
///
/// The payload is reference-counted, so cloning a tuple — which the
/// persistent full-copy semantics of rollback relations does constantly —
/// is O(1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    /// Lexicographic value order (same as the former derived order), with a
    /// pointer fast path: a tuple compared against a clone of itself — the
    /// common case inside sorted-run merge kernels, where both operands
    /// often share tuples with a parent state — settles without touching
    /// the payload.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.values, &other.values) {
            std::cmp::Ordering::Equal
        } else {
            self.values.cmp(&other.values)
        }
    }
}

impl Tuple {
    /// Creates a tuple from values; no scheme checking is performed here
    /// (see [`Tuple::check`]).
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple {
            values: values.into(),
        }
    }

    /// The values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at `index`.
    pub fn get(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Validates this tuple against a scheme: arity and per-attribute
    /// domain membership.
    pub fn check(&self, schema: &Schema) -> Result<()> {
        if self.arity() != schema.arity() {
            return Err(SnapshotError::ArityMismatch {
                expected: schema.arity(),
                found: self.arity(),
            });
        }
        for (v, a) in self.values.iter().zip(schema.attributes()) {
            if v.domain() != a.domain {
                return Err(SnapshotError::DomainMismatch {
                    attribute: a.name.to_string(),
                    expected: a.domain,
                    found: v.domain(),
                });
            }
        }
        Ok(())
    }

    /// The sub-tuple given by `indices` (as produced by
    /// [`Schema::project`]).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenation for cartesian products.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Whether two tuples share the same payload allocation (used by the
    /// interner to detect no-op rewrites).
    pub(crate) fn shares_values(&self, other: &Tuple) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Tuple>() + self.values.iter().map(Value::size_bytes).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Tuple {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainType;

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap()
    }

    fn alice() -> Tuple {
        Tuple::new(vec![Value::str("alice"), Value::Int(100)])
    }

    #[test]
    fn check_accepts_well_typed() {
        assert!(alice().check(&schema()).is_ok());
    }

    #[test]
    fn check_rejects_wrong_arity() {
        let t = Tuple::new(vec![Value::str("alice")]);
        assert!(matches!(
            t.check(&schema()),
            Err(SnapshotError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn check_rejects_wrong_domain() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(100)]);
        assert!(matches!(
            t.check(&schema()),
            Err(SnapshotError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn projection_reorders() {
        let t = alice();
        let p = t.project(&[1, 0]);
        assert_eq!(p.get(0), &Value::Int(100));
        assert_eq!(p.get(1), &Value::str("alice"));
    }

    #[test]
    fn concat_appends() {
        let t = alice().concat(&Tuple::new(vec![Value::Bool(true)]));
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(2), &Value::Bool(true));
    }

    #[test]
    fn clone_is_shallow() {
        let t = alice();
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn display_form() {
        assert_eq!(alice().to_string(), "(\"alice\", 100)");
    }
}
