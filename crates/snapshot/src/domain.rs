//! Domain (attribute type) definitions.

use std::fmt;

/// The type of a value domain 𝓓ᵢ.
///
/// Every attribute of a relation scheme is typed by one of these domains,
/// and every [`crate::Value`] belongs to exactly one of them. User-defined
/// time, in the paper's taxonomy, "is simply another domain, such as
/// integer or character string, provided by the DBMS" — an application can
/// encode user-defined time with `Int` (e.g. a Julian day number) or `Str`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DomainType {
    /// 64-bit signed integers.
    Int,
    /// Finite IEEE-754 doubles.
    Real,
    /// Booleans.
    Bool,
    /// Character strings.
    Str,
}

impl DomainType {
    /// All supported domain types, in display order.
    pub const ALL: [DomainType; 4] = [
        DomainType::Int,
        DomainType::Real,
        DomainType::Bool,
        DomainType::Str,
    ];

    /// The keyword used for this domain in the surface syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            DomainType::Int => "int",
            DomainType::Real => "real",
            DomainType::Bool => "bool",
            DomainType::Str => "str",
        }
    }

    /// Parses a surface-syntax keyword into a domain type.
    pub fn from_keyword(s: &str) -> Option<DomainType> {
        match s {
            "int" => Some(DomainType::Int),
            "real" => Some(DomainType::Real),
            "bool" => Some(DomainType::Bool),
            "str" => Some(DomainType::Str),
            _ => None,
        }
    }
}

impl fmt::Display for DomainType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for d in DomainType::ALL {
            assert_eq!(DomainType::from_keyword(d.keyword()), Some(d));
        }
    }

    #[test]
    fn unknown_keyword() {
        assert_eq!(DomainType::from_keyword("blob"), None);
    }

    #[test]
    fn display_matches_keyword() {
        assert_eq!(DomainType::Int.to_string(), "int");
        assert_eq!(DomainType::Str.to_string(), "str");
    }
}
