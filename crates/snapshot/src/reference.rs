//! Reference BTree implementation of the snapshot algebra.
//!
//! This module retains the pre-sorted-run representation — a
//! `BTreeSet<Tuple>` with per-element tree inserts — exactly as the
//! operators used to compute it. It exists for two purposes:
//!
//! 1. **Differential testing**: the sorted-run kernels must agree
//!    byte-for-byte (values *and* error selection) with these definitions
//!    on every input; the proptest suites in `tests/` enforce it.
//! 2. **Benchmark baselines**: experiment E14 measures the sorted-run
//!    kernels against this layout on identical workloads.
//!
//! It is deliberately *not* optimized: no identity shortcuts beyond what
//! validation requires, no sharing, no interning.

use std::collections::BTreeSet;

use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::Result;

/// A snapshot state held as a `BTreeSet`, with the original tree-insert
/// operator implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefSnapshot {
    schema: Schema,
    tuples: BTreeSet<Tuple>,
}

impl RefSnapshot {
    /// Converts from the production representation.
    pub fn from_state(state: &SnapshotState) -> RefSnapshot {
        RefSnapshot {
            schema: state.schema().clone(),
            tuples: state.tuples(),
        }
    }

    /// Converts back to the production representation (for equality
    /// comparison in differential tests).
    pub fn to_state(&self) -> SnapshotState {
        SnapshotState::from_checked(self.schema.clone(), self.tuples.clone())
    }

    /// The state's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set union via per-element tree inserts.
    pub fn union(&self, other: &RefSnapshot) -> Result<RefSnapshot> {
        self.schema.require_union_compatible(&other.schema)?;
        let mut tuples = self.tuples.clone();
        for t in &other.tuples {
            tuples.insert(t.clone());
        }
        Ok(RefSnapshot {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Set difference via per-element membership probes.
    pub fn difference(&self, other: &RefSnapshot) -> Result<RefSnapshot> {
        self.schema.require_union_compatible(&other.schema)?;
        let tuples = self
            .tuples
            .iter()
            .filter(|t| !other.tuples.contains(*t))
            .cloned()
            .collect();
        Ok(RefSnapshot {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Cartesian product via nested-loop tree inserts.
    pub fn product(&self, other: &RefSnapshot) -> Result<RefSnapshot> {
        let schema = self.schema.product(&other.schema)?;
        let mut tuples = BTreeSet::new();
        for l in &self.tuples {
            for r in &other.tuples {
                tuples.insert(l.concat(r));
            }
        }
        Ok(RefSnapshot { schema, tuples })
    }

    /// Projection via tree inserts (set semantics collapse duplicates).
    pub fn project(&self, attrs: &[impl AsRef<str>]) -> Result<RefSnapshot> {
        let (schema, indices) = self.schema.project(attrs)?;
        let mut tuples = BTreeSet::new();
        for t in &self.tuples {
            tuples.insert(t.project(&indices));
        }
        Ok(RefSnapshot { schema, tuples })
    }

    /// Selection via a filtered rebuild.
    pub fn select(&self, predicate: &Predicate) -> Result<RefSnapshot> {
        let compiled = predicate.compile(&self.schema)?;
        let tuples = self
            .tuples
            .iter()
            .filter(|t| compiled.eval(t))
            .cloned()
            .collect();
        Ok(RefSnapshot {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Delta replay via per-element `remove`/`insert` — the original
    /// storage-backend kernel (removals first, then insertions).
    pub fn apply_delta(&mut self, removed: &[Tuple], added: &[Tuple]) -> Result<()> {
        for t in added {
            t.check(&self.schema)?;
        }
        for t in removed {
            self.tuples.remove(t);
        }
        for t in added {
            self.tuples.insert(t.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainType, Value};

    fn state(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn round_trip_preserves_content() {
        let s = state(&[3, 1, 2]);
        assert_eq!(RefSnapshot::from_state(&s).to_state(), s);
    }

    #[test]
    fn reference_ops_match_production_on_a_smoke_case() {
        let (a, b) = (state(&[1, 2, 3]), state(&[2, 3, 4]));
        let (ra, rb) = (RefSnapshot::from_state(&a), RefSnapshot::from_state(&b));
        assert_eq!(ra.union(&rb).unwrap().to_state(), a.union(&b).unwrap());
        assert_eq!(
            ra.difference(&rb).unwrap().to_state(),
            a.difference(&b).unwrap()
        );
    }
}
