//! Per-relation string interning.
//!
//! Sorted-run states compare tuples constantly (merge kernels, binary
//! searches, delta replay). String attributes dominate that cost unless
//! equal strings share one allocation, in which case the pointer fast path
//! in [`crate::Value`]'s `Ord` settles the comparison without a byte scan.
//!
//! A [`StrInterner`] is a deduplicating pool of `Arc<str>`. Storage
//! backends keep one pool per relation and route every incoming state
//! through [`StrInterner::intern_tuple`], so rollback replay never
//! re-hashes a string it has already seen.

use std::collections::HashSet;
use std::sync::Arc;

use crate::tuple::Tuple;
use crate::value::Value;

/// A deduplicating pool of reference-counted strings.
///
/// Interning is idempotent and content-addressed: two calls with equal
/// string contents return `Arc`s backed by the same allocation.
#[derive(Debug, Clone, Default)]
pub struct StrInterner {
    pool: HashSet<Arc<str>>,
}

impl StrInterner {
    /// An empty pool.
    pub fn new() -> StrInterner {
        StrInterner::default()
    }

    /// The pooled `Arc` for `s`, inserting it on first sight.
    pub fn intern(&mut self, s: &Arc<str>) -> Arc<str> {
        match self.pool.get(&**s) {
            Some(pooled) => pooled.clone(),
            None => {
                self.pool.insert(s.clone());
                s.clone()
            }
        }
    }

    /// Interns the payload of a `Str` value; other domains pass through.
    ///
    /// Returns `None` when the value is already backed by the pooled
    /// allocation (so callers can skip rebuilding containers).
    fn intern_value(&mut self, v: &Value) -> Option<Value> {
        match v {
            Value::Str(s) => {
                let pooled = self.intern(s);
                if Arc::ptr_eq(&pooled, s) {
                    None
                } else {
                    Some(Value::Str(pooled))
                }
            }
            _ => None,
        }
    }

    /// A tuple whose string values are all drawn from the pool.
    ///
    /// The payload array is rebuilt only if at least one value actually
    /// changes allocation; a fully-interned tuple is returned as a shallow
    /// clone.
    pub fn intern_tuple(&mut self, t: &Tuple) -> Tuple {
        let mut rebuilt: Option<Vec<Value>> = None;
        for (i, v) in t.values().iter().enumerate() {
            if let Some(pooled) = self.intern_value(v) {
                rebuilt.get_or_insert_with(|| t.values().to_vec())[i] = pooled;
            }
        }
        match rebuilt {
            Some(values) => Tuple::new(values),
            None => t.clone(),
        }
    }

    /// Number of distinct strings in the pool.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Approximate footprint in bytes, counted by storage-space accounting
    /// alongside the states that reference the pool.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<StrInterner>()
            + self
                .pool
                .iter()
                .map(|s| std::mem::size_of::<Arc<str>>() + s.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_allocations() {
        let mut pool = StrInterner::new();
        let a: Arc<str> = Arc::from("alice");
        let b: Arc<str> = Arc::from("alice");
        assert!(!Arc::ptr_eq(&a, &b));
        let ia = pool.intern(&a);
        let ib = pool.intern(&b);
        assert!(Arc::ptr_eq(&ia, &ib));
        assert_eq!(pool.len(), 1);
    }

    fn arc_of(t: &Tuple, i: usize) -> Arc<str> {
        match &t.values()[i] {
            Value::Str(s) => s.clone(),
            other => panic!("expected Str, got {other:?}"),
        }
    }

    #[test]
    fn intern_tuple_rebuilds_only_on_change() {
        let mut pool = StrInterner::new();
        let t = Tuple::new(vec![Value::str("x"), Value::Int(1)]);
        let first = pool.intern_tuple(&t);
        // First sight: the tuple's own allocation becomes the pooled one,
        // so nothing needs rebuilding.
        assert!(Arc::ptr_eq(&arc_of(&first, 0), &arc_of(&t, 0)));
        // A content-equal tuple from a different allocation is rewritten to
        // the pooled string.
        let u = Tuple::new(vec![Value::str("x"), Value::Int(1)]);
        let second = pool.intern_tuple(&u);
        assert_eq!(second, u);
        assert!(Arc::ptr_eq(&arc_of(&second, 0), &arc_of(&first, 0)));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn size_accounts_for_payload() {
        let mut pool = StrInterner::new();
        let base = pool.size_bytes();
        pool.intern(&Arc::from("a somewhat longer string"));
        assert!(pool.size_bytes() > base);
    }
}
