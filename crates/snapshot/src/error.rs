//! Errors raised by snapshot-algebra operations.
//!
//! The paper restricts the semantic function **E** to *valid* expressions
//! and defers invalid-expression handling to the companion report
//! [McKenzie & Snodgrass 1987A]. We make validity checking explicit: every
//! operator returns a `Result`, and an invalid application (e.g. projecting
//! a non-existent attribute) is reported rather than being undefined.

use std::fmt;

use crate::domain::DomainType;

/// An error from constructing or operating on snapshot states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Two attribute names in one scheme collide.
    DuplicateAttribute(String),
    /// A scheme was declared with no attributes.
    EmptyScheme,
    /// An attribute referenced by an operation does not exist in the scheme.
    UnknownAttribute(String),
    /// A tuple's arity does not match its scheme.
    ArityMismatch {
        /// Number of attributes in the scheme.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A value's domain does not match the attribute's declared domain.
    DomainMismatch {
        /// The offending attribute.
        attribute: String,
        /// The attribute's declared domain.
        expected: DomainType,
        /// The domain of the supplied value.
        found: DomainType,
    },
    /// Union, difference, or intersection applied to states with different
    /// schemes (the operands must be union-compatible).
    SchemeMismatch {
        /// Display form of the left scheme.
        left: String,
        /// Display form of the right scheme.
        right: String,
    },
    /// Cartesian product applied to states sharing an attribute name.
    ProductAttributeClash(String),
    /// A predicate compares values from incompatible domains.
    PredicateTypeMismatch {
        /// Display form of the offending comparison.
        comparison: String,
        /// Domain of the left operand.
        left: DomainType,
        /// Domain of the right operand.
        right: DomainType,
    },
    /// Division applied to schemes that are not in the subset relationship
    /// it requires.
    InvalidDivision(String),
    /// A projection listed the same attribute twice.
    DuplicateProjection(String),
    /// A rename would introduce a duplicate attribute name.
    RenameClash(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute name {a:?} in scheme")
            }
            SnapshotError::EmptyScheme => {
                write!(f, "a relation scheme must have at least one attribute")
            }
            SnapshotError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            SnapshotError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity {found} does not match scheme arity {expected}"
                )
            }
            SnapshotError::DomainMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "attribute {attribute:?} has domain {expected} but the value has domain {found}"
            ),
            SnapshotError::SchemeMismatch { left, right } => write!(
                f,
                "operands are not union-compatible: left scheme {left}, right scheme {right}"
            ),
            SnapshotError::ProductAttributeClash(a) => write!(
                f,
                "cartesian product operands both define attribute {a:?}; rename one first"
            ),
            SnapshotError::PredicateTypeMismatch {
                comparison,
                left,
                right,
            } => write!(
                f,
                "predicate {comparison} compares incompatible domains {left} and {right}"
            ),
            SnapshotError::InvalidDivision(msg) => write!(f, "invalid division: {msg}"),
            SnapshotError::DuplicateProjection(a) => {
                write!(f, "attribute {a:?} listed more than once in projection")
            }
            SnapshotError::RenameClash(a) => {
                write!(f, "rename would duplicate attribute name {a:?}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SnapshotError::DomainMismatch {
            attribute: "sal".into(),
            expected: DomainType::Int,
            found: DomainType::Str,
        };
        let msg = e.to_string();
        assert!(msg.contains("sal"));
        assert!(msg.contains("int"));
        assert!(msg.contains("str"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            SnapshotError::UnknownAttribute("x".into()),
            SnapshotError::UnknownAttribute("x".into())
        );
        assert_ne!(
            SnapshotError::UnknownAttribute("x".into()),
            SnapshotError::UnknownAttribute("y".into())
        );
    }
}
