//! Operators derivable from the five primitives.
//!
//! Everything here could be expressed by composing union, difference,
//! product, projection, and selection; we implement them directly for
//! efficiency but test them against their classical derivations.

use crate::error::SnapshotError;
use crate::ops::merge::merge_intersect;
use crate::predicate::Predicate;
use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::Result;

impl SnapshotState {
    /// Intersection `E₁ ∩ E₂ = E₁ − (E₁ − E₂)`, as a two-pointer merge
    /// over the sorted runs. When every left tuple survives the left run
    /// is shared as-is.
    pub fn intersect(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        let out = merge_intersect(self.run(), other.run());
        if out.len() == self.len() {
            return Ok(self.clone());
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }

    /// Renames attribute `from` to `to`. Tuples are untouched, so the
    /// result shares this state's run (an O(1) `Arc` clone).
    pub fn rename(&self, from: &str, to: &str) -> Result<SnapshotState> {
        let schema = self.schema().rename(from, to)?;
        Ok(SnapshotState::from_shared(
            schema,
            self.shared_run().clone(),
        ))
    }

    /// Theta join `E₁ ⋈_F E₂ = σ_F(E₁ × E₂)`.
    pub fn theta_join(
        &self,
        other: &SnapshotState,
        predicate: &Predicate,
    ) -> Result<SnapshotState> {
        self.product(other)?.select(predicate)
    }

    /// Natural join on all common attribute names.
    ///
    /// Common attributes must agree in domain; the result scheme is the
    /// left scheme followed by the right scheme's non-common attributes.
    pub fn natural_join(&self, other: &SnapshotState) -> Result<SnapshotState> {
        let common = self.schema().common_attributes(other.schema());
        for name in &common {
            let l = self.schema().attribute(self.schema().require(name)?);
            let r = other.schema().attribute(other.schema().require(name)?);
            if l.domain != r.domain {
                return Err(SnapshotError::DomainMismatch {
                    attribute: name.to_string(),
                    expected: l.domain,
                    found: r.domain,
                });
            }
        }

        let right_keep: Vec<usize> = (0..other.schema().arity())
            .filter(|&i| {
                !common
                    .iter()
                    .any(|c| *c == other.schema().attribute(i).name)
            })
            .collect();
        let mut attrs = self.schema().attributes().to_vec();
        for &i in &right_keep {
            attrs.push(other.schema().attribute(i).clone());
        }
        let schema = crate::schema::Schema::from_attributes(attrs)?;

        let left_common: Vec<usize> = common
            .iter()
            .map(|c| self.schema().index_of(c).expect("common attr in left"))
            .collect();
        let right_common: Vec<usize> = common
            .iter()
            .map(|c| other.schema().index_of(c).expect("common attr in right"))
            .collect();

        // The right-keep projection can break within-block ordering, so
        // the collected matches go through a final sort + dedup.
        let mut out = Vec::new();
        for l in self.iter() {
            for r in other.iter() {
                let matches = left_common
                    .iter()
                    .zip(&right_common)
                    .all(|(&li, &ri)| l.get(li) == r.get(ri));
                if matches {
                    let mut vals = l.values().to_vec();
                    for &i in &right_keep {
                        vals.push(r.get(i).clone());
                    }
                    out.push(Tuple::new(vals));
                }
            }
        }
        Ok(SnapshotState::from_unsorted_vec(schema, out))
    }

    /// Semijoin: the left tuples that join with at least one right tuple.
    pub fn semijoin(&self, other: &SnapshotState) -> Result<SnapshotState> {
        let join = self.natural_join(other)?;
        let names: Vec<String> = self
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.to_string())
            .collect();
        join.project(&names)
    }

    /// Antijoin: the left tuples that join with no right tuple.
    pub fn antijoin(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.difference(&self.semijoin(other)?)
    }

    /// Relational division `E₁ ÷ E₂`.
    ///
    /// The divisor's attributes must be a proper subset of the dividend's;
    /// the result has the dividend's remaining attributes and contains a
    /// tuple `t` iff `t` pairs with *every* divisor tuple in the dividend.
    pub fn divide(&self, divisor: &SnapshotState) -> Result<SnapshotState> {
        for a in divisor.schema().attributes() {
            let idx = self.schema().index_of(&a.name).ok_or_else(|| {
                SnapshotError::InvalidDivision(format!(
                    "divisor attribute {:?} missing from dividend",
                    a.name
                ))
            })?;
            if self.schema().attribute(idx).domain != a.domain {
                return Err(SnapshotError::InvalidDivision(format!(
                    "attribute {:?} has different domains in dividend and divisor",
                    a.name
                )));
            }
        }
        let quotient_names: Vec<String> = self
            .schema()
            .attributes()
            .iter()
            .filter(|a| !divisor.schema().contains(&a.name))
            .map(|a| a.name.to_string())
            .collect();
        if quotient_names.is_empty() {
            return Err(SnapshotError::InvalidDivision(
                "divisor attributes must be a proper subset of dividend attributes".into(),
            ));
        }

        // R ÷ S = π_Q(R) − π_Q((π_Q(R) × S) − R), specialized to a direct
        // check for clarity and speed.
        let candidates = self.project(&quotient_names)?;
        let divisor_names: Vec<String> = divisor
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name.to_string())
            .collect();
        let q_idx: Vec<usize> = quotient_names
            .iter()
            .map(|n| self.schema().index_of(n).expect("quotient attr"))
            .collect();
        let d_idx: Vec<usize> = divisor_names
            .iter()
            .map(|n| self.schema().index_of(n).expect("divisor attr"))
            .collect();
        let d_own_idx: Vec<usize> = divisor_names
            .iter()
            .map(|n| divisor.schema().index_of(n).expect("divisor attr"))
            .collect();

        // Candidates iterate in canonical order and `kept` is a filtered
        // subsequence, so the result run is sorted by construction.
        let mut kept = Vec::new();
        'candidate: for c in candidates.iter() {
            for d in divisor.iter() {
                // Does some dividend tuple combine c with d?
                let found = self.iter().any(|t| {
                    q_idx.iter().zip(c.values()).all(|(&i, v)| t.get(i) == v)
                        && d_idx
                            .iter()
                            .zip(&d_own_idx)
                            .all(|(&ti, &di)| t.get(ti) == d.get(di))
                });
                if !found {
                    continue 'candidate;
                }
            }
            kept.push(c.clone());
        }
        Ok(SnapshotState::from_sorted_vec(
            candidates.schema().clone(),
            kept,
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Predicate, Schema, SnapshotState, Value};

    fn nums(name: &str, vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![(name, DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn emp() -> SnapshotState {
        let schema =
            Schema::new(vec![("name", DomainType::Str), ("dept", DomainType::Str)]).unwrap();
        SnapshotState::from_rows(
            schema,
            vec![
                vec![Value::str("alice"), Value::str("cs")],
                vec![Value::str("bob"), Value::str("ee")],
            ],
        )
        .unwrap()
    }

    fn dept() -> SnapshotState {
        let schema =
            Schema::new(vec![("dept", DomainType::Str), ("bldg", DomainType::Str)]).unwrap();
        SnapshotState::from_rows(
            schema,
            vec![
                vec![Value::str("cs"), Value::str("sitterson")],
                vec![Value::str("math"), Value::str("phillips")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn intersect_matches_double_difference() {
        let (a, b) = (nums("x", &[1, 2, 3]), nums("x", &[2, 3, 4]));
        let direct = a.intersect(&b).unwrap();
        let derived = a.difference(&a.difference(&b).unwrap()).unwrap();
        assert_eq!(direct, derived);
    }

    #[test]
    fn rename_preserves_tuples() {
        let r = nums("x", &[1, 2]).rename("x", "y").unwrap();
        assert_eq!(&*r.schema().attribute(0).name, "y");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn theta_join_matches_select_of_product() {
        let a = nums("x", &[1, 2, 3]);
        let b = nums("y", &[2, 3, 4]);
        let p = Predicate::eq_attrs("x", "y");
        let join = a.theta_join(&b, &p).unwrap();
        let manual = a.product(&b).unwrap().select(&p).unwrap();
        assert_eq!(join, manual);
        assert_eq!(join.len(), 2);
    }

    #[test]
    fn natural_join_on_common_attribute() {
        let j = emp().natural_join(&dept()).unwrap();
        assert_eq!(j.len(), 1); // only alice/cs matches
        assert_eq!(j.schema().arity(), 3);
        let t = j.iter().next().unwrap();
        assert_eq!(t.get(0), &Value::str("alice"));
        assert_eq!(t.get(2), &Value::str("sitterson"));
    }

    #[test]
    fn natural_join_with_no_common_attrs_is_product() {
        let a = nums("x", &[1, 2]);
        let b = nums("y", &[7]);
        assert_eq!(a.natural_join(&b).unwrap(), a.product(&b).unwrap());
    }

    #[test]
    fn natural_join_rejects_domain_conflict() {
        let a = nums("x", &[1]);
        let schema = Schema::new(vec![("x", DomainType::Str)]).unwrap();
        let b = SnapshotState::from_rows(schema, vec![vec![Value::str("1")]]).unwrap();
        assert!(a.natural_join(&b).is_err());
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let e = emp();
        let semi = e.semijoin(&dept()).unwrap();
        let anti = e.antijoin(&dept()).unwrap();
        assert_eq!(semi.len(), 1);
        assert_eq!(anti.len(), 1);
        assert_eq!(semi.union(&anti).unwrap(), e);
        assert!(semi.intersect(&anti).unwrap().is_empty());
    }

    #[test]
    fn division_finds_universal_pairs() {
        // enrolled(student, course) ÷ courses(course)
        let enrolled_schema = Schema::new(vec![
            ("student", DomainType::Str),
            ("course", DomainType::Str),
        ])
        .unwrap();
        let enrolled = SnapshotState::from_rows(
            enrolled_schema,
            vec![
                vec![Value::str("ann"), Value::str("db")],
                vec![Value::str("ann"), Value::str("os")],
                vec![Value::str("ben"), Value::str("db")],
            ],
        )
        .unwrap();
        let courses_schema = Schema::new(vec![("course", DomainType::Str)]).unwrap();
        let courses = SnapshotState::from_rows(
            courses_schema,
            vec![vec![Value::str("db")], vec![Value::str("os")]],
        )
        .unwrap();
        let q = enrolled.divide(&courses).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().next().unwrap().get(0), &Value::str("ann"));
    }

    #[test]
    fn division_by_empty_divisor_yields_all_candidates() {
        let enrolled_schema = Schema::new(vec![
            ("student", DomainType::Str),
            ("course", DomainType::Str),
        ])
        .unwrap();
        let enrolled = SnapshotState::from_rows(
            enrolled_schema,
            vec![vec![Value::str("ann"), Value::str("db")]],
        )
        .unwrap();
        let courses = SnapshotState::empty(Schema::new(vec![("course", DomainType::Str)]).unwrap());
        // Universally quantifying over the empty set keeps every candidate.
        let q = enrolled.divide(&courses).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn division_requires_proper_subset() {
        let a = nums("x", &[1]);
        assert!(a.divide(&a).is_err());
        let b = nums("y", &[1]);
        assert!(a.divide(&b).is_err());
    }
}
