//! Partitioned (parallel) variants of the five snapshot operators.
//!
//! Each `*_par` kernel is observationally identical to its sequential
//! twin — same result, same errors — and differs only in how the work is
//! scheduled: the sorted run is split into contiguous index ranges (an
//! O(1) slice operation — no tree walk, no per-tuple collection), the
//! ranges are evaluated on scoped worker threads, and the per-range
//! results are concatenated **in range order**.
//!
//! Why the merge is deterministic:
//!
//! * σ and − filter each input tuple independently, so each range yields
//!   a sorted run disjoint from (and entirely below) the next range's
//!   run; concatenating runs in order is exactly the sequential scan.
//! * × chunks the *left* operand: distinct same-arity left tuples
//!   `l₁ < l₂` concatenate to `l₁·x < l₂·y` for every `x`, `y`, so the
//!   per-chunk sub-products are again disjoint sorted runs.
//! * ∪ and − (two-operand merges) split both runs at aligned pivots:
//!   the left run is cut at even indices and the right run is cut at the
//!   `partition_point` of each pivot tuple, so every part sees exactly
//!   the tuples of one disjoint key interval and the concatenated merge
//!   outputs are the sequential merge.
//! * π re-sorts the concatenated projection (unless the projection is an
//!   order-preserving prefix), so the result does not depend on chunking.
//!
//! A one-thread pool evaluates every kernel inline on the calling thread
//! (see [`ExecPool::map_chunks`]) — the exact sequential path.

use std::ops::Range;

use txtime_exec::{ExecPool, OpKind};

use crate::ops::merge::{merge_difference, merge_union};
use crate::ops::project::is_identity_prefix;
use crate::predicate::Predicate;
use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::Result;

/// Minimum tuples per chunk for the tuple-at-a-time kernels; below
/// 2 × this, spawn overhead beats the work. Sourced from the shared
/// per-kernel heuristic so the CLI/engine and kernels agree.
pub(crate) const SET_GRAIN: usize = OpKind::Select.min_chunk();

/// Minimum output *pairs* per chunk for the product kernel (its per-item
/// cost scales with the right operand).
pub(crate) const PRODUCT_PAIR_GRAIN: usize = OpKind::Product.min_chunk();

/// Splits two sorted runs into at most `want` aligned part ranges: the
/// left run is cut at (roughly) even indices, and the right run is cut at
/// the `partition_point` of each left pivot, so part *i* of both runs
/// covers the same disjoint key interval. O(want · log |right|).
pub(crate) fn aligned_parts(
    left: &[Tuple],
    right: &[Tuple],
    want: usize,
) -> Vec<(Range<usize>, Range<usize>)> {
    let want = want.max(1);
    let mut cuts: Vec<(usize, usize)> = vec![(0, 0)];
    for i in 1..want {
        let l = (left.len() * i) / want;
        let (prev_l, prev_r) = *cuts.last().expect("cuts is non-empty");
        if l <= prev_l || l >= left.len() {
            continue; // degenerate cut: fold into the neighbouring part
        }
        let pivot = &left[l];
        let r = prev_r + right[prev_r..].partition_point(|t| t < pivot);
        cuts.push((l, r));
    }
    cuts.push((left.len(), right.len()));
    cuts.windows(2)
        .map(|w| (w[0].0..w[1].0, w[0].1..w[1].1))
        .collect()
}

impl SnapshotState {
    /// [`SnapshotState::select`] evaluated over partitioned slice ranges.
    pub fn select_par(&self, predicate: &Predicate, pool: &ExecPool) -> Result<SnapshotState> {
        let compiled = predicate.compile(self.schema())?;
        let runs = pool.map_chunks(OpKind::Select, self.run(), SET_GRAIN, |chunk| {
            chunk
                .iter()
                .filter(|t| compiled.eval(t))
                .cloned()
                .collect::<Vec<Tuple>>()
        });
        let total: usize = runs.iter().map(Vec::len).sum();
        if total == self.len() {
            return Ok(self.clone());
        }
        // Disjoint ascending runs: in-order concatenation is sorted.
        let mut out = Vec::with_capacity(total);
        for run in runs {
            out.extend(run);
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }

    /// [`SnapshotState::project`] evaluated over partitioned slice ranges.
    pub fn project_par(&self, attrs: &[impl AsRef<str>], pool: &ExecPool) -> Result<SnapshotState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let runs = pool.map_chunks(OpKind::Project, self.run(), SET_GRAIN, |chunk| {
            chunk
                .iter()
                .map(|t| t.project(&indices))
                .collect::<Vec<Tuple>>()
        });
        let mut out = Vec::with_capacity(self.len());
        for run in runs {
            out.extend(run);
        }
        if is_identity_prefix(&indices) {
            // In-order concatenation of an order-preserving projection is
            // already sorted; only adjacent duplicates can occur.
            out.dedup();
            Ok(SnapshotState::from_sorted_vec(schema, out))
        } else {
            Ok(SnapshotState::from_unsorted_vec(schema, out))
        }
    }

    /// [`SnapshotState::product`] with the left operand partitioned.
    pub fn product_par(&self, other: &SnapshotState, pool: &ExecPool) -> Result<SnapshotState> {
        let schema = self.schema().product(other.schema())?;
        let grain = (PRODUCT_PAIR_GRAIN / other.len().max(1)).max(1);
        let runs = pool.map_chunks(OpKind::Product, self.run(), grain, |chunk| {
            let mut pairs = Vec::with_capacity(chunk.len() * other.len());
            for l in chunk {
                for r in other.iter() {
                    pairs.push(l.concat(r));
                }
            }
            pairs
        });
        let mut out = Vec::with_capacity(self.len() * other.len());
        for run in runs {
            out.extend(run);
        }
        Ok(SnapshotState::from_sorted_vec(schema, out))
    }

    /// [`SnapshotState::union`] as a merge over aligned partitions of
    /// both runs.
    pub fn union_par(&self, other: &SnapshotState, pool: &ExecPool) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || self.shares_run(other) {
            // Sequential identity shortcuts (O(1) Arc reuse).
            return self.union(other);
        }
        let parts = aligned_parts(self.run(), other.run(), pool.threads());
        let runs = pool.map_chunks(OpKind::Union, &parts, 1, |chunk| {
            let mut out = Vec::new();
            for (lr, rr) in chunk {
                out.extend(merge_union(
                    &self.run()[lr.clone()],
                    &other.run()[rr.clone()],
                ));
            }
            out
        });
        let total: usize = runs.iter().map(Vec::len).sum();
        if total == self.len() {
            // other ⊆ self: share the left run, like the sequential path.
            return Ok(self.clone());
        }
        if total == other.len() {
            return Ok(SnapshotState::from_shared(
                self.schema().clone(),
                other.shared_run().clone(),
            ));
        }
        let mut out = Vec::with_capacity(total);
        for run in runs {
            out.extend(run);
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }

    /// [`SnapshotState::difference`] as a merge over aligned partitions
    /// of both runs.
    pub fn difference_par(&self, other: &SnapshotState, pool: &ExecPool) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || self.shares_run(other) {
            return self.difference(other);
        }
        let parts = aligned_parts(self.run(), other.run(), pool.threads());
        let runs = pool.map_chunks(OpKind::Difference, &parts, 1, |chunk| {
            let mut out = Vec::new();
            for (lr, rr) in chunk {
                out.extend(merge_difference(
                    &self.run()[lr.clone()],
                    &other.run()[rr.clone()],
                ));
            }
            out
        });
        let total: usize = runs.iter().map(Vec::len).sum();
        if total == self.len() {
            // Disjoint operands: nothing removed, share the left run.
            return Ok(self.clone());
        }
        let mut out = Vec::with_capacity(total);
        for run in runs {
            out.extend(run);
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_state, GenConfig};
    use crate::rng::rngs::StdRng;
    use crate::rng::SeedableRng;
    use crate::{DomainType, Schema, Value};

    fn schema(prefix: &str) -> Schema {
        Schema::new(vec![
            (format!("{prefix}0"), DomainType::Int),
            (format!("{prefix}1"), DomainType::Str),
        ])
        .unwrap()
    }

    fn random(seed: u64, prefix: &str, cardinality: usize) -> SnapshotState {
        let cfg = GenConfig {
            arity: 2,
            cardinality,
            int_range: 64,
            str_pool: 8,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        random_state(&mut rng, &schema(prefix), &cfg)
    }

    #[test]
    fn aligned_parts_cover_both_runs_in_order() {
        let a = random(1, "a", 500);
        let b = random(2, "a", 700);
        for want in [1, 2, 3, 7] {
            let parts = aligned_parts(a.run(), b.run(), want);
            assert!(parts.len() <= want);
            assert_eq!(parts.first().unwrap().0.start, 0);
            assert_eq!(parts.first().unwrap().1.start, 0);
            assert_eq!(parts.last().unwrap().0.end, a.len());
            assert_eq!(parts.last().unwrap().1.end, b.len());
            for w in parts.windows(2) {
                assert_eq!(w[0].0.end, w[1].0.start);
                assert_eq!(w[0].1.end, w[1].1.start);
            }
        }
    }

    /// Every kernel, at several thread counts, against its sequential
    /// twin — results must be equal (and errors must agree).
    #[test]
    fn partitioned_kernels_match_sequential() {
        let a = random(1, "a", 3000);
        let b = random(2, "a", 3000);
        let c = random(3, "c", 40);
        let pred = Predicate::gt_const("a0", Value::Int(20));
        for threads in [1, 2, 3, 8] {
            let pool = ExecPool::new(threads);
            assert_eq!(
                a.select(&pred).unwrap(),
                a.select_par(&pred, &pool).unwrap()
            );
            assert_eq!(
                a.project(&["a1"]).unwrap(),
                a.project_par(&["a1"], &pool).unwrap()
            );
            assert_eq!(a.union(&b).unwrap(), a.union_par(&b, &pool).unwrap());
            assert_eq!(
                a.difference(&b).unwrap(),
                a.difference_par(&b, &pool).unwrap()
            );
            assert_eq!(a.product(&c).unwrap(), a.product_par(&c, &pool).unwrap());
        }
    }

    #[test]
    fn partitioned_kernels_preserve_errors() {
        let a = random(1, "a", 8);
        let pool = ExecPool::new(4);
        assert!(a
            .select_par(&Predicate::eq_const("ghost", Value::Int(0)), &pool)
            .is_err());
        assert!(a.project_par(&["ghost"], &pool).is_err());
        // Name clash in product; incompatible schemes in union/difference.
        assert!(a.product_par(&a, &pool).is_err());
        let other = random(2, "z", 8);
        assert!(a.union_par(&other, &pool).is_err());
        assert!(a.difference_par(&other, &pool).is_err());
    }

    #[test]
    fn partitioned_identity_shortcuts_still_share() {
        let a = random(1, "a", 1200);
        let empty = SnapshotState::empty(schema("a"));
        let pool = ExecPool::new(4);
        let u = a.union_par(&empty, &pool).unwrap();
        assert!(a.shares_run(&u));
        let d = a.difference_par(&empty, &pool).unwrap();
        assert!(a.shares_run(&d));
        // Subsumption: a ∪ a (by value, not pointer) shares the left run.
        let twin = SnapshotState::new(schema("a"), a.iter().cloned()).unwrap();
        assert!(!a.shares_run(&twin));
        let u2 = a.union_par(&twin, &pool).unwrap();
        assert!(a.shares_run(&u2));
    }
}
