//! Partitioned (parallel) variants of the five snapshot operators.
//!
//! Each `*_par` kernel is observationally identical to its sequential
//! twin — same result, same errors — and differs only in how the work is
//! scheduled: the `BTreeSet`-backed operand is split into contiguous
//! ranges of its canonical (lexicographic) order, the ranges are
//! evaluated on scoped worker threads, and the per-range results are
//! merged **in range order**.
//!
//! Why the merge is deterministic:
//!
//! * σ and − filter each input tuple independently, so each range yields
//!   a sorted run disjoint from (and entirely below) the next range's
//!   run; concatenating runs in order is exactly the sequential scan.
//! * × chunks the *left* operand: distinct same-arity left tuples
//!   `l₁ < l₂` concatenate to `l₁·x < l₂·y` for every `x`, `y`, so the
//!   per-chunk sub-products are again disjoint sorted runs.
//! * π and ∪ merge into a set, whose content does not depend on
//!   insertion order; the merge itself runs on one thread in range order.
//!
//! A one-thread pool evaluates every kernel inline on the calling thread
//! (see [`ExecPool::map_chunks`]) — the exact sequential path.

use std::collections::BTreeSet;

use txtime_exec::{ExecPool, OpKind};

use crate::predicate::Predicate;
use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::Result;

/// Minimum tuples per chunk for the tuple-at-a-time kernels; below
/// 2 × this, spawn overhead beats the work.
pub(crate) const SET_GRAIN: usize = 512;

/// Minimum output *pairs* per chunk for the product kernel (its per-item
/// cost scales with the right operand).
pub(crate) const PRODUCT_PAIR_GRAIN: usize = 4096;

impl SnapshotState {
    /// [`SnapshotState::select`] evaluated over partitioned chunks.
    pub fn select_par(&self, predicate: &Predicate, pool: &ExecPool) -> Result<SnapshotState> {
        let compiled = predicate.compile(self.schema())?;
        let items: Vec<&Tuple> = self.iter().collect();
        let runs = pool.map_chunks(OpKind::Select, &items, SET_GRAIN, |chunk| {
            chunk
                .iter()
                .filter(|t| compiled.eval(t))
                .map(|&t| t.clone())
                .collect::<Vec<Tuple>>()
        });
        // Disjoint ascending runs: in-order extension is a sorted bulk load.
        let mut tuples = BTreeSet::new();
        for run in runs {
            tuples.extend(run);
        }
        Ok(SnapshotState::from_checked(self.schema().clone(), tuples))
    }

    /// [`SnapshotState::project`] evaluated over partitioned chunks.
    pub fn project_par(&self, attrs: &[impl AsRef<str>], pool: &ExecPool) -> Result<SnapshotState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let items: Vec<&Tuple> = self.iter().collect();
        let mut sets = pool
            .map_chunks(OpKind::Project, &items, SET_GRAIN, |chunk| {
                chunk
                    .iter()
                    .map(|t| t.project(&indices))
                    .collect::<BTreeSet<Tuple>>()
            })
            .into_iter();
        // Projected chunks may collide; set semantics make the merged
        // content independent of merge order.
        let mut tuples = sets.next().unwrap_or_default();
        for set in sets {
            tuples.extend(set);
        }
        Ok(SnapshotState::from_checked(schema, tuples))
    }

    /// [`SnapshotState::product`] with the left operand partitioned.
    pub fn product_par(&self, other: &SnapshotState, pool: &ExecPool) -> Result<SnapshotState> {
        let schema = self.schema().product(other.schema())?;
        let grain = (PRODUCT_PAIR_GRAIN / other.len().max(1)).max(1);
        let items: Vec<&Tuple> = self.iter().collect();
        let runs = pool.map_chunks(OpKind::Product, &items, grain, |chunk| {
            let mut pairs = Vec::with_capacity(chunk.len() * other.len());
            for l in chunk {
                for r in other.iter() {
                    pairs.push(l.concat(r));
                }
            }
            pairs
        });
        let mut tuples = BTreeSet::new();
        for run in runs {
            tuples.extend(run);
        }
        Ok(SnapshotState::from_checked(schema, tuples))
    }

    /// [`SnapshotState::union`] with the membership probe partitioned
    /// over the right operand.
    pub fn union_par(&self, other: &SnapshotState, pool: &ExecPool) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || std::ptr::eq(self.tuples(), other.tuples()) {
            // Sequential identity shortcuts (O(1) Arc reuse).
            return self.union(other);
        }
        let items: Vec<&Tuple> = other.iter().collect();
        let runs = pool.map_chunks(OpKind::Union, &items, SET_GRAIN, |chunk| {
            chunk
                .iter()
                .filter(|t| !self.contains(t))
                .map(|&t| t.clone())
                .collect::<Vec<Tuple>>()
        });
        if runs.iter().all(Vec::is_empty) {
            // other ⊆ self: share the left set, like the sequential
            // subsumption probe.
            return Ok(self.clone());
        }
        let mut tuples = self.tuples().clone();
        for run in runs {
            tuples.extend(run);
        }
        Ok(SnapshotState::from_checked(self.schema().clone(), tuples))
    }

    /// [`SnapshotState::difference`] with the survivor scan partitioned
    /// over the left operand.
    pub fn difference_par(&self, other: &SnapshotState, pool: &ExecPool) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || std::ptr::eq(self.tuples(), other.tuples()) {
            return self.difference(other);
        }
        let items: Vec<&Tuple> = self.iter().collect();
        let runs = pool.map_chunks(OpKind::Difference, &items, SET_GRAIN, |chunk| {
            chunk
                .iter()
                .filter(|t| !other.contains(t))
                .map(|&t| t.clone())
                .collect::<Vec<Tuple>>()
        });
        if runs.iter().map(Vec::len).sum::<usize>() == self.len() {
            // Disjoint operands: nothing removed, share the left set.
            return Ok(self.clone());
        }
        let mut tuples = BTreeSet::new();
        for run in runs {
            tuples.extend(run);
        }
        Ok(SnapshotState::from_checked(self.schema().clone(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_state, GenConfig};
    use crate::rng::rngs::StdRng;
    use crate::rng::SeedableRng;
    use crate::{DomainType, Schema, Value};

    fn schema(prefix: &str) -> Schema {
        Schema::new(vec![
            (format!("{prefix}0"), DomainType::Int),
            (format!("{prefix}1"), DomainType::Str),
        ])
        .unwrap()
    }

    fn random(seed: u64, prefix: &str, cardinality: usize) -> SnapshotState {
        let cfg = GenConfig {
            arity: 2,
            cardinality,
            int_range: 64,
            str_pool: 8,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        random_state(&mut rng, &schema(prefix), &cfg)
    }

    /// Every kernel, at several thread counts, against its sequential
    /// twin — results must be equal (and errors must agree).
    #[test]
    fn partitioned_kernels_match_sequential() {
        let a = random(1, "a", 3000);
        let b = random(2, "a", 3000);
        let c = random(3, "c", 40);
        let pred = Predicate::gt_const("a0", Value::Int(20));
        for threads in [1, 2, 3, 8] {
            let pool = ExecPool::new(threads);
            assert_eq!(
                a.select(&pred).unwrap(),
                a.select_par(&pred, &pool).unwrap()
            );
            assert_eq!(
                a.project(&["a1"]).unwrap(),
                a.project_par(&["a1"], &pool).unwrap()
            );
            assert_eq!(a.union(&b).unwrap(), a.union_par(&b, &pool).unwrap());
            assert_eq!(
                a.difference(&b).unwrap(),
                a.difference_par(&b, &pool).unwrap()
            );
            assert_eq!(a.product(&c).unwrap(), a.product_par(&c, &pool).unwrap());
        }
    }

    #[test]
    fn partitioned_kernels_preserve_errors() {
        let a = random(1, "a", 8);
        let pool = ExecPool::new(4);
        assert!(a
            .select_par(&Predicate::eq_const("ghost", Value::Int(0)), &pool)
            .is_err());
        assert!(a.project_par(&["ghost"], &pool).is_err());
        // Name clash in product; incompatible schemes in union/difference.
        assert!(a.product_par(&a, &pool).is_err());
        let other = random(2, "z", 8);
        assert!(a.union_par(&other, &pool).is_err());
        assert!(a.difference_par(&other, &pool).is_err());
    }

    #[test]
    fn partitioned_identity_shortcuts_still_share() {
        let a = random(1, "a", 1200);
        let empty = SnapshotState::empty(schema("a"));
        let pool = ExecPool::new(4);
        let u = a.union_par(&empty, &pool).unwrap();
        assert!(std::ptr::eq(a.tuples(), u.tuples()));
        let d = a.difference_par(&empty, &pool).unwrap();
        assert!(std::ptr::eq(a.tuples(), d.tuples()));
        // Subsumption: a ∪ a (by value, not pointer) shares the left set.
        let twin = a.clone();
        let u2 = a.union_par(&twin, &pool).unwrap();
        assert!(std::ptr::eq(a.tuples(), u2.tuples()));
    }
}
