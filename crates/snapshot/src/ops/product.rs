//! Cartesian product (×).

use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Cartesian product of two states with disjoint attribute names.
    ///
    /// `E₁ × E₂` contains the concatenation `t₁ · t₂` for every pair of
    /// tuples from the operands. Use [`SnapshotState::rename`] first if
    /// the operands share attribute names.
    ///
    /// The kernel is a nested loop appending into an exactly-sized buffer:
    /// distinct left tuples of equal arity differ before the concatenation
    /// point, so the blocked output is already in canonical order — no
    /// sort, no dedup, no per-pair tree insert.
    pub fn product(&self, other: &SnapshotState) -> Result<SnapshotState> {
        let schema = self.schema().product(other.schema())?;
        let mut out = Vec::with_capacity(self.len() * other.len());
        for l in self.iter() {
            for r in other.iter() {
                out.push(l.concat(r));
            }
        }
        Ok(SnapshotState::from_sorted_vec(schema, out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn xs(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn ys(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn product_cardinality_multiplies() {
        let p = xs(&[1, 2, 3]).product(&ys(&[10, 20])).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.schema().arity(), 2);
    }

    #[test]
    fn product_with_empty_is_empty() {
        assert!(xs(&[1, 2]).product(&ys(&[])).unwrap().is_empty());
        assert!(xs(&[]).product(&ys(&[1])).unwrap().is_empty());
    }

    #[test]
    fn product_pairs_every_combination() {
        let p = xs(&[1]).product(&ys(&[7])).unwrap();
        let t = p.iter().next().unwrap();
        assert_eq!(t.values(), &[Value::Int(1), Value::Int(7)]);
    }

    #[test]
    fn product_rejects_name_clash() {
        assert!(xs(&[1]).product(&xs(&[2])).is_err());
    }

    #[test]
    fn product_attribute_order_is_left_then_right() {
        let p = xs(&[1]).product(&ys(&[2])).unwrap();
        assert_eq!(&*p.schema().attribute(0).name, "x");
        assert_eq!(&*p.schema().attribute(1).name, "y");
    }
}
