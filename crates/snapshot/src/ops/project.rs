//! Projection (π).

use std::collections::BTreeSet;

use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Projection `π_X(E)` onto the named attributes, in the order given.
    ///
    /// Duplicate result tuples collapse (set semantics). Fails on unknown
    /// or repeated attribute names.
    pub fn project(&self, attrs: &[impl AsRef<str>]) -> Result<SnapshotState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let mut tuples = BTreeSet::new();
        for t in self.iter() {
            tuples.insert(t.project(&indices));
        }
        Ok(SnapshotState::from_checked(schema, tuples))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn emp() -> SnapshotState {
        let schema = Schema::new(vec![
            ("name", DomainType::Str),
            ("dept", DomainType::Str),
            ("sal", DomainType::Int),
        ])
        .unwrap();
        SnapshotState::from_rows(
            schema,
            vec![
                vec![Value::str("alice"), Value::str("cs"), Value::Int(100)],
                vec![Value::str("bob"), Value::str("cs"), Value::Int(200)],
                vec![Value::str("carol"), Value::str("ee"), Value::Int(100)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn projection_drops_attributes() {
        let p = emp().project(&["name"]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn projection_collapses_duplicates() {
        let p = emp().project(&["dept"]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn projection_can_reorder() {
        let p = emp().project(&["sal", "name"]).unwrap();
        assert_eq!(&*p.schema().attribute(0).name, "sal");
        let first = p.iter().next().unwrap();
        assert_eq!(first.get(0), &Value::Int(100));
    }

    #[test]
    fn projection_onto_full_scheme_is_identity() {
        let e = emp();
        let p = e.project(&["name", "dept", "sal"]).unwrap();
        assert_eq!(p, e);
    }

    #[test]
    fn projection_is_idempotent() {
        let p1 = emp().project(&["dept"]).unwrap();
        let p2 = p1.project(&["dept"]).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn projection_rejects_unknown() {
        assert!(emp().project(&["wage"]).is_err());
    }
}
