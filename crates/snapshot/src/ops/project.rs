//! Projection (π).

use crate::state::SnapshotState;
use crate::Result;

/// Whether `indices` is the identity prefix `[0, 1, …, k-1]`, in which
/// case projecting a sorted run keeps it sorted (lexicographic order on a
/// prefix is the order induced by the full tuples) and only adjacent
/// duplicates need collapsing.
pub(crate) fn is_identity_prefix(indices: &[usize]) -> bool {
    indices.iter().enumerate().all(|(pos, &i)| pos == i)
}

impl SnapshotState {
    /// Projection `π_X(E)` onto the named attributes, in the order given.
    ///
    /// Duplicate result tuples collapse (set semantics). Fails on unknown
    /// or repeated attribute names.
    ///
    /// The kernel is a single scan producing one projected tuple per input
    /// tuple, then a sort + dedup to restore canonical order — skipped
    /// entirely (bar an adjacent-dedup) when the projection keeps a prefix
    /// of the attributes in order, which preserves sortedness.
    pub fn project(&self, attrs: &[impl AsRef<str>]) -> Result<SnapshotState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let mut out: Vec<_> = self.iter().map(|t| t.project(&indices)).collect();
        if is_identity_prefix(&indices) {
            out.dedup();
            Ok(SnapshotState::from_sorted_vec(schema, out))
        } else {
            Ok(SnapshotState::from_unsorted_vec(schema, out))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn emp() -> SnapshotState {
        let schema = Schema::new(vec![
            ("name", DomainType::Str),
            ("dept", DomainType::Str),
            ("sal", DomainType::Int),
        ])
        .unwrap();
        SnapshotState::from_rows(
            schema,
            vec![
                vec![Value::str("alice"), Value::str("cs"), Value::Int(100)],
                vec![Value::str("bob"), Value::str("cs"), Value::Int(200)],
                vec![Value::str("carol"), Value::str("ee"), Value::Int(100)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn projection_drops_attributes() {
        let p = emp().project(&["name"]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn projection_collapses_duplicates() {
        let p = emp().project(&["dept"]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn projection_prefix_fast_path_collapses_duplicates() {
        // ("name", "dept") is the identity prefix [0, 1]; the sortedness
        // fast path must still deduplicate adjacent collisions.
        let schema = Schema::new(vec![("a", DomainType::Int), ("b", DomainType::Int)]).unwrap();
        let s = SnapshotState::from_rows(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
            ],
        )
        .unwrap();
        let p = s.project(&["a"]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn projection_can_reorder() {
        let p = emp().project(&["sal", "name"]).unwrap();
        assert_eq!(&*p.schema().attribute(0).name, "sal");
        let first = p.iter().next().unwrap();
        assert_eq!(first.get(0), &Value::Int(100));
    }

    #[test]
    fn projection_onto_full_scheme_is_identity() {
        let e = emp();
        let p = e.project(&["name", "dept", "sal"]).unwrap();
        assert_eq!(p, e);
    }

    #[test]
    fn projection_is_idempotent() {
        let p1 = emp().project(&["dept"]).unwrap();
        let p2 = p1.project(&["dept"]).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn projection_rejects_unknown() {
        assert!(emp().project(&["wage"]).is_err());
    }
}
