//! Set union (∪).

use crate::ops::merge::merge_union;
use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Set union of two union-compatible states.
    ///
    /// `E₁ ∪ E₂` contains every tuple in either operand; duplicates
    /// collapse by the set semantics of states.
    ///
    /// The kernel is a single two-pointer merge over the operands' sorted
    /// runs. When one operand is empty, already contains the other, or
    /// both share the same underlying run, the surviving side's run is
    /// reused as-is — an O(1) `Arc` clone, no tuple is copied. Subsumption
    /// is detected *after* the merge by comparing output and operand
    /// lengths (|A ∪ B| = |A| exactly when B ⊆ A), so the common case
    /// costs one pass and no probe.
    pub fn union(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if other.is_empty() || self.shares_run(other) {
            return Ok(self.clone());
        }
        if self.is_empty() {
            return Ok(SnapshotState::from_shared(
                self.schema().clone(),
                other.shared_run().clone(),
            ));
        }
        let out = merge_union(self.run(), other.run());
        if out.len() == self.len() {
            return Ok(self.clone());
        }
        if out.len() == other.len() {
            return Ok(SnapshotState::from_shared(
                self.schema().clone(),
                other.shared_run().clone(),
            ));
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }

    /// Union of an ordered sequence of union-compatible states — the
    /// merge entry point for horizontally partitioned (sharded) runs.
    ///
    /// A left fold over [`SnapshotState::union`], so all of its O(1)
    /// identity shortcuts apply per step: merging `K` shards of which
    /// only one is non-empty costs `K − 1` Arc clones and no tuple
    /// copies. Returns `None` for an empty sequence (no schema to give
    /// the result).
    pub fn union_many(states: &[SnapshotState]) -> Option<Result<SnapshotState>> {
        let (first, rest) = states.split_first()?;
        let mut acc = first.clone();
        for s in rest {
            match acc.union(s) {
                Ok(u) => acc = u,
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok(acc))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn state(vals: &[i64]) -> SnapshotState {
        SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn union_merges_and_deduplicates() {
        let u = state(&[1, 2]).union(&state(&[2, 3])).unwrap();
        assert_eq!(u, state(&[1, 2, 3]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let s = state(&[1, 2]);
        assert_eq!(s.union(&state(&[])).unwrap(), s);
        assert_eq!(state(&[]).union(&s).unwrap(), s);
    }

    #[test]
    fn union_is_commutative() {
        let (a, b) = (state(&[1, 5]), state(&[5, 9]));
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
    }

    #[test]
    fn union_is_associative() {
        let (a, b, c) = (state(&[1]), state(&[2]), state(&[3]));
        assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
    }

    #[test]
    fn union_is_idempotent() {
        let a = state(&[1, 2]);
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn union_with_empty_shares_the_run() {
        // The identity cases are O(1): the surviving operand's Arc'd run
        // is reused, not copied.
        let s = state(&[1, 2]);
        let right_empty = s.union(&state(&[])).unwrap();
        assert!(s.shares_run(&right_empty));
        let left_empty = state(&[]).union(&s).unwrap();
        assert!(s.shares_run(&left_empty));
    }

    #[test]
    fn union_with_subset_shares_the_superset() {
        let big = state(&[1, 2, 3, 4]);
        let small = state(&[2, 3]);
        let r = big.union(&small).unwrap();
        assert!(big.shares_run(&r));
        let l = small.union(&big).unwrap();
        assert!(big.shares_run(&l));
        let same = big.union(&big).unwrap();
        assert!(big.shares_run(&same));
    }

    #[test]
    fn union_requires_compatibility() {
        let other = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        let o = SnapshotState::empty(other);
        assert!(state(&[1]).union(&o).is_err());
    }

    #[test]
    fn union_many_folds_partitions() {
        let parts = [state(&[1, 4]), state(&[2]), state(&[]), state(&[3, 4])];
        let u = SnapshotState::union_many(&parts).unwrap().unwrap();
        assert_eq!(u, state(&[1, 2, 3, 4]));
        assert!(SnapshotState::union_many(&[]).is_none());
        let other = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        let bad = [state(&[1]), SnapshotState::empty(other)];
        assert!(SnapshotState::union_many(&bad).unwrap().is_err());
    }
}
