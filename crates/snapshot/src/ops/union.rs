//! Set union (∪).

use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Set union of two union-compatible states.
    ///
    /// `E₁ ∪ E₂` contains every tuple in either operand; duplicates
    /// collapse by the set semantics of states.
    pub fn union(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        let mut tuples = self.tuples().clone();
        for t in other.iter() {
            tuples.insert(t.clone());
        }
        Ok(SnapshotState::from_checked(self.schema().clone(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn state(vals: &[i64]) -> SnapshotState {
        SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn union_merges_and_deduplicates() {
        let u = state(&[1, 2]).union(&state(&[2, 3])).unwrap();
        assert_eq!(u, state(&[1, 2, 3]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let s = state(&[1, 2]);
        assert_eq!(s.union(&state(&[])).unwrap(), s);
        assert_eq!(state(&[]).union(&s).unwrap(), s);
    }

    #[test]
    fn union_is_commutative() {
        let (a, b) = (state(&[1, 5]), state(&[5, 9]));
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
    }

    #[test]
    fn union_is_associative() {
        let (a, b, c) = (state(&[1]), state(&[2]), state(&[3]));
        assert_eq!(
            a.union(&b).unwrap().union(&c).unwrap(),
            a.union(&b.union(&c).unwrap()).unwrap()
        );
    }

    #[test]
    fn union_is_idempotent() {
        let a = state(&[1, 2]);
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn union_requires_compatibility() {
        let other = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        let o = SnapshotState::empty(other);
        assert!(state(&[1]).union(&o).is_err());
    }
}
