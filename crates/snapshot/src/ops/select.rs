//! Selection (σ).

use crate::predicate::Predicate;
use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Selection `σ_F(E)`: the tuples satisfying predicate `F`.
    ///
    /// The predicate is validated against the state's scheme and compiled
    /// once, then evaluated in a single scan over the sorted run —
    /// filtering preserves canonical order. When every tuple passes, the
    /// input run is reused as-is (an O(1) `Arc` clone).
    pub fn select(&self, predicate: &Predicate) -> Result<SnapshotState> {
        let compiled = predicate.compile(self.schema())?;
        let out: Vec<_> = self.iter().filter(|t| compiled.eval(t)).cloned().collect();
        if out.len() == self.len() {
            return Ok(self.clone());
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Predicate, Schema, SnapshotState, Value};

    fn emp() -> SnapshotState {
        let schema =
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(
            schema,
            vec![
                vec![Value::str("alice"), Value::Int(100)],
                vec![Value::str("bob"), Value::Int(200)],
                vec![Value::str("carol"), Value::Int(300)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_filters() {
        let s = emp()
            .select(&Predicate::gt_const("sal", Value::Int(150)))
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.schema(), emp().schema());
    }

    #[test]
    fn select_true_is_identity() {
        assert_eq!(emp().select(&Predicate::True).unwrap(), emp());
    }

    #[test]
    fn select_false_is_empty() {
        assert!(emp().select(&Predicate::False).unwrap().is_empty());
    }

    #[test]
    fn select_commutes() {
        // σ_F1(σ_F2(E)) = σ_F2(σ_F1(E)) — the commutativity the paper
        // promises is preserved.
        let f1 = Predicate::gt_const("sal", Value::Int(150));
        let f2 = Predicate::lt_const("sal", Value::Int(250));
        let a = emp().select(&f1).unwrap().select(&f2).unwrap();
        let b = emp().select(&f2).unwrap().select(&f1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cascaded_select_equals_conjunction() {
        let f1 = Predicate::gt_const("sal", Value::Int(150));
        let f2 = Predicate::lt_const("sal", Value::Int(250));
        let cascaded = emp().select(&f1).unwrap().select(&f2).unwrap();
        let conj = emp().select(&f1.clone().and(f2)).unwrap();
        assert_eq!(cascaded, conj);
    }

    #[test]
    fn select_is_idempotent() {
        let f = Predicate::gt_const("sal", Value::Int(150));
        let once = emp().select(&f).unwrap();
        assert_eq!(once.select(&f).unwrap(), once);
    }

    #[test]
    fn select_validates_predicate() {
        assert!(emp()
            .select(&Predicate::eq_const("wage", Value::Int(1)))
            .is_err());
        assert!(emp()
            .select(&Predicate::eq_const("sal", Value::str("x")))
            .is_err());
    }
}
