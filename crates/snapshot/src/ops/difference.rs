//! Set difference (−).

use std::collections::HashSet;

use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::Result;

/// Right-operand size at which a hashed probe set beats per-tuple
/// `BTreeSet` lookups.
const HASH_PROBE_THRESHOLD: usize = 16;

impl SnapshotState {
    /// Set difference of two union-compatible states.
    ///
    /// `E₁ − E₂` contains the tuples of the left operand that do not
    /// appear in the right operand.
    ///
    /// When the operands are disjoint (including an empty right operand)
    /// the left tuple set is reused as-is — an O(1) `Arc` clone. Large
    /// right operands are probed through a `HashSet` (O(1) per lookup);
    /// the result is still assembled as a `BTreeSet`, so iteration,
    /// display, and serialization order stay deterministic.
    pub fn difference(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if other.is_empty() || self.is_empty() {
            return Ok(self.clone());
        }
        if std::ptr::eq(self.tuples(), other.tuples()) {
            return Ok(SnapshotState::empty(self.schema().clone()));
        }
        let survivors: Vec<&Tuple> = if other.len() >= HASH_PROBE_THRESHOLD {
            let probe: HashSet<&Tuple> = other.iter().collect();
            self.iter().filter(|t| !probe.contains(*t)).collect()
        } else {
            self.iter().filter(|t| !other.contains(t)).collect()
        };
        if survivors.len() == self.len() {
            // Disjoint operands: nothing was removed, share the left set.
            return Ok(self.clone());
        }
        // `survivors` preserves the left operand's sorted order, so the
        // BTreeSet is rebuilt by an in-order bulk load.
        let tuples = survivors.into_iter().cloned().collect();
        Ok(SnapshotState::from_checked(self.schema().clone(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn state(vals: &[i64]) -> SnapshotState {
        SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn difference_removes_common_tuples() {
        assert_eq!(
            state(&[1, 2, 3]).difference(&state(&[2, 4])).unwrap(),
            state(&[1, 3])
        );
    }

    #[test]
    fn difference_with_empty_is_identity() {
        let s = state(&[1, 2]);
        assert_eq!(s.difference(&state(&[])).unwrap(), s);
    }

    #[test]
    fn difference_with_self_is_empty() {
        let s = state(&[1, 2]);
        assert!(s.difference(&s).unwrap().is_empty());
    }

    #[test]
    fn difference_is_not_commutative() {
        let (a, b) = (state(&[1, 2]), state(&[2, 3]));
        assert_ne!(a.difference(&b).unwrap(), b.difference(&a).unwrap());
    }

    #[test]
    fn difference_identity_cases_share_the_tuple_set() {
        let s = state(&[1, 2]);
        let kept = s.difference(&state(&[])).unwrap();
        assert!(std::ptr::eq(s.tuples(), kept.tuples()));
        // Disjoint operands remove nothing, so the left set is shared.
        let disjoint = s.difference(&state(&[7, 8])).unwrap();
        assert!(std::ptr::eq(s.tuples(), disjoint.tuples()));
    }

    #[test]
    fn difference_with_hashed_probe_matches_btree_path() {
        // A right operand above the hash-probe threshold takes the
        // HashSet path; the answer must be identical.
        let left: Vec<i64> = (0..64).collect();
        let right: Vec<i64> = (0..64).filter(|v| v % 3 == 0).collect();
        let expect: Vec<i64> = (0..64).filter(|v| v % 3 != 0).collect();
        assert_eq!(
            state(&left).difference(&state(&right)).unwrap(),
            state(&expect)
        );
    }

    #[test]
    fn difference_requires_compatibility() {
        let other = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        assert!(state(&[1])
            .difference(&SnapshotState::empty(other))
            .is_err());
    }

    #[test]
    fn intersection_via_double_difference() {
        // R ∩ S = R − (R − S): the classical derivation holds.
        let (r, s) = (state(&[1, 2, 3]), state(&[2, 3, 4]));
        let via_diff = r.difference(&r.difference(&s).unwrap()).unwrap();
        assert_eq!(via_diff, state(&[2, 3]));
    }
}
