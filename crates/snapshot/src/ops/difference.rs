//! Set difference (−).

use crate::ops::merge::merge_difference;
use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Set difference of two union-compatible states.
    ///
    /// `E₁ − E₂` contains the tuples of the left operand that do not
    /// appear in the right operand.
    ///
    /// The kernel walks the left run once, galloping the right cursor
    /// forward with binary jumps, so a large right operand costs
    /// O(|left| · log |right|) in the worst case and a near-linear merge
    /// when the operands interleave. When nothing is removed (including an
    /// empty right operand) the left run is reused as-is — an O(1) `Arc`
    /// clone.
    pub fn difference(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        if other.is_empty() || self.is_empty() {
            return Ok(self.clone());
        }
        if self.shares_run(other) {
            return Ok(SnapshotState::empty(self.schema().clone()));
        }
        let out = merge_difference(self.run(), other.run());
        if out.len() == self.len() {
            // Disjoint operands: nothing was removed, share the left run.
            return Ok(self.clone());
        }
        Ok(SnapshotState::from_sorted_vec(self.schema().clone(), out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn state(vals: &[i64]) -> SnapshotState {
        SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn difference_removes_common_tuples() {
        assert_eq!(
            state(&[1, 2, 3]).difference(&state(&[2, 4])).unwrap(),
            state(&[1, 3])
        );
    }

    #[test]
    fn difference_with_empty_is_identity() {
        let s = state(&[1, 2]);
        assert_eq!(s.difference(&state(&[])).unwrap(), s);
    }

    #[test]
    fn difference_with_self_is_empty() {
        let s = state(&[1, 2]);
        assert!(s.difference(&s).unwrap().is_empty());
    }

    #[test]
    fn difference_is_not_commutative() {
        let (a, b) = (state(&[1, 2]), state(&[2, 3]));
        assert_ne!(a.difference(&b).unwrap(), b.difference(&a).unwrap());
    }

    #[test]
    fn difference_identity_cases_share_the_run() {
        let s = state(&[1, 2]);
        let kept = s.difference(&state(&[])).unwrap();
        assert!(s.shares_run(&kept));
        // Disjoint operands remove nothing, so the left run is shared.
        let disjoint = s.difference(&state(&[7, 8])).unwrap();
        assert!(s.shares_run(&disjoint));
    }

    #[test]
    fn difference_against_large_right_operand() {
        // A right operand much larger than the left exercises the
        // galloping cursor; the answer must match the set semantics.
        let left: Vec<i64> = (0..64).collect();
        let right: Vec<i64> = (0..640).filter(|v| v % 3 == 0).collect();
        let expect: Vec<i64> = (0..64).filter(|v| v % 3 != 0).collect();
        assert_eq!(
            state(&left).difference(&state(&right)).unwrap(),
            state(&expect)
        );
    }

    #[test]
    fn difference_requires_compatibility() {
        let other = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        assert!(state(&[1])
            .difference(&SnapshotState::empty(other))
            .is_err());
    }

    #[test]
    fn intersection_via_double_difference() {
        // R ∩ S = R − (R − S): the classical derivation holds.
        let (r, s) = (state(&[1, 2, 3]), state(&[2, 3, 4]));
        let via_diff = r.difference(&r.difference(&s).unwrap()).unwrap();
        assert_eq!(via_diff, state(&[2, 3]));
    }
}
