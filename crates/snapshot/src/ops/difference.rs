//! Set difference (−).

use crate::state::SnapshotState;
use crate::Result;

impl SnapshotState {
    /// Set difference of two union-compatible states.
    ///
    /// `E₁ − E₂` contains the tuples of the left operand that do not
    /// appear in the right operand.
    pub fn difference(&self, other: &SnapshotState) -> Result<SnapshotState> {
        self.schema().require_union_compatible(other.schema())?;
        let tuples = self
            .tuples()
            .iter()
            .filter(|t| !other.contains(t))
            .cloned()
            .collect();
        Ok(SnapshotState::from_checked(self.schema().clone(), tuples))
    }
}

#[cfg(test)]
mod tests {
    use crate::{DomainType, Schema, SnapshotState, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn state(vals: &[i64]) -> SnapshotState {
        SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn difference_removes_common_tuples() {
        assert_eq!(
            state(&[1, 2, 3]).difference(&state(&[2, 4])).unwrap(),
            state(&[1, 3])
        );
    }

    #[test]
    fn difference_with_empty_is_identity() {
        let s = state(&[1, 2]);
        assert_eq!(s.difference(&state(&[])).unwrap(), s);
    }

    #[test]
    fn difference_with_self_is_empty() {
        let s = state(&[1, 2]);
        assert!(s.difference(&s).unwrap().is_empty());
    }

    #[test]
    fn difference_is_not_commutative() {
        let (a, b) = (state(&[1, 2]), state(&[2, 3]));
        assert_ne!(a.difference(&b).unwrap(), b.difference(&a).unwrap());
    }

    #[test]
    fn difference_requires_compatibility() {
        let other = Schema::new(vec![("y", DomainType::Int)]).unwrap();
        assert!(state(&[1])
            .difference(&SnapshotState::empty(other))
            .is_err());
    }

    #[test]
    fn intersection_via_double_difference() {
        // R ∩ S = R − (R − S): the classical derivation holds.
        let (r, s) = (state(&[1, 2, 3]), state(&[2, 3, 4]));
        let via_diff = r.difference(&r.difference(&s).unwrap()).unwrap();
        assert_eq!(via_diff, state(&[2, 3]));
    }
}
