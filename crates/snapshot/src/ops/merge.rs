//! Single-pass merge kernels over sorted runs.
//!
//! Every kernel here takes canonically-ordered (strictly sorted,
//! duplicate-free) slices and produces a canonically-ordered `Vec` in one
//! linear pass — no tree inserts, no per-element allocation beyond the
//! output buffer. The sequential operators call them on whole runs; the
//! partitioned kernels in [`super::par`] call them on aligned sub-ranges
//! and concatenate.

use std::cmp::Ordering;

use crate::tuple::Tuple;

/// Two-pointer union merge: every tuple in either input, once.
pub(crate) fn merge_union(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            Ordering::Less => {
                out.push(left[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(right[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                out.push(left[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Difference merge: tuples of `left` absent from `right`.
///
/// The right cursor advances by a galloping `partition_point` jump when it
/// trails, so a small left operand against a huge right one costs
/// O(|left| · log |right|) instead of a full right scan.
pub(crate) fn merge_difference(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(left.len());
    let mut j = 0usize;
    for t in left {
        if right.get(j).is_some_and(|r| r < t) {
            j += right[j..].partition_point(|r| r < t);
        }
        if right.get(j) != Some(t) {
            out.push(t.clone());
        }
    }
    out
}

/// Intersection merge: tuples present in both inputs.
pub(crate) fn merge_intersect(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(left.len().min(right.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(left[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn run(vals: &[i64]) -> Vec<Tuple> {
        vals.iter()
            .map(|&v| Tuple::new(vec![Value::Int(v)]))
            .collect()
    }

    #[test]
    fn union_merges_without_duplicates() {
        let out = merge_union(&run(&[1, 3, 5]), &run(&[2, 3, 6]));
        assert_eq!(out, run(&[1, 2, 3, 5, 6]));
    }

    #[test]
    fn difference_gallops_over_large_right() {
        let left = run(&[5, 500]);
        let right: Vec<Tuple> = run(&(0..1000).filter(|v| v % 2 == 0).collect::<Vec<_>>());
        let out = merge_difference(&left, &right);
        assert_eq!(out, run(&[5]));
    }

    #[test]
    fn intersect_keeps_common() {
        let out = merge_intersect(&run(&[1, 2, 3, 4]), &run(&[2, 4, 8]));
        assert_eq!(out, run(&[2, 4]));
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_union(&[], &[]).is_empty());
        assert!(merge_difference(&[], &run(&[1])).is_empty());
        assert!(merge_intersect(&run(&[1]), &[]).is_empty());
    }
}
