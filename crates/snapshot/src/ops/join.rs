//! Physical equi-joins: build/probe hash join and sort-merge join.
//!
//! `equi_join[spec](E₁, E₂)` is *defined* as `σ_F(E₁ × E₂)` where `F` is
//! the conjunction of the spec's equality keys and its residual predicate
//! — the paper's claim 1 makes the σ-over-× form legal, and the kernels
//! here are merely faster evaluation orders for it. Observational
//! identity is the contract: the same result state on success, an error
//! exactly when the product-then-select form errors (attribute clash,
//! unknown attribute, predicate type mismatch), on every input.
//!
//! Both kernels keep the canonical-run invariant without a sort:
//! matches are emitted probe-side-major (left run order) with each left
//! tuple's right matches in right run order, and distinct left tuples of
//! equal arity differ before the concatenation point, so the blocked
//! output is already strictly increasing — the same argument as the
//! product kernel's.

use std::collections::HashMap;

use txtime_exec::{ExecPool, OpKind};

use crate::predicate::{CompiledPredicate, Predicate};
use crate::state::SnapshotState;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// The physical algorithm of a [`JoinSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum JoinPhysical {
    /// Build a hash table on the right operand's keys, probe with the
    /// left operand in run order.
    Hash,
    /// Two-pointer merge over the operands' sorted runs; rides the
    /// canonical ordering for free when the single join key is the first
    /// schema attribute on both sides (falls back to hash otherwise).
    Merge,
}

impl std::fmt::Display for JoinPhysical {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinPhysical::Hash => write!(f, "hash"),
            JoinPhysical::Merge => write!(f, "merge"),
        }
    }
}

/// The payload of a physical equi-join: cross-operand equality keys, a
/// residual predicate over the concatenated scheme, and the chosen
/// physical algorithm. Only the plan search constructs these — the
/// surface syntax has no join form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JoinSpec {
    /// Equality keys as `(left attribute, right attribute)` pairs.
    pub keys: Vec<(String, String)>,
    /// The leftover conjuncts, evaluated on each concatenated candidate
    /// pair ([`Predicate::True`] when none).
    pub residual: Predicate,
    /// The physical algorithm.
    pub physical: JoinPhysical,
}

impl JoinSpec {
    /// The defining selection predicate over the concatenated scheme:
    /// `k₁ ∧ k₂ ∧ … ∧ residual` (just `residual` with no keys).
    pub fn as_predicate(&self) -> Predicate {
        let mut pred: Option<Predicate> = None;
        for (l, r) in &self.keys {
            let eq = Predicate::eq_attrs(l, r);
            pred = Some(match pred {
                Some(p) => p.and(eq),
                None => eq,
            });
        }
        match pred {
            Some(p) if self.residual == Predicate::True => p,
            Some(p) => p.and(self.residual.clone()),
            None => self.residual.clone(),
        }
    }
}

impl std::fmt::Display for JoinSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}; ", self.physical)?;
        for (i, (l, r)) in self.keys.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l} = {r}")?;
        }
        write!(f, "; {}", self.residual)
    }
}

/// The spec's keys resolved to column indices: `(left column, right
/// column)` per key. `None` when a key cannot be resolved side-wise
/// (an attribute missing from its operand's scheme) — the caller then
/// falls back to the nested-loop form, which the compiled predicate
/// already evaluates correctly. Shared with the historical kernel.
pub fn key_columns(
    spec: &JoinSpec,
    left: &crate::schema::Schema,
    right: &crate::schema::Schema,
) -> Option<Vec<(usize, usize)>> {
    spec.keys
        .iter()
        .map(|(l, r)| Some((left.index_of(l)?, right.index_of(r)?)))
        .collect()
}

/// The hash-join build side: right-run indices grouped by key values, in
/// run order (so probe emissions stay canonically sorted).
pub(crate) fn build_table(
    right: &SnapshotState,
    cols: &[(usize, usize)],
) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, r) in right.iter().enumerate() {
        let key: Vec<Value> = cols.iter().map(|&(_, rc)| r.get(rc).clone()).collect();
        table.entry(key).or_default().push(i);
    }
    table
}

/// Whether the sort-merge kernel may run: one key, and it is the first
/// schema attribute on both sides, so both runs are already key-sorted.
pub fn merge_applies(cols: &[(usize, usize)]) -> bool {
    matches!(cols, [(0, 0)])
}

impl SnapshotState {
    /// Physical equi-join `join[spec](self, other)`, observationally
    /// identical to `σ_{spec}(self × other)` — values and errors.
    pub fn equi_join(&self, other: &SnapshotState, spec: &JoinSpec) -> Result<SnapshotState> {
        // Error discipline replicates product-then-select: the schema
        // clash check first, then predicate validation against the
        // concatenated scheme.
        let schema = self.schema().product(other.schema())?;
        let compiled = spec.as_predicate().compile(&schema)?;
        let out = match key_columns(spec, self.schema(), other.schema()) {
            Some(cols)
                if !cols.is_empty()
                    && merge_applies(&cols)
                    && spec.physical == JoinPhysical::Merge =>
            {
                merge_join(self.run(), other.run(), &compiled)
            }
            Some(cols) if !cols.is_empty() => {
                let table = build_table(other, &cols);
                hash_probe(self.run(), other.run(), &cols, &table, &compiled)
            }
            // No side-wise keys: degrade to the defining nested loop.
            _ => nested_loop(self.run(), other.run(), &compiled),
        };
        Ok(SnapshotState::from_sorted_vec(schema, out))
    }

    /// [`SnapshotState::equi_join`] with the probe side partitioned
    /// across the pool on O(1) slice ranges; the build side (hash table
    /// or right run) is built once and shared by every chunk. Chunk
    /// results concatenate in order, so the merged run is identical to
    /// the sequential kernel's.
    pub fn equi_join_par(
        &self,
        other: &SnapshotState,
        spec: &JoinSpec,
        pool: &ExecPool,
    ) -> Result<SnapshotState> {
        let schema = self.schema().product(other.schema())?;
        let compiled = spec.as_predicate().compile(&schema)?;
        let grain = OpKind::Join.min_chunk();
        let cols = key_columns(spec, self.schema(), other.schema());
        let chunks: Vec<Vec<Tuple>> = match cols {
            Some(cols)
                if !cols.is_empty()
                    && merge_applies(&cols)
                    && spec.physical == JoinPhysical::Merge =>
            {
                // Merge probes both runs with two pointers; partitioning
                // the left side would re-scan the right per chunk, so the
                // merge kernel stays single-pass (it is already the
                // cheap, cache-friendly path).
                vec![merge_join(self.run(), other.run(), &compiled)]
            }
            Some(cols) if !cols.is_empty() => {
                let table = build_table(other, &cols);
                pool.map_chunks(OpKind::Join, self.run(), grain, |chunk| {
                    hash_probe(chunk, other.run(), &cols, &table, &compiled)
                })
            }
            _ => pool.map_chunks(OpKind::Join, self.run(), grain, |chunk| {
                nested_loop(chunk, other.run(), &compiled)
            }),
        };
        pool.note_join(other.len() as u64, self.len() as u64, chunks.len() as u64);
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        Ok(SnapshotState::from_sorted_vec(schema, out))
    }
}

/// Probe `left` (a contiguous slice of the left run) against the build
/// table; emissions are left-major with right matches ascending, hence
/// sorted.
fn hash_probe(
    left: &[Tuple],
    right: &[Tuple],
    cols: &[(usize, usize)],
    table: &HashMap<Vec<Value>, Vec<usize>>,
    compiled: &CompiledPredicate,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    let mut key: Vec<Value> = Vec::with_capacity(cols.len());
    for l in left {
        key.clear();
        key.extend(cols.iter().map(|&(lc, _)| l.get(lc).clone()));
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let pair = l.concat(&right[ri]);
                // The full defining predicate (keys re-checked plus the
                // residual) keeps the kernel trivially faithful to the
                // σ(×) semantics.
                if compiled.eval(&pair) {
                    out.push(pair);
                }
            }
        }
    }
    out
}

/// Two-pointer merge over key-sorted runs (key = column 0 on both
/// sides): equal-key blocks pair up block-major, which preserves the
/// canonical order of the defining product.
fn merge_join(left: &[Tuple], right: &[Tuple], compiled: &CompiledPredicate) -> Vec<Tuple> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let lk = left[i].get(0);
        let rk = right[j].get(0);
        if lk < rk {
            i += 1;
        } else if lk > rk {
            j += 1;
        } else {
            // Close both equal-key blocks, then pair them.
            let i_end = i + left[i..].partition_point(|t| t.get(0) == lk);
            let j_end = j + right[j..].partition_point(|t| t.get(0) == rk);
            for l in &left[i..i_end] {
                for r in &right[j..j_end] {
                    let pair = l.concat(r);
                    if compiled.eval(&pair) {
                        out.push(pair);
                    }
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// The defining nested loop (the σ(×) order), for specs whose keys do
/// not resolve side-wise.
fn nested_loop(left: &[Tuple], right: &[Tuple], compiled: &CompiledPredicate) -> Vec<Tuple> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            let pair = l.concat(r);
            if compiled.eval(&pair) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainType, Schema, Value};

    fn spec(keys: &[(&str, &str)], physical: JoinPhysical) -> JoinSpec {
        JoinSpec {
            keys: keys
                .iter()
                .map(|&(l, r)| (l.to_string(), r.to_string()))
                .collect(),
            residual: Predicate::True,
            physical,
        }
    }

    fn xs(vals: &[(i64, i64)]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int), ("u", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(
            schema,
            vals.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
        )
        .unwrap()
    }

    fn ys(vals: &[(i64, i64)]) -> SnapshotState {
        let schema = Schema::new(vec![("y", DomainType::Int), ("v", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(
            schema,
            vals.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
        )
        .unwrap()
    }

    /// The defining oracle: σ_spec(l × r).
    fn oracle(l: &SnapshotState, r: &SnapshotState, s: &JoinSpec) -> Result<SnapshotState> {
        l.product(r)?.select(&s.as_predicate())
    }

    #[test]
    fn hash_join_matches_oracle() {
        let l = xs(&[(1, 10), (2, 20), (2, 21), (3, 30)]);
        let r = ys(&[(2, 200), (3, 300), (3, 301), (9, 900)]);
        let s = spec(&[("x", "y")], JoinPhysical::Hash);
        assert_eq!(l.equi_join(&r, &s).unwrap(), oracle(&l, &r, &s).unwrap());
        // x=2 pairs two left tuples with one right; x=3 pairs one left
        // tuple with two rights.
        assert_eq!(l.equi_join(&r, &s).unwrap().len(), 4);
    }

    #[test]
    fn merge_join_matches_oracle_on_prefix_key() {
        let l = xs(&[(1, 10), (2, 20), (2, 21), (3, 30)]);
        let r = ys(&[(2, 200), (2, 201), (3, 300)]);
        let s = spec(&[("x", "y")], JoinPhysical::Merge);
        assert_eq!(l.equi_join(&r, &s).unwrap(), oracle(&l, &r, &s).unwrap());
    }

    #[test]
    fn merge_falls_back_to_hash_off_prefix() {
        let l = xs(&[(1, 10), (2, 20)]);
        let r = ys(&[(100, 20), (200, 10)]);
        // Key u = v is column 1 on both sides: merge cannot ride the run
        // order, the kernel must still answer correctly.
        let s = spec(&[("u", "v")], JoinPhysical::Merge);
        assert_eq!(l.equi_join(&r, &s).unwrap(), oracle(&l, &r, &s).unwrap());
        assert_eq!(l.equi_join(&r, &s).unwrap().len(), 2);
    }

    #[test]
    fn residual_filters_pairs() {
        let l = xs(&[(1, 10), (2, 20)]);
        let r = ys(&[(1, 100), (1, 5), (2, 200)]);
        let s = JoinSpec {
            keys: vec![("x".into(), "y".into())],
            residual: Predicate::Comp(
                crate::predicate::Operand::attr("u"),
                crate::predicate::CompOp::Lt,
                crate::predicate::Operand::attr("v"),
            ),
            physical: JoinPhysical::Hash,
        };
        assert_eq!(l.equi_join(&r, &s).unwrap(), oracle(&l, &r, &s).unwrap());
        assert_eq!(l.equi_join(&r, &s).unwrap().len(), 2);
    }

    #[test]
    fn errors_match_the_product_select_form() {
        let l = xs(&[(1, 10)]);
        let s = spec(&[("x", "x")], JoinPhysical::Hash);
        // Attribute clash: both error.
        assert!(l.equi_join(&l, &s).is_err());
        assert!(oracle(&l, &l, &s).is_err());
        // Unknown attribute: both error.
        let r = ys(&[(1, 100)]);
        let bad = spec(&[("ghost", "y")], JoinPhysical::Hash);
        assert!(l.equi_join(&r, &bad).is_err());
        assert!(oracle(&l, &r, &bad).is_err());
        // Type mismatch across the key: both error.
        let mixed = SnapshotState::from_rows(
            Schema::new(vec![("y", DomainType::Str)]).unwrap(),
            vec![vec![Value::str("a")]],
        )
        .unwrap();
        let ts = spec(&[("x", "y")], JoinPhysical::Hash);
        assert!(l.equi_join(&mixed, &ts).is_err());
        assert!(oracle(&l, &mixed, &ts).is_err());
    }

    #[test]
    fn empty_keys_degrade_to_filtered_product() {
        let l = xs(&[(1, 10), (2, 20)]);
        let r = ys(&[(1, 100)]);
        let s = JoinSpec {
            keys: vec![],
            residual: Predicate::True,
            physical: JoinPhysical::Hash,
        };
        assert_eq!(l.equi_join(&r, &s).unwrap(), l.product(&r).unwrap());
    }

    /// A deterministic pseudo-random state with a skewed int key (column
    /// 0) big enough to cross the parallel kernel's chunk grain.
    fn pseudo(seed: u64, prefix: (&str, &str), n: u64, key_range: u64) -> SnapshotState {
        let schema = Schema::new(vec![
            (prefix.0, DomainType::Int),
            (prefix.1, DomainType::Int),
        ])
        .unwrap();
        let rows = (0..n).map(|i| {
            let h = seed
                .wrapping_add(i)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(17);
            vec![
                Value::Int((h % key_range) as i64),
                Value::Int((h >> 32) as i64),
            ]
        });
        SnapshotState::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn parallel_join_matches_sequential_and_oracle() {
        for seed in 0..4u64 {
            let l = pseudo(seed, ("x", "u"), 1500, 64);
            let r = pseudo(seed.wrapping_add(99), ("y", "v"), 900, 64);
            for physical in [JoinPhysical::Hash, JoinPhysical::Merge] {
                let s = spec(&[("x", "y")], physical);
                let seq = l.equi_join(&r, &s).unwrap();
                assert_eq!(seq, oracle(&l, &r, &s).unwrap(), "seed {seed} {physical}");
                for threads in [1, 2, 4] {
                    let pool = ExecPool::new(threads);
                    assert_eq!(
                        l.equi_join_par(&r, &s, &pool).unwrap(),
                        seq,
                        "seed {seed} {physical} threads {threads}"
                    );
                }
            }
        }
    }
}
