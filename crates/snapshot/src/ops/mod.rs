//! The snapshot-algebra operators.
//!
//! The five primitives that define the snapshot algebra — union,
//! difference, cartesian product, projection, and selection (paper §3.1:
//! "the five operators that serve to define the snapshot algebra") — live
//! in their own modules, one per operator. [`derived`] adds the standard
//! operators definable from the primitives: intersection, theta/natural
//! join, semijoin, antijoin, rename, and division.
//!
//! All operators are pure: they consume `&self` and produce a fresh
//! [`crate::SnapshotState`], mirroring the paper's requirement that
//! "evaluation of an expression on a specific database does not change
//! that database".

pub mod derived;
pub mod difference;
pub mod join;
pub(crate) mod merge;
pub mod par;
pub mod product;
pub mod project;
pub mod select;
pub mod union;
