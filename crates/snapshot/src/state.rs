//! Snapshot states: the semantic domain SNAPSHOT STATE.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A snapshot state: a finite set of tuples over a scheme.
///
/// This is the paper's semantic domain *SNAPSHOT STATE* — "the domain of
/// all valid snapshot states, as defined in the snapshot algebra
/// \[Maier 1983\]". Tuple sets are kept in a `BTreeSet` so that iteration
/// order (and hence display, serialization, and test output) is
/// deterministic.
///
/// The tuple set is reference-counted: cloning a state — the basic move of
/// the paper's persistent, full-copy reference semantics — is O(1), and
/// mutation copies on write.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotState {
    schema: Schema,
    tuples: Arc<BTreeSet<Tuple>>,
}

impl SnapshotState {
    /// The empty state over `schema`.
    pub fn empty(schema: Schema) -> SnapshotState {
        SnapshotState {
            schema,
            tuples: Arc::new(BTreeSet::new()),
        }
    }

    /// Builds a state from tuples, validating each against the scheme.
    pub fn new(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<SnapshotState> {
        let mut set = BTreeSet::new();
        for t in tuples {
            t.check(&schema)?;
            set.insert(t);
        }
        Ok(SnapshotState {
            schema,
            tuples: Arc::new(set),
        })
    }

    /// Builds a state from rows of raw values.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<SnapshotState> {
        SnapshotState::new(schema, rows.into_iter().map(Tuple::new))
    }

    /// Internal constructor for operator results whose tuples are known
    /// valid by construction.
    pub(crate) fn from_checked(schema: Schema, tuples: BTreeSet<Tuple>) -> SnapshotState {
        SnapshotState {
            schema,
            tuples: Arc::new(tuples),
        }
    }

    /// Internal constructor that adopts an already-shared tuple set — the
    /// zero-copy path for operator results that are one of the operands
    /// unchanged.
    pub(crate) fn from_shared(schema: Schema, tuples: Arc<BTreeSet<Tuple>>) -> SnapshotState {
        SnapshotState { schema, tuples }
    }

    /// The reference-counted tuple set (for zero-copy sharing between
    /// operator results).
    pub(crate) fn shared_tuples(&self) -> &Arc<BTreeSet<Tuple>> {
        &self.tuples
    }

    /// The state's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether `tuple` is a member of the state.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterates over the tuples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The underlying tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// A copy of this state with `tuple` inserted (checked against the
    /// scheme).
    pub fn with_tuple(&self, tuple: Tuple) -> Result<SnapshotState> {
        tuple.check(&self.schema)?;
        let mut set = (*self.tuples).clone();
        set.insert(tuple);
        Ok(SnapshotState::from_checked(self.schema.clone(), set))
    }

    /// A copy of this state with `tuple` removed.
    pub fn without_tuple(&self, tuple: &Tuple) -> SnapshotState {
        let mut set = (*self.tuples).clone();
        set.remove(tuple);
        SnapshotState::from_checked(self.schema.clone(), set)
    }

    /// Applies a batch of removals and insertions *in place*, copying the
    /// tuple set only if it is shared (copy-on-write via [`Arc`]).
    ///
    /// This is the replay kernel of the delta-based storage backends: a
    /// working state owned uniquely by the replay loop is mutated without
    /// allocating a fresh set per delta. Inserted tuples are checked
    /// against the scheme; removals need no check.
    pub fn apply_delta(&mut self, removed: &[Tuple], added: &[Tuple]) -> Result<()> {
        for t in added {
            t.check(&self.schema)?;
        }
        let set = Arc::make_mut(&mut self.tuples);
        for t in removed {
            set.remove(t);
        }
        for t in added {
            set.insert(t.clone());
        }
        Ok(())
    }

    /// Approximate footprint in bytes for space accounting (experiment E3).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<SnapshotState>()
            + self.tuples.iter().map(Tuple::size_bytes).sum::<usize>()
    }
}

impl fmt::Display for SnapshotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.schema)?;
        let mut first = true;
        for t in self.tuples.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {t}")?;
            first = false;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainType;

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap()
    }

    fn state() -> SnapshotState {
        SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("alice"), Value::Int(100)],
                vec![Value::str("bob"), Value::Int(200)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_rows_collapse() {
        let s = SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("alice"), Value::Int(100)],
                vec![Value::str("alice"), Value::Int(100)],
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn construction_validates_rows() {
        let err = SnapshotState::from_rows(schema(), vec![vec![Value::Int(1)]]);
        assert!(err.is_err());
    }

    #[test]
    fn membership_and_iteration_order() {
        let s = state();
        assert!(s.contains(&Tuple::new(vec![Value::str("bob"), Value::Int(200)])));
        let names: Vec<_> = s
            .iter()
            .map(|t| t.get(0).as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["alice", "bob"]);
    }

    #[test]
    fn with_and_without_tuple_are_persistent() {
        let s = state();
        let carol = Tuple::new(vec![Value::str("carol"), Value::Int(50)]);
        let s2 = s.with_tuple(carol.clone()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s2.len(), 3);
        let s3 = s2.without_tuple(&carol);
        assert_eq!(s3, s);
    }

    #[test]
    fn with_tuple_validates() {
        let s = state();
        assert!(s.with_tuple(Tuple::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn apply_delta_mutates_and_validates() {
        let mut s = state();
        let carol = Tuple::new(vec![Value::str("carol"), Value::Int(50)]);
        let bob = Tuple::new(vec![Value::str("bob"), Value::Int(200)]);
        s.apply_delta(std::slice::from_ref(&bob), std::slice::from_ref(&carol))
            .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&carol));
        assert!(!s.contains(&bob));
        // Invalid insertions are rejected before any mutation happens.
        assert!(s
            .apply_delta(&[], &[Tuple::new(vec![Value::Int(1)])])
            .is_err());
    }

    #[test]
    fn apply_delta_copies_on_write_when_shared() {
        let original = state();
        let mut working = original.clone();
        working
            .apply_delta(&[], &[Tuple::new(vec![Value::str("zed"), Value::Int(7)])])
            .unwrap();
        assert_eq!(original.len(), 2); // the shared set is untouched
        assert_eq!(working.len(), 3);
    }

    #[test]
    fn equality_ignores_sharing() {
        let s = state();
        let t = state();
        assert_eq!(s, t);
    }

    #[test]
    fn display_form() {
        let s =
            SnapshotState::from_rows(schema(), vec![vec![Value::str("a"), Value::Int(1)]]).unwrap();
        assert_eq!(s.to_string(), "(name: str, sal: int) { (\"a\", 1) }");
    }

    #[test]
    fn empty_state() {
        let s = SnapshotState::empty(schema());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
