//! Snapshot states: the semantic domain SNAPSHOT STATE.

use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::intern::StrInterner;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A snapshot state: a finite set of tuples over a scheme.
///
/// This is the paper's semantic domain *SNAPSHOT STATE* — "the domain of
/// all valid snapshot states, as defined in the snapshot algebra
/// \[Maier 1983\]". The physical representation is a *sorted run*: a flat,
/// reference-counted slice of tuples in strictly increasing lexicographic
/// order with no duplicates. Set semantics are untouched — the run is just
/// the canonical enumeration of the set — but the flat layout lets the
/// algebra operators run as single-pass merge/scan kernels over slices,
/// membership tests become binary searches, and the partitioned kernels in
/// `crates/exec` split on index ranges in O(1).
///
/// The run is reference-counted: cloning a state — the basic move of the
/// paper's persistent, full-copy reference semantics — is O(1), and
/// mutation copies on write.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotState {
    schema: Schema,
    run: Arc<Vec<Tuple>>,
}

/// Whether `run` is strictly increasing (sorted with no duplicates).
pub(crate) fn is_strictly_sorted(run: &[Tuple]) -> bool {
    run.windows(2).all(|w| w[0] < w[1])
}

impl SnapshotState {
    /// The empty state over `schema`.
    pub fn empty(schema: Schema) -> SnapshotState {
        SnapshotState {
            schema,
            run: Arc::new(Vec::new()),
        }
    }

    /// Builds a state from tuples, validating each against the scheme.
    pub fn new(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<SnapshotState> {
        let mut run = Vec::new();
        for t in tuples {
            t.check(&schema)?;
            run.push(t);
        }
        Ok(SnapshotState::from_unsorted_vec(schema, run))
    }

    /// Builds a state from rows of raw values.
    pub fn from_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<SnapshotState> {
        SnapshotState::new(schema, rows.into_iter().map(Tuple::new))
    }

    /// Internal constructor for operator results that are already in
    /// canonical (strictly sorted, duplicate-free) order — the common case
    /// for merge kernels, whose outputs are sorted by construction.
    pub(crate) fn from_sorted_vec(schema: Schema, run: Vec<Tuple>) -> SnapshotState {
        debug_assert!(is_strictly_sorted(&run), "run must be strictly sorted");
        SnapshotState {
            schema,
            run: Arc::new(run),
        }
    }

    /// Internal constructor for operator results in arbitrary order:
    /// sorts and deduplicates to restore the canonical run invariant.
    pub(crate) fn from_unsorted_vec(schema: Schema, mut run: Vec<Tuple>) -> SnapshotState {
        if !is_strictly_sorted(&run) {
            run.sort_unstable();
            run.dedup();
        }
        SnapshotState {
            schema,
            run: Arc::new(run),
        }
    }

    /// Bridge constructor from a `BTreeSet` (which iterates in exactly the
    /// canonical order). Retained for the reference implementation and
    /// compatibility call sites.
    pub(crate) fn from_checked(schema: Schema, tuples: BTreeSet<Tuple>) -> SnapshotState {
        SnapshotState {
            schema,
            run: Arc::new(tuples.into_iter().collect()),
        }
    }

    /// Internal constructor that adopts an already-shared run — the
    /// zero-copy path for operator results that are one of the operands
    /// unchanged.
    pub(crate) fn from_shared(schema: Schema, run: Arc<Vec<Tuple>>) -> SnapshotState {
        debug_assert!(is_strictly_sorted(&run), "run must be strictly sorted");
        SnapshotState { schema, run }
    }

    /// The reference-counted run (for zero-copy sharing between operator
    /// results).
    pub(crate) fn shared_run(&self) -> &Arc<Vec<Tuple>> {
        &self.run
    }

    /// The state's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.run.len()
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Whether `tuple` is a member of the state.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.run.binary_search(tuple).is_ok()
    }

    /// Iterates over the tuples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.run.iter()
    }

    /// The sorted run: every tuple in strictly increasing lexicographic
    /// order.
    pub fn run(&self) -> &[Tuple] {
        &self.run
    }

    /// Whether two states share the same physical run allocation — the
    /// observable footprint of the operators' zero-copy shortcuts.
    pub fn shares_run(&self, other: &SnapshotState) -> bool {
        Arc::ptr_eq(&self.run, &other.run)
    }

    /// The tuple set as a `BTreeSet` — a compatibility accessor that
    /// materializes a fresh tree from the run. Prefer [`SnapshotState::run`]
    /// or [`SnapshotState::iter`] on hot paths.
    pub fn tuples(&self) -> BTreeSet<Tuple> {
        self.run.iter().cloned().collect()
    }

    /// A state equal to this one but with every string value drawn from
    /// `pool`, so later comparisons against other interned states settle on
    /// pointer equality. Returns a shallow clone when nothing changes.
    pub fn interned(&self, pool: &mut StrInterner) -> SnapshotState {
        let mut changed = false;
        let run: Vec<Tuple> = self
            .run
            .iter()
            .map(|t| {
                let it = pool.intern_tuple(t);
                changed |= !it.shares_values(t);
                it
            })
            .collect();
        if changed {
            // Interning preserves content equality, hence the sort order.
            SnapshotState::from_sorted_vec(self.schema.clone(), run)
        } else {
            self.clone()
        }
    }

    /// A copy of this state with `tuple` inserted (checked against the
    /// scheme).
    pub fn with_tuple(&self, tuple: Tuple) -> Result<SnapshotState> {
        tuple.check(&self.schema)?;
        match self.run.binary_search(&tuple) {
            Ok(_) => Ok(self.clone()),
            Err(pos) => {
                let mut run = Vec::with_capacity(self.run.len() + 1);
                run.extend_from_slice(&self.run[..pos]);
                run.push(tuple);
                run.extend_from_slice(&self.run[pos..]);
                Ok(SnapshotState::from_sorted_vec(self.schema.clone(), run))
            }
        }
    }

    /// A copy of this state with `tuple` removed.
    pub fn without_tuple(&self, tuple: &Tuple) -> SnapshotState {
        match self.run.binary_search(tuple) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut run = Vec::with_capacity(self.run.len() - 1);
                run.extend_from_slice(&self.run[..pos]);
                run.extend_from_slice(&self.run[pos + 1..]);
                SnapshotState::from_sorted_vec(self.schema.clone(), run)
            }
        }
    }

    /// Applies a batch of removals and insertions as an in-place merge of
    /// sorted runs.
    ///
    /// This is the replay kernel of the delta-based storage backends. A
    /// replay loop threads one working state through every delta in the
    /// chain; because the run is copy-on-write, the first application
    /// copies the shared run once and every later application edits it in
    /// place: removals are one forward compaction pass and insertions one
    /// backward gap merge, so untouched tuples are moved (not cloned) and
    /// no per-delta allocation happens beyond the `Vec`'s own growth.
    /// Semantics match the set formulation — removals apply first, then
    /// insertions, so a tuple present in both slices ends up in the state.
    /// Inserted tuples are checked against the scheme; removals need no
    /// check.
    pub fn apply_delta(&mut self, removed: &[Tuple], added: &[Tuple]) -> Result<()> {
        for t in added {
            t.check(&self.schema)?;
        }
        if removed.is_empty() && added.is_empty() {
            return Ok(());
        }
        let removed = normalize_run(removed);
        let added = normalize_run(added);
        let run = Arc::make_mut(&mut self.run);
        // Pass 1: removals. One galloping sweep locates the present ones
        // (both runs are sorted, so each search costs O(log gap)), then
        // compare-free swaps close the holes — untouched tuples are moved,
        // never cloned or re-compared.
        if !removed.is_empty() {
            let mut holes: Vec<usize> = Vec::with_capacity(removed.len());
            let mut pos = 0;
            for r in removed.iter() {
                pos = gallop(run, pos, r);
                if run.get(pos) == Some(r) {
                    holes.push(pos);
                    pos += 1;
                }
            }
            if !holes.is_empty() {
                let mut d = holes[0];
                for (h, &hole) in holes.iter().enumerate() {
                    let next = holes.get(h + 1).copied().unwrap_or(run.len());
                    for s in hole + 1..next {
                        run.swap(d, s);
                        d += 1;
                    }
                }
                run.truncate(d);
            }
        }
        // Pass 2: insertions. Locate the genuinely fresh tuples the same
        // way (already-present ones are kept — set semantics, which also
        // realizes the insertions-win-ties rule for a tuple removed and
        // re-added by the same delta), open a gap at the tail, and shift
        // blocks up from the back.
        if !added.is_empty() {
            let mut ins: Vec<(usize, usize)> = Vec::with_capacity(added.len());
            let mut pos = 0;
            for (k, a) in added.iter().enumerate() {
                pos = gallop(run, pos, a);
                if run.get(pos) == Some(a) {
                    pos += 1;
                } else {
                    ins.push((pos, k));
                }
            }
            if !ins.is_empty() {
                let m = run.len();
                // Placeholder clones open the gap; every slot at or above
                // the lowest insertion point is overwritten by the shift.
                run.extend(added.iter().take(ins.len()).cloned());
                let (mut s, mut d) = (m, m + ins.len());
                for &(p, k) in ins.iter().rev() {
                    while s > p {
                        s -= 1;
                        d -= 1;
                        run.swap(d, s);
                    }
                    d -= 1;
                    run[d] = added[k].clone();
                }
            }
        }
        debug_assert!(is_strictly_sorted(run));
        Ok(())
    }

    /// A copy of this state with a batch of removals and insertions
    /// applied — the non-mutating face of [`SnapshotState::apply_delta`],
    /// used by incremental view maintenance to build a node's next cached
    /// state without disturbing the one still referenced as "old".
    pub fn with_delta(&self, removed: &[Tuple], added: &[Tuple]) -> Result<SnapshotState> {
        let mut next = self.clone();
        next.apply_delta(removed, added)?;
        Ok(next)
    }

    /// Approximate footprint in bytes for space accounting (experiment E3).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<SnapshotState>() + self.run.iter().map(Tuple::size_bytes).sum::<usize>()
    }
}

/// First index `i >= lo` with `run[i] >= target`, found by exponential
/// probing upward from `lo`. Delta events arrive in sorted order, so a
/// sweep that restarts each search at the previous hit pays O(log gap)
/// comparisons per event instead of O(log n).
fn gallop(run: &[Tuple], lo: usize, target: &Tuple) -> usize {
    if lo >= run.len() || run[lo] >= *target {
        return lo;
    }
    // Invariant: run[prev] < target.
    let (mut prev, mut step) = (lo, 1usize);
    while prev + step < run.len() && run[prev + step] < *target {
        prev += step;
        step *= 2;
    }
    let hi = (prev + step).min(run.len());
    prev + 1 + run[prev + 1..hi].partition_point(|t| t < target)
}

/// Delta slices from [`crate::SnapshotState::apply_delta`] callers are
/// usually already canonical (they come from sorted-set differences); fall
/// back to a local sort+dedup when they are not.
fn normalize_run(run: &[Tuple]) -> Cow<'_, [Tuple]> {
    if is_strictly_sorted(run) {
        Cow::Borrowed(run)
    } else {
        let mut owned = run.to_vec();
        owned.sort_unstable();
        owned.dedup();
        Cow::Owned(owned)
    }
}

impl fmt::Display for SnapshotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.schema)?;
        let mut first = true;
        for t in self.run.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {t}")?;
            first = false;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainType;

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap()
    }

    fn state() -> SnapshotState {
        SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("alice"), Value::Int(100)],
                vec![Value::str("bob"), Value::Int(200)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_rows_collapse() {
        let s = SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("alice"), Value::Int(100)],
                vec![Value::str("alice"), Value::Int(100)],
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn construction_validates_rows() {
        let err = SnapshotState::from_rows(schema(), vec![vec![Value::Int(1)]]);
        assert!(err.is_err());
    }

    #[test]
    fn membership_and_iteration_order() {
        let s = state();
        assert!(s.contains(&Tuple::new(vec![Value::str("bob"), Value::Int(200)])));
        let names: Vec<_> = s
            .iter()
            .map(|t| t.get(0).as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["alice", "bob"]);
    }

    #[test]
    fn run_is_strictly_sorted() {
        let s = SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("zed"), Value::Int(1)],
                vec![Value::str("alice"), Value::Int(2)],
                vec![Value::str("mid"), Value::Int(3)],
                vec![Value::str("alice"), Value::Int(2)],
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 3);
        assert!(is_strictly_sorted(s.run()));
    }

    #[test]
    fn with_and_without_tuple_are_persistent() {
        let s = state();
        let carol = Tuple::new(vec![Value::str("carol"), Value::Int(50)]);
        let s2 = s.with_tuple(carol.clone()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s2.len(), 3);
        let s3 = s2.without_tuple(&carol);
        assert_eq!(s3, s);
    }

    #[test]
    fn with_existing_tuple_shares_run() {
        let s = state();
        let bob = Tuple::new(vec![Value::str("bob"), Value::Int(200)]);
        let s2 = s.with_tuple(bob).unwrap();
        assert!(s.shares_run(&s2));
        let s3 = s.without_tuple(&Tuple::new(vec![Value::str("nobody"), Value::Int(0)]));
        assert!(s.shares_run(&s3));
    }

    #[test]
    fn with_tuple_validates() {
        let s = state();
        assert!(s.with_tuple(Tuple::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn apply_delta_mutates_and_validates() {
        let mut s = state();
        let carol = Tuple::new(vec![Value::str("carol"), Value::Int(50)]);
        let bob = Tuple::new(vec![Value::str("bob"), Value::Int(200)]);
        s.apply_delta(std::slice::from_ref(&bob), std::slice::from_ref(&carol))
            .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&carol));
        assert!(!s.contains(&bob));
        // Invalid insertions are rejected before any mutation happens.
        assert!(s
            .apply_delta(&[], &[Tuple::new(vec![Value::Int(1)])])
            .is_err());
    }

    #[test]
    fn apply_delta_remove_then_add_keeps_tuple() {
        let mut s = state();
        let bob = Tuple::new(vec![Value::str("bob"), Value::Int(200)]);
        s.apply_delta(std::slice::from_ref(&bob), std::slice::from_ref(&bob))
            .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&bob));
    }

    #[test]
    fn apply_delta_accepts_unsorted_slices() {
        let mut s = SnapshotState::empty(schema());
        let rows: Vec<Tuple> = (0..16)
            .rev()
            .map(|i| Tuple::new(vec![Value::str(format!("n{i:02}")), Value::Int(i)]))
            .collect();
        s.apply_delta(&[], &rows).unwrap();
        assert_eq!(s.len(), 16);
        assert!(is_strictly_sorted(s.run()));
        // Remove odd entries in reverse order.
        let removals: Vec<Tuple> = rows
            .iter()
            .filter(|t| t.get(1).as_int().unwrap() % 2 == 1)
            .cloned()
            .collect();
        s.apply_delta(&removals, &[]).unwrap();
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|t| t.get(1).as_int().unwrap() % 2 == 0));
    }

    #[test]
    fn apply_delta_copies_on_write_when_shared() {
        let original = state();
        let mut working = original.clone();
        working
            .apply_delta(&[], &[Tuple::new(vec![Value::str("zed"), Value::Int(7)])])
            .unwrap();
        assert_eq!(original.len(), 2); // the shared run is untouched
        assert_eq!(working.len(), 3);
    }

    #[test]
    fn equality_ignores_sharing() {
        let s = state();
        let t = state();
        assert_eq!(s, t);
    }

    #[test]
    fn tuples_compat_accessor_matches_run() {
        let s = state();
        let set = s.tuples();
        assert_eq!(set.len(), s.len());
        assert!(set.iter().zip(s.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn interned_states_share_string_allocations() {
        let mut pool = StrInterner::new();
        let a = state().interned(&mut pool);
        let b = state().interned(&mut pool);
        for (x, y) in a.iter().zip(b.iter()) {
            match (x.get(0), y.get(0)) {
                (Value::Str(p), Value::Str(q)) => assert!(Arc::ptr_eq(p, q)),
                _ => panic!("expected strings"),
            }
        }
        // A second pass through the pool is a no-op that shares the run.
        let c = a.interned(&mut pool);
        assert!(a.shares_run(&c));
    }

    #[test]
    fn display_form() {
        let s =
            SnapshotState::from_rows(schema(), vec![vec![Value::str("a"), Value::Int(1)]]).unwrap();
        assert_eq!(s.to_string(), "(name: str, sal: int) { (\"a\", 1) }");
    }

    #[test]
    fn empty_state() {
        let s = SnapshotState::empty(schema());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
