//! The boolean-expression domain 𝓕 used by selection.
//!
//! The paper defines 𝓕 as "boolean expressions of elements from the
//! domains IDENTIFIER and STRING, the relational operators, and the
//! logical operators". We generalize STRING to any [`Value`] constant and
//! provide the six relational comparisons plus ∧, ∨, ¬ and the constants
//! true/false.
//!
//! Predicates are *validated* against a scheme (attribute existence and
//! domain compatibility) before evaluation; a validated predicate can be
//! [compiled](Predicate::compile) to a [`CompiledPredicate`] whose
//! evaluation is infallible and index-based (no name lookups per tuple).

use std::fmt;
use std::sync::Arc;

use crate::domain::DomainType;
use crate::error::SnapshotError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// One side of a comparison: an attribute reference or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Operand {
    /// An attribute of the operand state, by name.
    Attr(Arc<str>),
    /// A literal constant.
    Const(Value),
}

impl Operand {
    /// Convenience constructor for attribute operands.
    pub fn attr(name: impl AsRef<str>) -> Operand {
        Operand::Attr(Arc::from(name.as_ref()))
    }

    /// The domain the operand will produce under `schema`.
    fn domain(&self, schema: &Schema) -> Result<DomainType> {
        match self {
            Operand::Attr(name) => Ok(schema.attribute(schema.require(name)?).domain),
            Operand::Const(v) => Ok(v.domain()),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// The six relational comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CompOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompOp {
    /// Applies the comparison to two values of the same domain.
    pub fn apply(self, l: &Value, r: &Value) -> bool {
        match self {
            CompOp::Eq => l == r,
            CompOp::Ne => l != r,
            CompOp::Lt => l < r,
            CompOp::Le => l <= r,
            CompOp::Gt => l > r,
            CompOp::Ge => l >= r,
        }
    }

    /// The logically negated comparison (used by predicate simplification).
    pub fn negate(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Ne,
            CompOp::Ne => CompOp::Eq,
            CompOp::Lt => CompOp::Ge,
            CompOp::Le => CompOp::Gt,
            CompOp::Gt => CompOp::Le,
            CompOp::Ge => CompOp::Lt,
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ge => CompOp::Le,
            other => other,
        }
    }

    /// Surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CompOp::Eq => "=",
            CompOp::Ne => "<>",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A boolean expression over one state's attributes (the domain 𝓕).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Predicate {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A comparison between two operands.
    Comp(Operand, CompOp, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr = const`
    pub fn eq_const(attr: impl AsRef<str>, v: Value) -> Predicate {
        Predicate::Comp(Operand::attr(attr), CompOp::Eq, Operand::Const(v))
    }

    /// `attr < const`
    pub fn lt_const(attr: impl AsRef<str>, v: Value) -> Predicate {
        Predicate::Comp(Operand::attr(attr), CompOp::Lt, Operand::Const(v))
    }

    /// `attr > const`
    pub fn gt_const(attr: impl AsRef<str>, v: Value) -> Predicate {
        Predicate::Comp(Operand::attr(attr), CompOp::Gt, Operand::Const(v))
    }

    /// `left_attr = right_attr` (the equijoin predicate shape).
    pub fn eq_attrs(l: impl AsRef<str>, r: impl AsRef<str>) -> Predicate {
        Predicate::Comp(Operand::attr(l), CompOp::Eq, Operand::attr(r))
    }

    /// `self ∧ other`
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors the paper's ¬, returns Self
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// The set of attribute names referenced by this predicate.
    pub fn attributes(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut Vec<Arc<str>>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Comp(l, _, r) => {
                for op in [l, r] {
                    if let Operand::Attr(a) = op {
                        if !out.iter().any(|x| x == a) {
                            out.push(a.clone());
                        }
                    }
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Predicate::Not(a) => a.collect_attrs(out),
        }
    }

    /// Validates this predicate against `schema`: every referenced
    /// attribute must exist, and each comparison's operands must share a
    /// domain.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Comp(l, op, r) => {
                let ld = l.domain(schema)?;
                let rd = r.domain(schema)?;
                if ld != rd {
                    return Err(SnapshotError::PredicateTypeMismatch {
                        comparison: format!("{l} {op} {r}"),
                        left: ld,
                        right: rd,
                    });
                }
                Ok(())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(a) => a.validate(schema),
        }
    }

    /// Validates and compiles this predicate for fast repeated evaluation
    /// against tuples of `schema`.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate> {
        self.validate(schema)?;
        Ok(CompiledPredicate {
            node: self.compile_node(schema),
        })
    }

    fn compile_node(&self, schema: &Schema) -> CompiledNode {
        match self {
            Predicate::True => CompiledNode::Const(true),
            Predicate::False => CompiledNode::Const(false),
            Predicate::Comp(l, op, r) => {
                CompiledNode::Comp(compile_operand(l, schema), *op, compile_operand(r, schema))
            }
            Predicate::And(a, b) => CompiledNode::And(
                Box::new(a.compile_node(schema)),
                Box::new(b.compile_node(schema)),
            ),
            Predicate::Or(a, b) => CompiledNode::Or(
                Box::new(a.compile_node(schema)),
                Box::new(b.compile_node(schema)),
            ),
            Predicate::Not(a) => CompiledNode::Not(Box::new(a.compile_node(schema))),
        }
    }

    /// One-off evaluation (validates first); use [`Predicate::compile`]
    /// when evaluating against many tuples.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        Ok(self.compile(schema)?.eval(tuple))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Comp(l, op, r) => write!(f, "{l} {op} {r}"),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "(not {a})"),
        }
    }
}

fn compile_operand(op: &Operand, schema: &Schema) -> CompiledOperand {
    match op {
        Operand::Attr(name) => CompiledOperand::Attr(
            schema
                .index_of(name)
                .expect("operand validated before compilation"),
        ),
        Operand::Const(v) => CompiledOperand::Const(v.clone()),
    }
}

#[derive(Debug, Clone)]
enum CompiledOperand {
    Attr(usize),
    Const(Value),
}

impl CompiledOperand {
    fn resolve<'a>(&'a self, tuple: &'a Tuple) -> &'a Value {
        match self {
            CompiledOperand::Attr(i) => tuple.get(*i),
            CompiledOperand::Const(v) => v,
        }
    }
}

#[derive(Debug, Clone)]
enum CompiledNode {
    Const(bool),
    Comp(CompiledOperand, CompOp, CompiledOperand),
    And(Box<CompiledNode>, Box<CompiledNode>),
    Or(Box<CompiledNode>, Box<CompiledNode>),
    Not(Box<CompiledNode>),
}

impl CompiledNode {
    fn eval(&self, tuple: &Tuple) -> bool {
        match self {
            CompiledNode::Const(b) => *b,
            CompiledNode::Comp(l, op, r) => op.apply(l.resolve(tuple), r.resolve(tuple)),
            CompiledNode::And(a, b) => a.eval(tuple) && b.eval(tuple),
            CompiledNode::Or(a, b) => a.eval(tuple) || b.eval(tuple),
            CompiledNode::Not(a) => !a.eval(tuple),
        }
    }
}

/// A predicate resolved against a fixed scheme; evaluation is infallible.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    node: CompiledNode,
}

impl CompiledPredicate {
    /// Evaluates against a tuple of the scheme the predicate was compiled
    /// for.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        self.node.eval(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name", DomainType::Str),
            ("sal", DomainType::Int),
            ("mgr", DomainType::Str),
        ])
        .unwrap()
    }

    fn alice() -> Tuple {
        Tuple::new(vec![
            Value::str("alice"),
            Value::Int(100),
            Value::str("bob"),
        ])
    }

    #[test]
    fn comparison_semantics() {
        assert!(CompOp::Eq.apply(&Value::Int(1), &Value::Int(1)));
        assert!(CompOp::Lt.apply(&Value::Int(1), &Value::Int(2)));
        assert!(CompOp::Ge.apply(&Value::str("b"), &Value::str("a")));
        assert!(!CompOp::Ne.apply(&Value::Bool(true), &Value::Bool(true)));
    }

    #[test]
    fn negate_and_flip_are_involutions() {
        for op in [
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn flip_matches_swapped_operands() {
        let (a, b) = (Value::Int(1), Value::Int(2));
        for op in [
            CompOp::Eq,
            CompOp::Ne,
            CompOp::Lt,
            CompOp::Le,
            CompOp::Gt,
            CompOp::Ge,
        ] {
            assert_eq!(op.apply(&a, &b), op.flip().apply(&b, &a));
        }
    }

    #[test]
    fn eval_comparisons() {
        let s = schema();
        assert!(Predicate::eq_const("name", Value::str("alice"))
            .eval(&s, &alice())
            .unwrap());
        assert!(Predicate::gt_const("sal", Value::Int(50))
            .eval(&s, &alice())
            .unwrap());
        assert!(!Predicate::lt_const("sal", Value::Int(50))
            .eval(&s, &alice())
            .unwrap());
    }

    #[test]
    fn eval_attr_to_attr() {
        let s = schema();
        let p = Predicate::eq_attrs("name", "mgr");
        assert!(!p.eval(&s, &alice()).unwrap());
        let t = Tuple::new(vec![Value::str("bob"), Value::Int(1), Value::str("bob")]);
        assert!(p.eval(&s, &t).unwrap());
    }

    #[test]
    fn eval_connectives() {
        let s = schema();
        let p = Predicate::gt_const("sal", Value::Int(50))
            .and(Predicate::eq_const("name", Value::str("alice")));
        assert!(p.eval(&s, &alice()).unwrap());
        let q = Predicate::gt_const("sal", Value::Int(500))
            .or(Predicate::eq_const("name", Value::str("alice")));
        assert!(q.eval(&s, &alice()).unwrap());
        assert!(!q.clone().not().eval(&s, &alice()).unwrap());
        assert!(Predicate::True.eval(&s, &alice()).unwrap());
        assert!(!Predicate::False.eval(&s, &alice()).unwrap());
    }

    #[test]
    fn validate_rejects_unknown_attribute() {
        let p = Predicate::eq_const("wage", Value::Int(1));
        assert!(matches!(
            p.validate(&schema()),
            Err(SnapshotError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn validate_rejects_domain_mismatch() {
        let p = Predicate::eq_const("sal", Value::str("high"));
        assert!(matches!(
            p.validate(&schema()),
            Err(SnapshotError::PredicateTypeMismatch { .. })
        ));
    }

    #[test]
    fn attributes_are_deduplicated() {
        let p = Predicate::gt_const("sal", Value::Int(1))
            .and(Predicate::lt_const("sal", Value::Int(10)));
        let attrs = p.attributes();
        assert_eq!(attrs.len(), 1);
        assert_eq!(&*attrs[0], "sal");
    }

    #[test]
    fn display_round_readable() {
        let p = Predicate::gt_const("sal", Value::Int(50))
            .and(Predicate::eq_const("name", Value::str("a")).not());
        assert_eq!(p.to_string(), "(sal > 50 and (not name = \"a\"))");
    }

    #[test]
    fn compiled_matches_interpreted() {
        let s = schema();
        let p =
            Predicate::gt_const("sal", Value::Int(50)).or(Predicate::eq_attrs("name", "mgr").not());
        let c = p.compile(&s).unwrap();
        assert_eq!(c.eval(&alice()), p.eval(&s, &alice()).unwrap());
    }
}
