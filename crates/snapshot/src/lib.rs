#![warn(missing_docs)]

//! Snapshot relational model and algebra.
//!
//! This crate implements the *snapshot algebra* substrate that McKenzie &
//! Snodgrass's transaction-time language (SIGMOD 1987) is built on: the
//! conventional relational model in the style of Maier's *The Theory of
//! Relational Databases* (1983).
//!
//! A [`SnapshotState`] is a set of [`Tuple`]s over a [`Schema`]; it models
//! "the current reality as is currently best known" — an instantaneous
//! snapshot. The five primitive operators that define the snapshot algebra
//! (union, difference, cartesian product, projection, selection) are
//! provided as methods on [`SnapshotState`], together with the usual
//! derived operators (intersection, joins, rename, division).
//!
//! Selection predicates come from the domain 𝓕 of boolean expressions over
//! attribute identifiers, constants, the relational comparison operators,
//! and the logical connectives; see [`Predicate`].
//!
//! # Example
//!
//! ```
//! use txtime_snapshot::{Schema, DomainType, SnapshotState, Tuple, Value, Predicate};
//!
//! let schema = Schema::new(vec![
//!     ("name", DomainType::Str),
//!     ("sal", DomainType::Int),
//! ]).unwrap();
//! let state = SnapshotState::from_rows(schema, vec![
//!     vec![Value::str("alice"), Value::Int(100)],
//!     vec![Value::str("bob"), Value::Int(200)],
//! ]).unwrap();
//!
//! let highly_paid = state.select(&Predicate::gt_const("sal", Value::Int(150))).unwrap();
//! assert_eq!(highly_paid.len(), 1);
//! ```

pub mod domain;
pub mod error;
pub mod generate;
pub mod intern;
pub mod ops;
pub mod predicate;
pub mod reference;
pub mod rng;
pub mod schema;
pub mod state;
pub mod tuple;
pub mod value;

pub use domain::DomainType;
pub use error::SnapshotError;
pub use intern::StrInterner;
pub use ops::join::{JoinPhysical, JoinSpec};
pub use predicate::{CompOp, CompiledPredicate, Operand, Predicate};
pub use schema::{Attribute, Schema};
pub use state::SnapshotState;
pub use tuple::Tuple;
pub use value::{Real, Value};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SnapshotError>;
