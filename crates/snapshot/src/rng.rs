//! A small deterministic pseudo-random generator for tests, benchmarks,
//! and workload generation.
//!
//! The build is hermetic: no external registry is available, so the
//! `rand` crate cannot be a dependency. Everything random in the
//! workspace — the [`crate::generate`] module, the differential tests,
//! the benchmark workloads — draws from this shared module instead. The
//! API deliberately mirrors the subset of `rand` the workspace uses
//! (`Rng`, `SeedableRng`, `SliceRandom`, `rngs::StdRng`), so swapping a
//! vendored `rand` back in later is a one-line import change per file.
//!
//! The generator is SplitMix64 (a 64-bit LCG-style mixer with a Weyl
//! increment): tiny, fast, and statistically fine for workload
//! generation. It is **not** cryptographic.

/// Range-like argument to [`Rng::gen_range`]: yields inclusive bounds.
pub trait SampleRange<T> {
    /// The `(low, high)` inclusive bounds of the range.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "empty range in gen_range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "empty range in gen_range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A value generable uniformly from raw 64-bit output.
pub trait Uniform: Copy {
    /// Draws a uniform value in `[low, high]` from `raw` 64-bit words.
    fn from_raw(rng: &mut dyn RawRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_raw(rng: &mut dyn RawRng, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 range.
                    return rng.raw_u64() as $t;
                }
                // Debiased modular sampling (rejection from the top).
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.raw_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl Uniform for $t {
            fn from_raw(rng: &mut dyn RawRng, low: Self, high: Self) -> Self {
                // Shift into unsigned space, sample, shift back.
                let ulow = (low as $u).wrapping_add(<$u>::MAX / 2 + 1);
                let uhigh = (high as $u).wrapping_add(<$u>::MAX / 2 + 1);
                let v = <$u>::from_raw(rng, ulow, uhigh);
                v.wrapping_sub(<$u>::MAX / 2 + 1) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Object-safe raw word source (lets [`Uniform`] avoid generics).
pub trait RawRng {
    /// The next raw 64-bit word.
    fn raw_u64(&mut self) -> u64;
}

/// The deterministic generator trait (the workspace's `rand::Rng`).
pub trait Rng: RawRng {
    /// A uniform value in the given range (`0..n` or `0..=n` style).
    fn gen_range<T: Uniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (low, high) = range.bounds();
        T::from_raw(self, low, high)
    }

    /// A bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa, as rand does.
        ((self.raw_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }

    /// A uniform value of a domain with a natural full-range draw
    /// (currently `bool`, matching the workspace's `rng.gen()` uses).
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<G: RawRng + ?Sized> Rng for G {}

/// Types drawable from a generator without bounds.
pub trait FromRng {
    /// Draws a value.
    fn from_rng(rng: &mut (impl Rng + ?Sized)) -> Self;
}

impl FromRng for bool {
    fn from_rng(rng: &mut (impl Rng + ?Sized)) -> bool {
        rng.raw_u64() & 1 == 1
    }
}

impl FromRng for u64 {
    fn from_rng(rng: &mut (impl Rng + ?Sized)) -> u64 {
        rng.raw_u64()
    }
}

/// Seedable construction (the workspace's `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// streams, on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Choosing from slices (the workspace's `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// The deterministic generator: SplitMix64.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl RawRng for Lcg {
    fn raw_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014): Weyl sequence + mixer.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for Lcg {
    fn seed_from_u64(seed: u64) -> Lcg {
        Lcg { state: seed }
    }
}

/// Name-compatible aliases for `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator.
    pub type StdRng = super::Lcg;
}

/// Runs `f` once per seed, for property-style tests: each iteration gets
/// a fresh generator derived from the iteration index, so failures
/// reproduce by re-running the test.
pub fn for_each_seed(cases: u64, mut f: impl FnMut(&mut Lcg)) {
    for i in 0..cases {
        let mut rng = Lcg::seed_from_u64(i.wrapping_mul(0x9e37_79b9) ^ 0xA5A5_5A5A);
        f(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Lcg::seed_from_u64(42);
        let mut b = Lcg::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.raw_u64(), b.raw_u64());
        }
        let mut c = Lcg::seed_from_u64(43);
        assert_ne!(a.raw_u64(), c.raw_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Lcg::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(3..=3);
            assert_eq!(u, 3);
            let c: u32 = rng.gen_range(1..100);
            assert!((1..100).contains(&c));
        }
    }

    #[test]
    fn bool_and_bernoulli() {
        let mut rng = Lcg::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "suspicious bias: {trues}");
        assert!(!(0..1000).all(|_| rng.gen::<bool>()));
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Lcg::seed_from_u64(9);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
