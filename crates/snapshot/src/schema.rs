//! Relation schemes: ordered, typed attribute lists.

use std::fmt;
use std::sync::Arc;

use crate::domain::DomainType;
use crate::error::SnapshotError;
use crate::Result;

/// A single named, typed attribute of a relation scheme.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Attribute {
    /// The attribute's name, unique within its scheme.
    pub name: Arc<str>,
    /// The attribute's value domain.
    pub domain: DomainType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl AsRef<str>, domain: DomainType) -> Attribute {
        Attribute {
            name: Arc::from(name.as_ref()),
            domain,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.domain)
    }
}

/// A relation scheme: a non-empty ordered sequence of distinct attributes.
///
/// Schemes are immutable and cheaply clonable (the attribute list is
/// reference-counted); every [`crate::SnapshotState`] carries one.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    attributes: Arc<[Attribute]>,
}

impl Schema {
    /// Builds a scheme from `(name, domain)` pairs.
    ///
    /// Fails if the list is empty or contains a duplicate name.
    pub fn new<N: AsRef<str>>(attrs: Vec<(N, DomainType)>) -> Result<Schema> {
        Schema::from_attributes(
            attrs
                .into_iter()
                .map(|(n, d)| Attribute::new(n, d))
                .collect(),
        )
    }

    /// Builds a scheme from prepared [`Attribute`]s.
    pub fn from_attributes(attrs: Vec<Attribute>) -> Result<Schema> {
        if attrs.is_empty() {
            return Err(SnapshotError::EmptyScheme);
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(SnapshotError::DuplicateAttribute(a.name.to_string()));
            }
        }
        Ok(Schema {
            attributes: attrs.into(),
        })
    }

    /// The attributes, in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes (the scheme's arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the named attribute, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| &*a.name == name)
    }

    /// Position of the named attribute, or an `UnknownAttribute` error.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| SnapshotError::UnknownAttribute(name.to_string()))
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// Whether the named attribute exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Union compatibility: identical attribute sequences (names, domains,
    /// and order).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self == other
    }

    /// Checks union compatibility, producing a descriptive error on
    /// failure.
    pub fn require_union_compatible(&self, other: &Schema) -> Result<()> {
        if self.union_compatible(other) {
            Ok(())
        } else {
            Err(SnapshotError::SchemeMismatch {
                left: self.to_string(),
                right: other.to_string(),
            })
        }
    }

    /// Concatenates two schemes for a cartesian product; attribute names
    /// must be disjoint.
    pub fn product(&self, other: &Schema) -> Result<Schema> {
        for a in other.attributes() {
            if self.contains(&a.name) {
                return Err(SnapshotError::ProductAttributeClash(a.name.to_string()));
            }
        }
        let mut attrs: Vec<Attribute> = self.attributes.to_vec();
        attrs.extend(other.attributes.iter().cloned());
        Schema::from_attributes(attrs)
    }

    /// The sub-scheme obtained by keeping `names`, in the order given.
    ///
    /// Fails on unknown or repeated names.
    pub fn project(&self, names: &[impl AsRef<str>]) -> Result<(Schema, Vec<usize>)> {
        let mut attrs = Vec::with_capacity(names.len());
        let mut indices = Vec::with_capacity(names.len());
        for n in names {
            let n = n.as_ref();
            let idx = self.require(n)?;
            if indices.contains(&idx) {
                return Err(SnapshotError::DuplicateProjection(n.to_string()));
            }
            indices.push(idx);
            attrs.push(self.attributes[idx].clone());
        }
        Ok((Schema::from_attributes(attrs)?, indices))
    }

    /// Renames attribute `from` to `to`, preserving order and domain.
    pub fn rename(&self, from: &str, to: &str) -> Result<Schema> {
        let idx = self.require(from)?;
        if from != to && self.contains(to) {
            return Err(SnapshotError::RenameClash(to.to_string()));
        }
        let mut attrs = self.attributes.to_vec();
        attrs[idx] = Attribute::new(to, attrs[idx].domain);
        Schema::from_attributes(attrs)
    }

    /// Attribute names shared with `other` (used by natural join).
    pub fn common_attributes(&self, other: &Schema) -> Vec<Arc<str>> {
        self.attributes
            .iter()
            .filter(|a| other.contains(&a.name))
            .map(|a| a.name.clone())
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Schema {
        Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap()
    }

    #[test]
    fn rejects_empty_scheme() {
        let attrs: Vec<(&str, DomainType)> = vec![];
        assert_eq!(Schema::new(attrs).unwrap_err(), SnapshotError::EmptyScheme);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![("a", DomainType::Int), ("a", DomainType::Str)]).unwrap_err();
        assert_eq!(err, SnapshotError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn index_lookup() {
        let s = emp();
        assert_eq!(s.index_of("name"), Some(0));
        assert_eq!(s.index_of("sal"), Some(1));
        assert_eq!(s.index_of("dept"), None);
        assert!(s.require("dept").is_err());
    }

    #[test]
    fn union_compatibility_requires_identical_schemes() {
        let a = emp();
        let b = emp();
        assert!(a.union_compatible(&b));
        let c = Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Real)]).unwrap();
        assert!(!a.union_compatible(&c));
        assert!(a.require_union_compatible(&c).is_err());
    }

    #[test]
    fn product_requires_disjoint_names() {
        let a = emp();
        let b = Schema::new(vec![("dept", DomainType::Str)]).unwrap();
        let p = a.product(&b).unwrap();
        assert_eq!(p.arity(), 3);
        assert_eq!(p.index_of("dept"), Some(2));

        let clash = a.product(&emp()).unwrap_err();
        assert_eq!(clash, SnapshotError::ProductAttributeClash("name".into()));
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = emp();
        let (p, idx) = s.project(&["sal", "name"]).unwrap();
        assert_eq!(idx, vec![1, 0]);
        assert_eq!(&*p.attribute(0).name, "sal");
    }

    #[test]
    fn projection_rejects_duplicates_and_unknowns() {
        let s = emp();
        assert!(matches!(
            s.project(&["sal", "sal"]),
            Err(SnapshotError::DuplicateProjection(_))
        ));
        assert!(matches!(
            s.project(&["wage"]),
            Err(SnapshotError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn rename_behaviour() {
        let s = emp();
        let r = s.rename("sal", "salary").unwrap();
        assert!(r.contains("salary"));
        assert!(!r.contains("sal"));
        assert!(matches!(
            s.rename("sal", "name"),
            Err(SnapshotError::RenameClash(_))
        ));
        // Renaming to itself is a no-op, not a clash.
        assert_eq!(s.rename("sal", "sal").unwrap(), s);
    }

    #[test]
    fn common_attributes_for_join() {
        let a = emp();
        let b = Schema::new(vec![("sal", DomainType::Int), ("grade", DomainType::Int)]).unwrap();
        let common = a.common_attributes(&b);
        assert_eq!(common.len(), 1);
        assert_eq!(&*common[0], "sal");
    }

    #[test]
    fn display_form() {
        assert_eq!(emp().to_string(), "(name: str, sal: int)");
    }
}
