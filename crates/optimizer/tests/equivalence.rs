//! The optimizer's soundness property: on any database where the
//! original expression evaluates successfully, the optimized expression
//! evaluates to the same state.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Database, Expr, RelationType, Sentence, TransactionNumber, TxSpec};
use txtime_optimizer::{optimize, SchemaCatalog};
use txtime_snapshot::generate::{random_predicate, random_state, GenConfig};
use txtime_snapshot::{DomainType, Schema};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn right_schema() -> Schema {
    Schema::new(vec![("b0", DomainType::Int)]).unwrap()
}

fn cfg() -> GenConfig {
    GenConfig {
        arity: 2,
        cardinality: 10,
        int_range: 10,
        str_pool: 4,
    }
}

/// A database with rollback relations over `schema()` plus one over
/// `right_schema()` for product shapes.
fn random_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cmds = random_commands(
        &mut rng,
        &schema(),
        &CmdGenConfig {
            values: cfg(),
            relations: vec!["r0".into(), "r1".into()],
            churn: 0.4,
        },
        8,
    );
    cmds.push(Command::define_relation("q", RelationType::Rollback));
    cmds.push(Command::modify_state(
        "q",
        Expr::snapshot_const(random_state(
            &mut rng,
            &right_schema(),
            &GenConfig {
                arity: 1,
                cardinality: 6,
                ..cfg()
            },
        )),
    ));
    Sentence::new(cmds).unwrap().eval().unwrap()
}

/// Random expression over the relations defined by [`random_db`],
/// including shapes every rule targets.
fn random_query(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        let r = ["r0", "r1"][rng.gen_range(0..2usize)];
        return if rng.gen_bool(0.3) {
            Expr::rollback(r, TxSpec::At(TransactionNumber(rng.gen_range(0..12))))
        } else {
            Expr::current(r)
        };
    }
    match rng.gen_range(0..7) {
        0 => random_query(rng, depth - 1).union(random_query(rng, depth - 1)),
        1 => random_query(rng, depth - 1).difference(random_query(rng, depth - 1)),
        2 => random_query(rng, depth - 1).select(random_predicate(rng, &schema(), &cfg(), 2)),
        3 => {
            let attrs = if rng.gen_bool(0.5) {
                vec!["a0".to_string()]
            } else {
                vec!["a1".to_string(), "a0".to_string()]
            };
            // Projection changes the scheme, so stack further selects on
            // surviving attributes only.
            let inner = random_query(rng, depth - 1);
            Expr::Project(attrs, Box::new(inner))
        }
        4 => random_query(rng, depth - 1).product(Expr::current("q")),
        5 => random_query(rng, depth - 1)
            .select(random_predicate(rng, &schema(), &cfg(), 1))
            .select(random_predicate(rng, &schema(), &cfg(), 1)),
        _ => random_query(rng, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimized_expressions_evaluate_identically(
        db_seed in any::<u64>(),
        q_seed in any::<u64>(),
        depth in 0usize..4,
    ) {
        let db = random_db(db_seed);
        let catalog = SchemaCatalog::from_database(&db);
        let mut rng = StdRng::seed_from_u64(q_seed);
        let query = random_query(&mut rng, depth);
        let optimized = optimize(&query, &catalog);

        match query.eval(&db) {
            Ok(expected) => {
                let got = optimized.eval(&db).unwrap_or_else(|e| {
                    panic!(
                        "optimized form failed where original succeeded\n\
                         original:  {query}\noptimized: {optimized}\nerror: {e}"
                    )
                });
                prop_assert_eq!(
                    got, expected,
                    "original {} vs optimized {}", query, optimized
                );
            }
            Err(_) => {
                // Partial-correctness convention: nothing to check.
            }
        }
    }

    #[test]
    fn optimization_is_idempotent(db_seed in any::<u64>(), q_seed in any::<u64>(), depth in 0usize..4) {
        let db = random_db(db_seed);
        let catalog = SchemaCatalog::from_database(&db);
        let mut rng = StdRng::seed_from_u64(q_seed);
        let query = random_query(&mut rng, depth);
        let once = optimize(&query, &catalog);
        let twice = optimize(&once, &catalog);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn optimization_never_grows_plans_much(q_seed in any::<u64>(), depth in 0usize..4) {
        // Pushdowns can duplicate a predicate across ∪/− branches but the
        // node count must stay within a small factor.
        let db = random_db(1);
        let catalog = SchemaCatalog::from_database(&db);
        let mut rng = StdRng::seed_from_u64(q_seed);
        let query = random_query(&mut rng, depth);
        let optimized = optimize(&query, &catalog);
        prop_assert!(optimized.node_count() <= query.node_count() * 4 + 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pushdown_preserves_outcomes_exactly(
        db_seed in any::<u64>(),
        q_seed in any::<u64>(),
        depth in 0usize..4,
    ) {
        // Unlike `optimize`, `pushdown` is *totally* correct: it must
        // agree with the original on every database — same state on
        // success, an error exactly when the original errors.
        let db = random_db(db_seed);
        let mut rng = StdRng::seed_from_u64(q_seed);
        let query = random_query(&mut rng, depth);
        let pushed = txtime_optimizer::pushdown(&query);
        match (query.eval(&db), pushed.eval(&db)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a, b,
                "original {} vs pushed {}", query, pushed
            ),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "outcome diverged\noriginal:  {} -> {:?}\npushed: {} -> {:?}",
                query, a.is_ok(), pushed, b.is_ok()
            ),
        }
    }
}
