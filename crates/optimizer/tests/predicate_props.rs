//! Property tests for `simplify_predicate` (satellite of the plan
//! search PR): simplification is idempotent — a second pass finds
//! nothing left to fold — and semantics-preserving in the optimizer's
//! partial-correctness sense: wherever the original predicate selects
//! successfully, the simplified predicate selects the same rows.

use proptest::prelude::*;
use txtime_optimizer::{simplify_predicate, RewriteTrace};
use txtime_snapshot::generate::{random_predicate, random_state, GenConfig};
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;
use txtime_snapshot::{DomainType, Predicate, Schema};

fn schema() -> Schema {
    Schema::new(vec![
        ("a0", DomainType::Int),
        ("a1", DomainType::Str),
        ("a2", DomainType::Bool),
    ])
    .unwrap()
}

fn cfg() -> GenConfig {
    GenConfig {
        arity: 3,
        cardinality: 12,
        int_range: 10,
        str_pool: 4,
    }
}

fn simplify(p: &Predicate) -> Predicate {
    simplify_predicate(p, &mut RewriteTrace::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// simplify(simplify(p)) == simplify(p): every fold the pass knows
    /// about is fully applied on the first pass.
    #[test]
    fn simplify_predicate_is_idempotent(seed in any::<u64>(), depth in 0usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_predicate(&mut rng, &schema(), &cfg(), depth);
        let once = simplify(&p);
        let twice = simplify(&once);
        prop_assert_eq!(&once, &twice, "not a fixpoint for {}", p);
        // And a second pass fires no rules at all.
        let mut trace = RewriteTrace::default();
        simplify_predicate(&once, &mut trace);
        prop_assert!(
            trace.applied.is_empty(),
            "second pass still fired {:?} on {}",
            trace.applied,
            once
        );
    }

    /// Wherever σ_p succeeds, σ_{simplify(p)} succeeds with the same
    /// rows (random predicates × random states, so every tuple in the
    /// state is a random tuple the predicate is judged against).
    #[test]
    fn simplify_predicate_preserves_selection(
        seed in any::<u64>(),
        state_seed in any::<u64>(),
        depth in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = random_predicate(&mut rng, &schema(), &cfg(), depth);
        let simplified = simplify(&p);
        let mut srng = StdRng::seed_from_u64(state_seed);
        let state = random_state(&mut srng, &schema(), &cfg());
        if let Ok(want) = state.select(&p) {
            let got = state.select(&simplified);
            prop_assert!(got.is_ok(), "{} -> {} broke selection", p, simplified);
            prop_assert_eq!(want, got.unwrap(), "{} vs {}", p, simplified);
        }
    }
}
