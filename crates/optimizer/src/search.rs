//! Cost-based plan search over the hash-consed `ExprId` DAG.
//!
//! A memoized, cascades-lite enumerator: every subexpression is interned
//! into an [`ExprInterner`] group, each group enumerates the alternative
//! shapes reachable through the paper-sanctioned laws (§2's claim that
//! "commutativity of select, distributivity of select over join" survive
//! the transaction-time extension — each rule below is a verified law in
//! [`crate::laws`]), and the cheapest shape under
//! [`estimate_cost`](crate::cost::estimate_cost) wins. The headline
//! rewrite is product ordering: splitting a selection's conjuncts across
//! a product chain turns `σ_F(A × B × C)` into a chain of *filtered*
//! products whose intermediates are a fraction of the unfiltered
//! cross-product, with the fractions read off the statistics catalog's
//! value ranges ([`CostModel::predicate_selectivity`]).
//!
//! # Equivalence convention (stricter than `rules::optimize`)
//!
//! Unlike [`crate::optimize`], which is partially correct (it may turn an
//! erroring expression into a succeeding one), every alternative this
//! searcher enumerates is *observationally identical* to the original:
//! same value when the original succeeds, an error exactly when the
//! original errors. That is the contract `Engine::eval` needs, and it is
//! why each rule carries a guard:
//!
//! - `select-fusion`, `select-through-union`, `select-through-difference`
//!   (and the hatted mirrors) need no guard — both sides evaluate the
//!   same operands and compile the same predicates.
//! - `select-true-elim` / `hselect-true-elim` are guarded on the operand
//!   kind: `σ_true(ρ̂(…))` must keep erroring after the rewrite.
//! - `select-through-product` (and `σ̂` over `×̂`) demands *exact* operand
//!   schemas from the catalog, so a conjunct moved under the product
//!   compiles against the same attribute/domain environment it saw above.
//!   The engine's catalog only contains schema-stable relations, which
//!   makes every catalog answer exact.
//! - `select-below-project` is guarded on `attrs(F) ⊆ X` (syntactic):
//!   then σ's compile outcome is unchanged and π's own failures are
//!   reproduced by the π that remains on top.
//! - `project-cascade` is guarded on `X ⊆ Y` plus an exact schema for
//!   the inner projection (so the dropped π_Y could not have failed);
//!   `project-identity-elim` on an exact full-scheme match in order.
//! - `product-rotate` (×/×̂ associativity) needs no guard: both
//!   association orders concatenate the same schemes in the same column
//!   order and fail disjointness on exactly the same attribute overlap.
//! - `delta-identity-elim` is guarded on the operand being historical.
//!
//! Rules from `rules.rs` that *cannot* be guarded statically —
//! `select-false-to-empty` and the `∅`-elimination pair, which erase a
//! subexpression whose evaluation might error at runtime — are excluded,
//! exactly as they are from the `pushdown` pass.

use std::collections::HashMap;
use std::fmt;

use txtime_core::{Expr, JoinPhysical, JoinSpec};
use txtime_historical::{TemporalExpr, TemporalPred};
use txtime_snapshot::{CompOp, Operand, Predicate};

use crate::cost::{estimate_cost, estimate_rows, CostModel};
use crate::interner::{ExprId, ExprInterner};
use crate::pushdown::{is_historical_kind, is_snapshot_kind};
use crate::rules::{conjuncts, subset, RewriteTrace};
use crate::schema_infer::{infer_schema, SchemaCatalog};
use txtime_snapshot::Schema;

/// Work counters for one search (or, summed, for an engine's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct plan shapes costed.
    pub plans_enumerated: u64,
    /// Expression groups (interned subexpressions) memoized.
    pub groups_memoized: u64,
    /// Rewrite rule applications that produced a new candidate.
    pub rewrites_fired: u64,
}

impl SearchStats {
    /// Accumulates another search's counters into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.plans_enumerated += other.plans_enumerated;
        self.groups_memoized += other.groups_memoized;
        self.rewrites_fired += other.rewrites_fired;
    }
}

/// The chosen plan plus everything `explain` wants to show about it.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The cheapest observationally-equivalent plan found.
    pub plan: Expr,
    /// Its estimated cost ([`estimate_cost`]).
    pub cost: f64,
    /// Its estimated output cardinality.
    pub rows: f64,
    /// The original expression's estimated cost, for the explain diff.
    pub original_cost: f64,
    /// Rules that fired while enumerating, in application order.
    pub trace: RewriteTrace,
    /// Search work counters.
    pub stats: SearchStats,
}

/// Bound on the alternatives enumerated per group: a termination
/// backstop for pathological rule interplay (the per-group `seen` set
/// already deduplicates via interning, so real queries stay far below).
const MAX_CANDIDATES_PER_GROUP: usize = 32;

/// Searches for the cheapest plan observationally equivalent to `expr`.
///
/// `catalog` must answer with *exact* current schemas (the engine feeds
/// only schema-stable relations); `model` supplies cardinalities and
/// attribute value ranges for selectivity.
pub fn search(expr: &Expr, catalog: &SchemaCatalog, model: &CostModel) -> PlanReport {
    let mut searcher = Searcher {
        catalog,
        model,
        interner: ExprInterner::new(),
        best: HashMap::new(),
        stats: SearchStats::default(),
        trace: RewriteTrace::default(),
    };
    let plan = searcher.best_plan(expr);
    PlanReport {
        cost: estimate_cost(&plan, model),
        rows: estimate_rows(&plan, model),
        original_cost: estimate_cost(expr, model),
        plan,
        trace: searcher.trace,
        stats: searcher.stats,
    }
}

struct Searcher<'a> {
    catalog: &'a SchemaCatalog,
    model: &'a CostModel,
    interner: ExprInterner,
    /// Group representative → its best plan and cost. Every candidate
    /// enumerated for a group is keyed here too (same equivalence
    /// class), so re-encountering any shape of the group is a hit.
    best: HashMap<ExprId, (Expr, f64)>,
    stats: SearchStats,
    trace: RewriteTrace,
}

impl Searcher<'_> {
    /// The cheapest known plan for `expr`'s equivalence group.
    ///
    /// Terminates because every alternative's children are strictly
    /// smaller (by node count) than the candidate that produced them,
    /// and the per-group frontier is capped.
    fn best_plan(&mut self, expr: &Expr) -> Expr {
        let id = self.interner.intern(expr);
        if let Some((plan, _)) = self.best.get(&id) {
            return plan.clone();
        }
        self.stats.groups_memoized += 1;

        // Seed with the original shape over optimized children.
        let seeded = self.with_best_children(expr);
        let mut best = estimate_cost(&seeded, self.model);
        let mut best_plan = seeded.clone();
        self.stats.plans_enumerated += 1;

        let mut seen = vec![self.interner.intern(&seeded)];
        let mut frontier = vec![seeded];
        while let Some(candidate) = frontier.pop() {
            if seen.len() >= MAX_CANDIDATES_PER_GROUP {
                break;
            }
            for (rule, alt) in root_alternatives(&candidate, self.catalog) {
                // A new root shape exposes new child shapes (e.g. the σ
                // halves of a distributed union): optimize those too.
                let alt = self.with_best_children(&alt);
                let alt_id = self.interner.intern(&alt);
                if seen.contains(&alt_id) {
                    continue;
                }
                seen.push(alt_id);
                self.stats.rewrites_fired += 1;
                self.stats.plans_enumerated += 1;
                self.trace.applied.push(rule);
                let cost = estimate_cost(&alt, self.model);
                if cost < best {
                    best = cost;
                    best_plan = alt.clone();
                }
                frontier.push(alt);
            }
        }

        // Every shape seen belongs to the same group: key them all so
        // any later encounter (from a different query corner) hits.
        self.best.insert(id, (best_plan.clone(), best));
        for shape in seen {
            self.best
                .entry(shape)
                .or_insert_with(|| (best_plan.clone(), best));
        }
        best_plan
    }

    /// `expr` with each direct child replaced by its group's best plan.
    fn with_best_children(&mut self, expr: &Expr) -> Expr {
        match expr {
            Expr::SnapshotConst(_)
            | Expr::HistoricalConst(_)
            | Expr::Rollback(..)
            | Expr::HRollback(..) => expr.clone(),
            Expr::Union(a, b) => self.best_plan(a).union(self.best_plan(b)),
            Expr::Difference(a, b) => self.best_plan(a).difference(self.best_plan(b)),
            Expr::Product(a, b) => self.best_plan(a).product(self.best_plan(b)),
            Expr::Project(x, e) => self.best_plan(e).project(x.clone()),
            Expr::Select(p, e) => self.best_plan(e).select(p.clone()),
            Expr::HUnion(a, b) => self.best_plan(a).hunion(self.best_plan(b)),
            Expr::HDifference(a, b) => self.best_plan(a).hdifference(self.best_plan(b)),
            Expr::HProduct(a, b) => self.best_plan(a).hproduct(self.best_plan(b)),
            Expr::HProject(x, e) => self.best_plan(e).hproject(x.clone()),
            Expr::HSelect(p, e) => self.best_plan(e).hselect(p.clone()),
            Expr::Delta(g, v, e) => self.best_plan(e).delta(g.clone(), v.clone()),
            Expr::Join(spec, a, b) => self.best_plan(a).join(spec.clone(), self.best_plan(b)),
            Expr::HJoin(spec, a, b) => self.best_plan(a).hjoin(spec.clone(), self.best_plan(b)),
        }
    }
}

/// The observationally-equivalent single-step rewrites of `expr`'s root.
fn root_alternatives(expr: &Expr, catalog: &SchemaCatalog) -> Vec<(&'static str, Expr)> {
    let mut out = Vec::new();
    match expr {
        Expr::Select(p, e) => {
            if *p == Predicate::True && is_snapshot_kind(e) {
                out.push(("select-true-elim", (**e).clone()));
            }
            match &**e {
                Expr::Select(q, inner) => out.push((
                    "select-fusion",
                    Expr::Select(q.clone().and(p.clone()), inner.clone()),
                )),
                Expr::Union(a, b) => out.push(("select-through-union", sel(p, a).union(sel(p, b)))),
                Expr::Difference(a, b) => {
                    out.push(("select-through-difference", sel(p, a).difference(sel(p, b))))
                }
                Expr::Project(x, inner) => {
                    let names: Vec<String> = p.attributes().iter().map(|a| a.to_string()).collect();
                    if subset(&names, x) {
                        out.push((
                            "select-below-project",
                            Expr::Select(p.clone(), inner.clone()).project(x.clone()),
                        ));
                    }
                }
                Expr::Product(a, b) => {
                    if let Some(alt) = split_over_product(p, a, b, catalog, false) {
                        out.push(("select-through-product", alt));
                    }
                    for (rule, alt) in lower_to_join(p, a, b, catalog, false) {
                        out.push((rule, alt));
                    }
                }
                _ => {}
            }
        }
        Expr::HSelect(p, e) => {
            if *p == Predicate::True && is_historical_kind(e) {
                out.push(("hselect-true-elim", (**e).clone()));
            }
            match &**e {
                Expr::HSelect(q, inner) => out.push((
                    "hselect-fusion",
                    Expr::HSelect(q.clone().and(p.clone()), inner.clone()),
                )),
                Expr::HUnion(a, b) => {
                    out.push(("hselect-through-hunion", hsel(p, a).hunion(hsel(p, b))))
                }
                Expr::HDifference(a, b) => out.push((
                    "hselect-through-hdifference",
                    hsel(p, a).hdifference(hsel(p, b)),
                )),
                Expr::HProduct(a, b) => {
                    if let Some(alt) = split_over_product(p, a, b, catalog, true) {
                        out.push(("hselect-through-hproduct", alt));
                    }
                    for (rule, alt) in lower_to_join(p, a, b, catalog, true) {
                        out.push((rule, alt));
                    }
                }
                _ => {}
            }
        }
        Expr::Project(x, e) => {
            if let Expr::Project(y, inner) = &**e {
                // The inner π must be exactly checkable so dropping it
                // cannot erase one of its own failure modes.
                if subset(x, y) && infer_schema(e, catalog).is_some() {
                    out.push(("project-cascade", inner.clone().project(x.clone())));
                }
            }
            if is_snapshot_kind(e) && projects_full_scheme(x, e, catalog) {
                out.push(("project-identity-elim", (**e).clone()));
            }
        }
        Expr::HProject(x, e) => {
            if let Expr::HProject(y, inner) = &**e {
                if subset(x, y) && infer_schema(e, catalog).is_some() {
                    out.push(("hproject-cascade", inner.clone().hproject(x.clone())));
                }
            }
            // π̂ over the full scheme in order merges nothing: identity.
            if is_historical_kind(e) && projects_full_scheme(x, e, catalog) {
                out.push(("hproject-identity-elim", (**e).clone()));
            }
        }
        Expr::Product(a, b) => {
            if let Expr::Product(a1, a2) = &**a {
                out.push((
                    "product-right-rotate",
                    (**a1)
                        .clone()
                        .product((**a2).clone().product((**b).clone())),
                ));
            }
            if let Expr::Product(b1, b2) = &**b {
                out.push((
                    "product-left-rotate",
                    (**a)
                        .clone()
                        .product((**b1).clone())
                        .product((**b2).clone()),
                ));
            }
        }
        Expr::HProduct(a, b) => {
            if let Expr::HProduct(a1, a2) = &**a {
                out.push((
                    "hproduct-right-rotate",
                    (**a1)
                        .clone()
                        .hproduct((**a2).clone().hproduct((**b).clone())),
                ));
            }
            if let Expr::HProduct(b1, b2) = &**b {
                out.push((
                    "hproduct-left-rotate",
                    (**a)
                        .clone()
                        .hproduct((**b1).clone())
                        .hproduct((**b2).clone()),
                ));
            }
        }
        Expr::Delta(g, v, e)
            if *g == TemporalPred::True
                && *v == TemporalExpr::ValidTime
                && is_historical_kind(e) =>
        {
            out.push(("delta-identity-elim", (**e).clone()));
        }
        _ => {}
    }
    out
}

fn sel(p: &Predicate, e: &Expr) -> Expr {
    e.clone().select(p.clone())
}

fn hsel(p: &Predicate, e: &Expr) -> Expr {
    e.clone().hselect(p.clone())
}

/// Whether `x` names the operand's full scheme, in order (exact catalog
/// schema required).
fn projects_full_scheme(x: &[String], e: &Expr, catalog: &SchemaCatalog) -> bool {
    infer_schema(e, catalog).is_some_and(|schema| {
        schema.arity() == x.len()
            && schema
                .attributes()
                .iter()
                .zip(x)
                .all(|(a, b)| &*a.name == b.as_str())
    })
}

/// Splits `p`'s conjuncts across `a × b` (or `a ×̂ b`) by scheme
/// coverage. Requires exact schemas for both operands; returns `None`
/// when no conjunct can move.
fn split_over_product(
    p: &Predicate,
    a: &Expr,
    b: &Expr,
    catalog: &SchemaCatalog,
    historical: bool,
) -> Option<Expr> {
    let sa = infer_schema(a, catalog)?;
    let sb = infer_schema(b, catalog)?;
    let mut left: Option<Predicate> = None;
    let mut right: Option<Predicate> = None;
    let mut rest: Option<Predicate> = None;
    let mut pushed = false;
    for conj in conjuncts(p) {
        let attrs = conj.attributes();
        let target = if attrs.iter().all(|n| sa.contains(n)) {
            pushed = true;
            &mut left
        } else if attrs.iter().all(|n| sb.contains(n)) {
            pushed = true;
            &mut right
        } else {
            &mut rest
        };
        *target = Some(match target.take() {
            Some(acc) => acc.and(conj.clone()),
            None => conj.clone(),
        });
    }
    if !pushed {
        return None;
    }
    let wrap = |f: Option<Predicate>, e: &Expr| match f {
        Some(f) if historical => e.clone().hselect(f),
        Some(f) => e.clone().select(f),
        None => e.clone(),
    };
    let product = if historical {
        wrap(left, a).hproduct(wrap(right, b))
    } else {
        wrap(left, a).product(wrap(right, b))
    };
    Some(match (rest, historical) {
        (Some(f), true) => product.hselect(f),
        (Some(f), false) => product.select(f),
        (None, _) => product,
    })
}

/// A conjunct of the shape `l.a = r.b` with one attribute in each
/// operand's scheme, normalized to `(left attr, right attr)`.
fn equi_key(conj: &Predicate, sa: &Schema, sb: &Schema) -> Option<(String, String)> {
    let Predicate::Comp(Operand::Attr(x), CompOp::Eq, Operand::Attr(y)) = conj else {
        return None;
    };
    if sa.contains(x.as_ref()) && sb.contains(y.as_ref()) {
        return Some((x.to_string(), y.to_string()));
    }
    if sa.contains(y.as_ref()) && sb.contains(x.as_ref()) {
        return Some((y.to_string(), x.to_string()));
    }
    None
}

/// Lowers `σ_F(A × B)` (or the hatted form) to physical equi-join
/// candidates: cross-operand `=` conjuncts become the key list,
/// single-side conjuncts push onto their operand, and the rest rides as
/// the join's residual. The same exact-schema guard as
/// [`split_over_product`] keeps the rewrite observationally equivalent
/// (the kernels are *defined* as `σ_spec(×)` — `laws.rs` pins this).
/// Emits a hash join always and additionally a merge join when the
/// single key is the first schema attribute on both sides (the only
/// shape whose runs are already key-sorted).
fn lower_to_join(
    p: &Predicate,
    a: &Expr,
    b: &Expr,
    catalog: &SchemaCatalog,
    historical: bool,
) -> Vec<(&'static str, Expr)> {
    let (Some(sa), Some(sb)) = (infer_schema(a, catalog), infer_schema(b, catalog)) else {
        return Vec::new();
    };
    let mut keys: Vec<(String, String)> = Vec::new();
    let mut left: Option<Predicate> = None;
    let mut right: Option<Predicate> = None;
    let mut residual: Option<Predicate> = None;
    for conj in conjuncts(p) {
        if let Some(key) = equi_key(conj, &sa, &sb) {
            keys.push(key);
            continue;
        }
        let attrs = conj.attributes();
        let target = if attrs.iter().all(|n| sa.contains(n)) {
            &mut left
        } else if attrs.iter().all(|n| sb.contains(n)) {
            &mut right
        } else {
            &mut residual
        };
        *target = Some(match target.take() {
            Some(acc) => acc.and(conj.clone()),
            None => conj.clone(),
        });
    }
    if keys.is_empty() {
        return Vec::new();
    }
    let wrap = |f: Option<Predicate>, e: &Expr| match f {
        Some(f) if historical => e.clone().hselect(f),
        Some(f) => e.clone().select(f),
        None => e.clone(),
    };
    let (la, rb) = (wrap(left, a), wrap(right, b));
    let residual = residual.unwrap_or(Predicate::True);
    let join_with = |physical: JoinPhysical| {
        let spec = JoinSpec {
            keys: keys.clone(),
            residual: residual.clone(),
            physical,
        };
        if historical {
            la.clone().hjoin(spec, rb.clone())
        } else {
            la.clone().join(spec, rb.clone())
        }
    };
    let mut out = vec![(
        if historical {
            "hselect-to-hash-join"
        } else {
            "select-to-hash-join"
        },
        join_with(JoinPhysical::Hash),
    )];
    if keys.len() == 1 && sa.index_of(&keys[0].0) == Some(0) && sb.index_of(&keys[0].1) == Some(0) {
        out.push((
            if historical {
                "hselect-to-merge-join"
            } else {
                "select-to-merge-join"
            },
            join_with(JoinPhysical::Merge),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Explain rendering
// ---------------------------------------------------------------------

/// One node's label in an explain tree: operator + arguments, without
/// recursing into operand expressions.
fn node_label(expr: &Expr) -> String {
    match expr {
        Expr::SnapshotConst(s) => format!("const[{} rows]", s.len()),
        Expr::HistoricalConst(h) => format!("hconst[{} entries]", h.len()),
        Expr::Rollback(i, n) => format!("rho({i}, {n})"),
        Expr::HRollback(i, n) => format!("hrho({i}, {n})"),
        Expr::Union(..) => "union".to_string(),
        Expr::Difference(..) => "minus".to_string(),
        Expr::Product(..) => "times".to_string(),
        Expr::Project(x, _) => format!("project[{}]", x.join(", ")),
        Expr::Select(p, _) => format!("select[{p}]"),
        Expr::HUnion(..) => "hunion".to_string(),
        Expr::HDifference(..) => "hminus".to_string(),
        Expr::HProduct(..) => "htimes".to_string(),
        Expr::HProject(x, _) => format!("hproject[{}]", x.join(", ")),
        Expr::HSelect(p, _) => format!("hselect[{p}]"),
        Expr::Delta(g, v, _) => format!("delta[{g}; {v}]"),
        Expr::Join(spec, ..) | Expr::HJoin(spec, ..) => {
            let name = if matches!(expr, Expr::Join(..)) {
                "join"
            } else {
                "hjoin"
            };
            match spec.physical {
                JoinPhysical::Hash => format!("{name}[{spec}; build=right, probe=left]"),
                JoinPhysical::Merge => format!("{name}[{spec}; merge both runs]"),
            }
        }
    }
}

/// Renders a plan as an indented tree, one node per line, with the cost
/// model's per-node row and cumulative cost estimates.
pub fn render_plan(expr: &Expr, model: &CostModel) -> String {
    let mut out = String::new();
    render_node(expr, model, 1, &mut out);
    out
}

fn render_node(expr: &Expr, model: &CostModel, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{:indent$}{}  (rows≈{:.1}, cost≈{:.1})",
        "",
        node_label(expr),
        estimate_rows(expr, model),
        estimate_cost(expr, model),
        indent = depth * 2,
    );
    for child in expr.operands() {
        render_node(child, model, depth + 1, out);
    }
}

/// The full `txtime explain` / REPL `\plan` block: chosen plan tree,
/// cost summary, and the deduplicated rewrite trace.
pub fn render_explain(
    level: u8,
    original: &Expr,
    report: &PlanReport,
    model: &CostModel,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "plan (optimize level {level}):");
    out.push_str(&render_plan(&report.plan, model));
    let _ = writeln!(
        out,
        "estimated rows: {:.1}, cost: {:.1} (original cost: {:.1})",
        report.rows, report.cost, report.original_cost,
    );
    if report.plan == *original {
        let _ = writeln!(out, "rewrites: none (original plan kept)");
    } else {
        let _ = writeln!(out, "rewrites: {}", summarize_trace(&report.trace));
    }
    out
}

/// Collapses a trace to `rule ×count` form, first-firing order.
pub fn summarize_trace(trace: &RewriteTrace) -> String {
    if trace.applied.is_empty() {
        return "none".to_string();
    }
    let mut order: Vec<&'static str> = Vec::new();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for rule in &trace.applied {
        if !counts.contains_key(rule) {
            order.push(rule);
        }
        *counts.entry(rule).or_insert(0) += 1;
    }
    order
        .iter()
        .map(|rule| {
            let n = counts[rule];
            if n > 1 {
                format!("{rule} ×{n}")
            } else {
                (*rule).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Lifetime optimizer counters for one engine, shown by `txtime stats`
/// alongside the `MemoStats`/`ShardReport` blocks in the same style.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizerStats {
    /// The engine's current optimization level (0/1/2).
    pub level: u8,
    /// Plan searches run (level 2 only; cache misses).
    pub searches: u64,
    /// Searches answered from the per-generation plan cache.
    pub plan_cache_hits: u64,
    /// Summed search work counters.
    pub totals: SearchStats,
}

impl fmt::Display for OptimizerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "optim: level {}, {} search(es) / {} plan-cache hit(s)",
            self.level, self.searches, self.plan_cache_hits,
        )?;
        writeln!(
            f,
            "       {} plan(s) enumerated, {} group(s) memoized, {} rewrite(s) fired",
            self.totals.plans_enumerated, self.totals.groups_memoized, self.totals.rewrites_fired,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, Value};

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.insert(
            "emp",
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap(),
        );
        c.insert(
            "dept",
            Schema::new(vec![("dname", DomainType::Str), ("dno", DomainType::Int)]).unwrap(),
        );
        c.insert(
            "loc",
            Schema::new(vec![("city", DomainType::Str), ("lno", DomainType::Int)]).unwrap(),
        );
        c
    }

    fn model() -> CostModel {
        let mut m = CostModel::new();
        m.set_cardinality("emp", 1000.0);
        m.set_cardinality("dept", 50.0);
        m.set_cardinality("loc", 20.0);
        m
    }

    fn selective() -> Predicate {
        Predicate::gt_const("sal", Value::Int(90))
            .and(Predicate::lt_const("dno", Value::Int(3)))
            .and(Predicate::lt_const("lno", Value::Int(2)))
    }

    #[test]
    fn product_chain_becomes_filtered_join() {
        let original = Expr::current("emp")
            .product(Expr::current("dept"))
            .product(Expr::current("loc"))
            .select(selective());
        let report = search(&original, &catalog(), &model());
        assert!(report.cost < report.original_cost / 2.0, "{report:?}");
        assert!(report.trace.applied.contains(&"select-through-product"));
        // No bare select over a product survives: every conjunct sits on
        // its own leaf.
        fn no_sigma_over_product(e: &Expr) -> bool {
            if let Expr::Select(_, inner) = e {
                if matches!(**inner, Expr::Product(..)) {
                    return false;
                }
            }
            e.operands().iter().all(|c| no_sigma_over_product(c))
        }
        assert!(no_sigma_over_product(&report.plan), "{}", report.plan);
    }

    #[test]
    fn equi_select_over_product_lowers_to_hash_join() {
        let original = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(Predicate::eq_attrs("sal", "dno"));
        let report = search(&original, &catalog(), &model());
        assert!(
            report.trace.applied.contains(&"select-to-hash-join"),
            "{:?}",
            report.trace.applied
        );
        assert!(matches!(report.plan, Expr::Join(..)), "{}", report.plan);
        assert!(report.cost < report.original_cost, "{report:?}");
        // The searched join plan is a fixpoint too.
        let second = search(&report.plan, &catalog(), &model());
        assert_eq!(report.plan, second.plan);
    }

    #[test]
    fn lowering_emits_merge_only_on_prefix_keys() {
        let cat = catalog();
        let (a, b) = (Expr::current("emp"), Expr::current("dept"));
        // name/dname are column 0 on both sides: hash + merge candidates.
        let alts = lower_to_join(&Predicate::eq_attrs("name", "dname"), &a, &b, &cat, false);
        let rules: Vec<_> = alts.iter().map(|(r, _)| *r).collect();
        assert_eq!(rules, vec!["select-to-hash-join", "select-to-merge-join"]);
        // sal/dno are column 1: the merge kernel cannot ride the runs.
        let alts = lower_to_join(&Predicate::eq_attrs("sal", "dno"), &a, &b, &cat, false);
        let rules: Vec<_> = alts.iter().map(|(r, _)| *r).collect();
        assert_eq!(rules, vec!["select-to-hash-join"]);
        // No cross-operand equality: nothing to lower.
        let alts = lower_to_join(
            &Predicate::gt_const("sal", Value::Int(5)),
            &a,
            &b,
            &cat,
            false,
        );
        assert!(alts.is_empty());
    }

    #[test]
    fn lowering_pushes_single_side_conjuncts_below_the_join() {
        let cat = catalog();
        let (a, b) = (Expr::current("emp"), Expr::current("dept"));
        let p = Predicate::eq_attrs("sal", "dno").and(Predicate::gt_const("sal", Value::Int(5)));
        let alts = lower_to_join(&p, &a, &b, &cat, false);
        let Expr::Join(spec, left, _) = &alts[0].1 else {
            panic!("expected a join, got {}", alts[0].1);
        };
        assert_eq!(spec.keys, vec![("sal".to_string(), "dno".to_string())]);
        assert_eq!(spec.residual, Predicate::True);
        assert!(matches!(**left, Expr::Select(..)), "{left}");
    }

    #[test]
    fn search_is_idempotent_on_its_own_output() {
        let original = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(selective());
        let first = search(&original, &catalog(), &model());
        let second = search(&first.plan, &catalog(), &model());
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.cost, second.cost);
    }

    #[test]
    fn unguarded_shapes_are_left_alone() {
        // σ_true over a historical operand errors; the searcher must
        // keep the erroring shape.
        let e = Expr::Select(Predicate::True, Box::new(Expr::hcurrent("h")));
        let report = search(&e, &catalog(), &model());
        assert_eq!(report.plan, e);
        // Unknown schemas: the product split cannot fire.
        let unknown = Expr::current("ghost")
            .product(Expr::current("spirit"))
            .select(Predicate::gt_const("x", Value::Int(0)));
        let report = search(&unknown, &catalog(), &model());
        assert!(!report.trace.applied.contains(&"select-through-product"));
    }

    #[test]
    fn memoized_groups_are_shared_across_the_dag() {
        // The same subexpression twice: one group, searched once.
        let sub = Expr::current("emp").select(Predicate::gt_const("sal", Value::Int(5)));
        let e = sub.clone().union(sub);
        let report = search(&e, &catalog(), &model());
        // Groups: ρ(emp), σ(ρ), ∪ — the duplicate σ(ρ) is a hit.
        assert!(report.stats.groups_memoized <= 3, "{:?}", report.stats);
    }

    #[test]
    fn explain_renders_tree_costs_and_trace() {
        let original = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(selective());
        let model = model();
        let report = search(&original, &catalog(), &model);
        let text = render_explain(2, &original, &report, &model);
        assert!(text.contains("plan (optimize level 2):"), "{text}");
        assert!(text.contains("rho(emp, inf)"), "{text}");
        assert!(text.contains("rows≈"), "{text}");
        assert!(text.contains("select-through-product"), "{text}");
        // An already-optimal plan reports no rewrites.
        let leaf = Expr::current("emp");
        let r = search(&leaf, &catalog(), &model);
        let text = render_explain(2, &leaf, &r, &model);
        assert!(text.contains("rewrites: none"), "{text}");
    }

    #[test]
    fn optimizer_stats_display_matches_house_style() {
        let s = OptimizerStats {
            level: 2,
            searches: 3,
            plan_cache_hits: 4,
            totals: SearchStats {
                plans_enumerated: 10,
                groups_memoized: 7,
                rewrites_fired: 5,
            },
        };
        let text = s.to_string();
        assert!(text.starts_with("optim: level 2, 3 search(es)"), "{text}");
        assert!(text.contains("10 plan(s) enumerated"), "{text}");
    }
}
