//! The rewrite rules and the fixpoint driver.

use txtime_core::Expr;
use txtime_snapshot::{Predicate, SnapshotState};

use crate::schema_infer::{infer_schema, SchemaCatalog};

/// A record of which rules fired, in order.
#[derive(Debug, Clone, Default)]
pub struct RewriteTrace {
    /// Rule names in application order.
    pub applied: Vec<&'static str>,
}

/// Optimizes an expression to a fixpoint of the rule set.
pub fn optimize(expr: &Expr, catalog: &SchemaCatalog) -> Expr {
    optimize_with_trace(expr, catalog).0
}

/// Optimizes, also reporting which rules fired.
pub fn optimize_with_trace(expr: &Expr, catalog: &SchemaCatalog) -> (Expr, RewriteTrace) {
    let mut trace = RewriteTrace::default();
    let mut current = expr.clone();
    // Each pass rewrites bottom-up; iterate until nothing changes, with a
    // generous bound as a termination backstop.
    for _ in 0..32 {
        let next = rewrite_bottom_up(&current, catalog, &mut trace);
        if next == current {
            break;
        }
        current = next;
    }
    (current, trace)
}

fn rewrite_bottom_up(expr: &Expr, catalog: &SchemaCatalog, trace: &mut RewriteTrace) -> Expr {
    // First rewrite children…
    let expr = match expr {
        Expr::Union(a, b) => Expr::Union(
            Box::new(rewrite_bottom_up(a, catalog, trace)),
            Box::new(rewrite_bottom_up(b, catalog, trace)),
        ),
        Expr::Difference(a, b) => Expr::Difference(
            Box::new(rewrite_bottom_up(a, catalog, trace)),
            Box::new(rewrite_bottom_up(b, catalog, trace)),
        ),
        Expr::Product(a, b) => Expr::Product(
            Box::new(rewrite_bottom_up(a, catalog, trace)),
            Box::new(rewrite_bottom_up(b, catalog, trace)),
        ),
        Expr::Project(attrs, e) => Expr::Project(
            attrs.clone(),
            Box::new(rewrite_bottom_up(e, catalog, trace)),
        ),
        Expr::Select(p, e) => Expr::Select(
            simplify_predicate(p, trace),
            Box::new(rewrite_bottom_up(e, catalog, trace)),
        ),
        Expr::HUnion(a, b) => Expr::HUnion(
            Box::new(rewrite_bottom_up(a, catalog, trace)),
            Box::new(rewrite_bottom_up(b, catalog, trace)),
        ),
        Expr::HDifference(a, b) => Expr::HDifference(
            Box::new(rewrite_bottom_up(a, catalog, trace)),
            Box::new(rewrite_bottom_up(b, catalog, trace)),
        ),
        Expr::HProduct(a, b) => Expr::HProduct(
            Box::new(rewrite_bottom_up(a, catalog, trace)),
            Box::new(rewrite_bottom_up(b, catalog, trace)),
        ),
        Expr::HProject(attrs, e) => Expr::HProject(
            attrs.clone(),
            Box::new(rewrite_bottom_up(e, catalog, trace)),
        ),
        Expr::HSelect(p, e) => Expr::HSelect(
            simplify_predicate(p, trace),
            Box::new(rewrite_bottom_up(e, catalog, trace)),
        ),
        Expr::Delta(g, v, e) => Expr::Delta(
            g.clone(),
            v.clone(),
            Box::new(rewrite_bottom_up(e, catalog, trace)),
        ),
        leaf => leaf.clone(),
    };
    // …then this node.
    rewrite_node(expr, catalog, trace)
}

fn rewrite_node(expr: Expr, catalog: &SchemaCatalog, trace: &mut RewriteTrace) -> Expr {
    match expr {
        // ---- σ rules -------------------------------------------------
        Expr::Select(p, e) => rewrite_select(p, *e, catalog, trace),
        Expr::HSelect(p, e) => match p {
            Predicate::True => {
                trace.applied.push("hselect-true-elim");
                *e
            }
            p => match *e {
                Expr::HSelect(q, inner) => {
                    trace.applied.push("hselect-fusion");
                    Expr::HSelect(q.and(p), inner)
                }
                other => Expr::HSelect(p, Box::new(other)),
            },
        },

        // ---- π rules -------------------------------------------------
        Expr::Project(attrs, e) => match *e {
            // π_X(π_Y(E)) → π_X(E)  (X ⊆ Y whenever the original is valid)
            Expr::Project(inner_attrs, inner) if subset(&attrs, &inner_attrs) => {
                trace.applied.push("project-cascade");
                Expr::Project(attrs, inner)
            }
            other => {
                // π over the full scheme in order is the identity.
                if let Some(schema) = infer_schema(&other, catalog) {
                    let full: Vec<&str> = schema.attributes().iter().map(|a| &*a.name).collect();
                    if full.len() == attrs.len()
                        && full.iter().zip(&attrs).all(|(a, b)| *a == b.as_str())
                    {
                        trace.applied.push("project-identity-elim");
                        return other;
                    }
                }
                Expr::Project(attrs, Box::new(other))
            }
        },
        Expr::HProject(attrs, e) => match *e {
            Expr::HProject(inner_attrs, inner) if subset(&attrs, &inner_attrs) => {
                trace.applied.push("hproject-cascade");
                Expr::HProject(attrs, inner)
            }
            other => Expr::HProject(attrs, Box::new(other)),
        },

        // ---- ∪/− with ∅ ----------------------------------------------
        Expr::Union(a, b) => {
            if is_empty_const_with_schema(&b, &a, catalog) {
                trace.applied.push("union-empty-elim");
                return *a;
            }
            if is_empty_const_with_schema(&a, &b, catalog) {
                trace.applied.push("union-empty-elim");
                return *b;
            }
            Expr::Union(a, b)
        }
        Expr::Difference(a, b) => {
            if is_empty_const_with_schema(&b, &a, catalog) {
                trace.applied.push("difference-empty-elim");
                return *a;
            }
            Expr::Difference(a, b)
        }

        // ---- δ identity ----------------------------------------------
        Expr::Delta(g, v, e) => {
            use txtime_historical::{TemporalExpr, TemporalPred};
            if g == TemporalPred::True && v == TemporalExpr::ValidTime {
                trace.applied.push("delta-identity-elim");
                *e
            } else {
                Expr::Delta(g, v, e)
            }
        }

        other => other,
    }
}

fn rewrite_select(
    p: Predicate,
    e: Expr,
    catalog: &SchemaCatalog,
    trace: &mut RewriteTrace,
) -> Expr {
    // σ_true(E) → E
    if p == Predicate::True {
        trace.applied.push("select-true-elim");
        return e;
    }
    // σ_false(E) → ∅ when the scheme is statically known.
    if p == Predicate::False {
        if let Some(schema) = infer_schema(&e, catalog) {
            trace.applied.push("select-false-to-empty");
            return Expr::snapshot_const(SnapshotState::empty(schema));
        }
    }
    match e {
        // σ_F1(σ_F2(E)) → σ_{F2 ∧ F1}(E)
        Expr::Select(q, inner) => {
            trace.applied.push("select-fusion");
            Expr::Select(q.and(p), inner)
        }
        // σ_F(π_X(E)) → π_X(σ_F(E)) — push the cheap filter below the
        // (deduplicating) projection. Sound because validity of the
        // original implies attrs(F) ⊆ X.
        Expr::Project(attrs, inner) => {
            trace.applied.push("select-below-project");
            Expr::Project(attrs, Box::new(Expr::Select(p, inner)))
        }
        // σ_F(A ∪ B) → σ_F(A) ∪ σ_F(B)
        Expr::Union(a, b) => {
            trace.applied.push("select-through-union");
            Expr::Union(
                Box::new(Expr::Select(p.clone(), a)),
                Box::new(Expr::Select(p, b)),
            )
        }
        // σ_F(A − B) → σ_F(A) − σ_F(B)
        Expr::Difference(a, b) => {
            trace.applied.push("select-through-difference");
            Expr::Difference(
                Box::new(Expr::Select(p.clone(), a)),
                Box::new(Expr::Select(p, b)),
            )
        }
        // σ_F(A × B): split conjuncts and push each to the side whose
        // scheme covers it — "distributivity of select over join".
        Expr::Product(a, b) => {
            let (sa, sb) = (infer_schema(&a, catalog), infer_schema(&b, catalog));
            if let (Some(sa), Some(sb)) = (sa, sb) {
                let mut left: Option<Predicate> = None;
                let mut right: Option<Predicate> = None;
                let mut rest: Option<Predicate> = None;
                let mut pushed = false;
                for conj in conjuncts(&p) {
                    let attrs = conj.attributes();
                    let target = if attrs.iter().all(|n| sa.contains(n)) {
                        pushed = true;
                        &mut left
                    } else if attrs.iter().all(|n| sb.contains(n)) {
                        pushed = true;
                        &mut right
                    } else {
                        &mut rest
                    };
                    *target = Some(match target.take() {
                        Some(acc) => acc.and(conj.clone()),
                        None => conj.clone(),
                    });
                }
                if pushed {
                    trace.applied.push("select-through-product");
                    let new_a = match left {
                        Some(f) => Box::new(Expr::Select(f, a)),
                        None => a,
                    };
                    let new_b = match right {
                        Some(f) => Box::new(Expr::Select(f, b)),
                        None => b,
                    };
                    let product = Expr::Product(new_a, new_b);
                    return match rest {
                        Some(f) => Expr::Select(f, Box::new(product)),
                        None => product,
                    };
                }
            }
            Expr::Select(p, Box::new(Expr::Product(a, b)))
        }
        other => Expr::Select(p, Box::new(other)),
    }
}

/// Flattens the top-level conjunction of a predicate.
pub(crate) fn conjuncts(p: &Predicate) -> Vec<&Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other],
    }
}

pub(crate) fn subset(xs: &[String], ys: &[String]) -> bool {
    xs.iter().all(|x| ys.contains(x))
}

fn is_empty_const_with_schema(candidate: &Expr, other: &Expr, catalog: &SchemaCatalog) -> bool {
    match candidate {
        Expr::SnapshotConst(s) if s.is_empty() => {
            infer_schema(other, catalog).is_some_and(|sch| &sch == s.schema())
        }
        _ => false,
    }
}

/// Constant-folds and simplifies a predicate.
pub fn simplify_predicate(p: &Predicate, trace: &mut RewriteTrace) -> Predicate {
    use txtime_snapshot::Operand;
    match p {
        Predicate::True | Predicate::False => p.clone(),
        Predicate::Comp(Operand::Const(l), op, Operand::Const(r)) if l.domain() == r.domain() => {
            trace.applied.push("predicate-constant-fold");
            if op.apply(l, r) {
                Predicate::True
            } else {
                Predicate::False
            }
        }
        Predicate::Comp(..) => p.clone(),
        Predicate::And(a, b) => {
            let (a, b) = (simplify_predicate(a, trace), simplify_predicate(b, trace));
            match (&a, &b) {
                (Predicate::True, _) => {
                    trace.applied.push("and-true-elim");
                    b
                }
                (_, Predicate::True) => {
                    trace.applied.push("and-true-elim");
                    a
                }
                (Predicate::False, _) | (_, Predicate::False) => {
                    trace.applied.push("and-false-collapse");
                    Predicate::False
                }
                _ => a.and(b),
            }
        }
        Predicate::Or(a, b) => {
            let (a, b) = (simplify_predicate(a, trace), simplify_predicate(b, trace));
            match (&a, &b) {
                (Predicate::False, _) => {
                    trace.applied.push("or-false-elim");
                    b
                }
                (_, Predicate::False) => {
                    trace.applied.push("or-false-elim");
                    a
                }
                (Predicate::True, _) | (_, Predicate::True) => {
                    trace.applied.push("or-true-collapse");
                    Predicate::True
                }
                _ => a.or(b),
            }
        }
        Predicate::Not(a) => {
            let a = simplify_predicate(a, trace);
            match a {
                Predicate::True => {
                    trace.applied.push("not-constant-fold");
                    Predicate::False
                }
                Predicate::False => {
                    trace.applied.push("not-constant-fold");
                    Predicate::True
                }
                Predicate::Not(inner) => {
                    trace.applied.push("double-negation-elim");
                    *inner
                }
                Predicate::Comp(l, op, r) => {
                    trace.applied.push("negated-comparison-fold");
                    Predicate::Comp(l, op.negate(), r)
                }
                other => other.not(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, Value};

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.insert(
            "emp",
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap(),
        );
        c.insert(
            "dept",
            Schema::new(vec![("dname", DomainType::Str), ("bldg", DomainType::Str)]).unwrap(),
        );
        c
    }

    #[test]
    fn select_fusion_fires() {
        let e = Expr::current("emp")
            .select(Predicate::gt_const("sal", Value::Int(10)))
            .select(Predicate::lt_const("sal", Value::Int(90)));
        let (o, trace) = optimize_with_trace(&e, &catalog());
        assert!(trace.applied.contains(&"select-fusion"));
        assert!(matches!(o, Expr::Select(Predicate::And(..), _)));
    }

    #[test]
    fn select_true_eliminated() {
        let e = Expr::current("emp").select(Predicate::True);
        assert_eq!(optimize(&e, &catalog()), Expr::current("emp"));
    }

    #[test]
    fn select_false_becomes_empty_constant() {
        let e = Expr::current("emp").select(Predicate::False);
        match optimize(&e, &catalog()) {
            Expr::SnapshotConst(s) => {
                assert!(s.is_empty());
                assert!(s.schema().contains("sal"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_false_kept_without_schema() {
        // Unknown relation: no scheme, no rewrite.
        let e = Expr::current("ghost").select(Predicate::False);
        assert_eq!(optimize(&e, &catalog()), e);
    }

    #[test]
    fn select_pushes_through_product() {
        let e = Expr::current("emp").product(Expr::current("dept")).select(
            Predicate::gt_const("sal", Value::Int(10))
                .and(Predicate::eq_const("bldg", Value::str("sitterson"))),
        );
        let (o, trace) = optimize_with_trace(&e, &catalog());
        assert!(trace.applied.contains(&"select-through-product"));
        // Both conjuncts pushed; top node is the product itself.
        match o {
            Expr::Product(a, b) => {
                assert!(matches!(*a, Expr::Select(..)));
                assert!(matches!(*b, Expr::Select(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_conjunct_stays_above_product() {
        let e = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(Predicate::eq_attrs("name", "dname"));
        let o = optimize(&e, &catalog());
        // The cross-operand comparison cannot be pushed.
        assert!(matches!(o, Expr::Select(..)));
    }

    #[test]
    fn project_cascade_collapses() {
        // The inner projection reorders (so it is not an identity and
        // survives on its own); the cascade still collapses the pair.
        let e = Expr::current("emp")
            .project(vec!["sal".into(), "name".into()])
            .project(vec!["name".into()]);
        let (o, trace) = optimize_with_trace(&e, &catalog());
        assert!(trace.applied.contains(&"project-cascade"));
        assert_eq!(o, Expr::current("emp").project(vec!["name".into()]));

        // An identity inner projection is removed by its own rule; the
        // final plan is identical.
        let e2 = Expr::current("emp")
            .project(vec!["name".into(), "sal".into()])
            .project(vec!["name".into()]);
        assert_eq!(
            optimize(&e2, &catalog()),
            Expr::current("emp").project(vec!["name".into()])
        );
    }

    #[test]
    fn identity_projection_eliminated() {
        let e = Expr::current("emp").project(vec!["name".into(), "sal".into()]);
        let o = optimize(&e, &catalog());
        assert_eq!(o, Expr::current("emp"));
    }

    #[test]
    fn reordering_projection_is_kept() {
        let e = Expr::current("emp").project(vec!["sal".into(), "name".into()]);
        assert_eq!(optimize(&e, &catalog()), e);
    }

    #[test]
    fn union_with_empty_constant_eliminated() {
        let schema = catalog().get("emp").unwrap().clone();
        let e = Expr::current("emp").union(Expr::snapshot_const(SnapshotState::empty(schema)));
        assert_eq!(optimize(&e, &catalog()), Expr::current("emp"));
    }

    #[test]
    fn predicate_constant_folding() {
        let mut trace = RewriteTrace::default();
        let p = Predicate::Comp(
            txtime_snapshot::Operand::Const(Value::Int(1)),
            txtime_snapshot::CompOp::Lt,
            txtime_snapshot::Operand::Const(Value::Int(2)),
        );
        assert_eq!(simplify_predicate(&p, &mut trace), Predicate::True);
        let q = Predicate::gt_const("sal", Value::Int(1)).and(Predicate::False);
        assert_eq!(simplify_predicate(&q, &mut trace), Predicate::False);
        let r = Predicate::gt_const("sal", Value::Int(1)).not().not();
        assert_eq!(
            simplify_predicate(&r, &mut trace),
            Predicate::gt_const("sal", Value::Int(1))
        );
    }

    #[test]
    fn negated_comparison_folds_into_opposite() {
        let mut trace = RewriteTrace::default();
        let p = Predicate::gt_const("sal", Value::Int(1)).not();
        assert_eq!(
            simplify_predicate(&p, &mut trace),
            Predicate::Comp(
                txtime_snapshot::Operand::attr("sal"),
                txtime_snapshot::CompOp::Le,
                txtime_snapshot::Operand::Const(Value::Int(1))
            )
        );
    }

    #[test]
    fn delta_identity_eliminated() {
        use txtime_historical::{TemporalExpr, TemporalPred};
        let e = Expr::hcurrent("hist").delta(TemporalPred::True, TemporalExpr::ValidTime);
        assert_eq!(optimize(&e, &catalog()), Expr::hcurrent("hist"));
    }

    #[test]
    fn optimization_terminates_on_pathological_nesting() {
        let mut e = Expr::current("emp");
        for i in 0..40 {
            e = e.select(Predicate::gt_const("sal", Value::Int(i)));
        }
        let o = optimize(&e, &catalog());
        // All 40 selects fused into one.
        assert!(matches!(o, Expr::Select(..)));
        assert_eq!(o.node_count(), 2);
    }
}
