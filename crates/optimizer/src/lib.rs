#![warn(missing_docs)]

//! Algebraic optimization for txtime expressions.
//!
//! The paper's §2 claim: "we preserve all the properties of the snapshot
//! algebra (e.g., commutativity of select, distributivity of select over
//! join), permitting the full application of previously developed
//! algebraic optimizations". This crate *applies* those optimizations to
//! the extended language — selections fuse and push toward leaves,
//! projections cascade, predicates fold — and proves, by property test,
//! that every rewrite is equivalence-preserving. The rollback operators ρ
//! and ρ̂ behave as opaque leaves, exactly as base relations do in the
//! classical theory, which is why the classical rules carry over
//! unchanged.
//!
//! Equivalence convention: `optimize(e)` evaluates to the same state as
//! `e` on every database where `e` evaluates successfully (partial
//! correctness — rewrites may turn some erroring expressions into
//! succeeding ones, e.g. `σ_false(π_ghost(E)) → ∅` never probes the bad
//! projection, but never the other way round).
//!
//! # Example
//!
//! ```
//! use txtime_core::Expr;
//! use txtime_optimizer::{optimize, SchemaCatalog};
//! use txtime_snapshot::{Predicate, Value};
//!
//! let e = Expr::current("emp")
//!     .select(Predicate::gt_const("sal", Value::Int(10)))
//!     .select(Predicate::lt_const("sal", Value::Int(90)));
//! let optimized = optimize(&e, &SchemaCatalog::default());
//! // The cascaded selections fused into one conjunction.
//! assert_eq!(optimized.node_count(), e.node_count() - 1);
//! ```

pub mod cost;
pub mod laws;
pub mod pushdown;
pub mod rules;
pub mod schema_infer;
pub mod search;

/// The hash-consed expression arena now lives in `txtime-analyze` (the
/// lint pass walks the same DAG); re-exported here so the memo layer and
/// older callers keep their `txtime_optimizer::interner` paths.
pub use txtime_analyze::interner;

pub use cost::{delta_beats_reeval, estimate_cost, estimate_rows, sanitize_rows, CostModel};
pub use interner::{ExprId, ExprInterner, ExprNode, NodeOp};
pub use pushdown::pushdown;
pub use rules::{optimize, optimize_with_trace, simplify_predicate, RewriteTrace};
pub use schema_infer::SchemaCatalog;
pub use search::{render_explain, render_plan, search, OptimizerStats, PlanReport, SearchStats};
