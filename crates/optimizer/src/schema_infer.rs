//! Static schema inference — re-exported from `txtime-analyze`.
//!
//! The implementation moved to [`txtime_analyze::schema_infer`] so the
//! optimizer and the static checker share one scheme arithmetic; this
//! module keeps the optimizer's historical paths working.

pub use txtime_analyze::schema_infer::{infer_schema, SchemaCatalog};
