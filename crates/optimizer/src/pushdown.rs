//! The error-preserving pushdown subset of the rewrite rules.
//!
//! [`optimize`](crate::optimize) is *partially* correct: a rewrite such as
//! `σ_false(π_ghost(E)) → ∅` may turn an erroring expression into a
//! succeeding one. That is fine for a planner a user invokes explicitly,
//! but an engine that must be observably equivalent to the reference
//! semantics — including on expressions that *fail* — cannot use it.
//!
//! [`pushdown`] applies only rules that preserve the success/failure
//! outcome exactly (`Err ≡ Err`, payloads aside, on every database):
//!
//! * **select-true-elim** / **hselect-true-elim** — `σ_true(E) → E`,
//!   guarded on `E`'s statically known state kind so the eliminated
//!   operator's kind check cannot be the difference.
//! * **select-fusion** / **hselect-fusion** — `σ_F(σ_G(E)) → σ_{G∧F}(E)`;
//!   selection preserves the scheme, so both predicates compile against
//!   the same scheme either way.
//! * **select-through-union / -difference** (and ∪̂/−̂ counterparts) —
//!   `σ_F(A ∪ B) → σ_F(A) ∪ σ_F(B)`; union compatibility means the
//!   operand schemes are equal, so `F` compiles against `B`'s scheme iff
//!   it compiles against `A`'s, and the compatibility check itself
//!   survives because selection preserves schemes.
//!
//! Deliberately *excluded* (not unconditionally error-preserving):
//! select-below-project and project-cascade (can bypass a bad attribute
//! list), select-false-to-empty and the ∅-elimination rules (can bypass
//! any error in the discarded subterm), select-through-product (re-homes
//! predicates onto different schemes), and predicate simplification
//! (dropping a subterm can drop its compile error).
//!
//! The payoff: fused and distributed selections land directly on ρ/ρ̂
//! leaves, where the evaluator's σ/π-over-ρ interception
//! (`txtime_core::RollbackFilter`) turns them into filtered resolution —
//! storage engines then filter *while reconstructing* instead of
//! materializing a full state first.

use txtime_core::Expr;
use txtime_snapshot::Predicate;

/// Rewrites `expr` with the error-preserving pushdown rules, to fixpoint.
///
/// The result evaluates to the same outcome — the same state on success,
/// an error exactly when the original errors — on every database, so an
/// engine may evaluate the rewritten expression in place of the original
/// without becoming observable.
pub fn pushdown(expr: &Expr) -> Expr {
    let mut current = expr.clone();
    // Bottom-up passes to a fixpoint; the node count strictly shrinks or
    // selections strictly sink, so the bound is a termination backstop.
    for _ in 0..32 {
        let next = pushdown_bottom_up(&current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn pushdown_bottom_up(expr: &Expr) -> Expr {
    let expr = match expr {
        Expr::Union(a, b) => Expr::Union(
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::Difference(a, b) => Expr::Difference(
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::Product(a, b) => Expr::Product(
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::Project(attrs, e) => Expr::Project(attrs.clone(), Box::new(pushdown_bottom_up(e))),
        Expr::Select(p, e) => Expr::Select(p.clone(), Box::new(pushdown_bottom_up(e))),
        Expr::HUnion(a, b) => Expr::HUnion(
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::HDifference(a, b) => Expr::HDifference(
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::HProduct(a, b) => Expr::HProduct(
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::HProject(attrs, e) => Expr::HProject(attrs.clone(), Box::new(pushdown_bottom_up(e))),
        Expr::HSelect(p, e) => Expr::HSelect(p.clone(), Box::new(pushdown_bottom_up(e))),
        Expr::Delta(g, v, e) => Expr::Delta(g.clone(), v.clone(), Box::new(pushdown_bottom_up(e))),
        // Physical joins appear when pushdown runs over an already
        // searched plan; recurse so residual selections below the join
        // still sink to their leaves.
        Expr::Join(spec, a, b) => Expr::Join(
            spec.clone(),
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        Expr::HJoin(spec, a, b) => Expr::HJoin(
            spec.clone(),
            Box::new(pushdown_bottom_up(a)),
            Box::new(pushdown_bottom_up(b)),
        ),
        leaf => leaf.clone(),
    };
    pushdown_node(expr)
}

fn pushdown_node(expr: Expr) -> Expr {
    match expr {
        Expr::Select(p, e) => {
            // σ_true(E) → E, only when E is statically snapshot-kind so
            // the dropped kind check could not have fired.
            if p == Predicate::True && is_snapshot_kind(&e) {
                return *e;
            }
            match *e {
                Expr::Select(q, inner) => Expr::Select(q.and(p), inner),
                Expr::Union(a, b) => Expr::Union(
                    Box::new(Expr::Select(p.clone(), a)),
                    Box::new(Expr::Select(p, b)),
                ),
                Expr::Difference(a, b) => Expr::Difference(
                    Box::new(Expr::Select(p.clone(), a)),
                    Box::new(Expr::Select(p, b)),
                ),
                other => Expr::Select(p, Box::new(other)),
            }
        }
        Expr::HSelect(p, e) => {
            if p == Predicate::True && is_historical_kind(&e) {
                return *e;
            }
            match *e {
                Expr::HSelect(q, inner) => Expr::HSelect(q.and(p), inner),
                Expr::HUnion(a, b) => Expr::HUnion(
                    Box::new(Expr::HSelect(p.clone(), a)),
                    Box::new(Expr::HSelect(p, b)),
                ),
                Expr::HDifference(a, b) => Expr::HDifference(
                    Box::new(Expr::HSelect(p.clone(), a)),
                    Box::new(Expr::HSelect(p, b)),
                ),
                other => Expr::HSelect(p, Box::new(other)),
            }
        }
        other => other,
    }
}

/// Whether the expression's result kind is statically snapshot.
///
/// Every constructor determines its kind: ρ with `historical = false`
/// only ever resolves to a snapshot state (the relation-type check plus
/// `modify_state`'s kind check guarantee it), and the snapshot operators
/// demand snapshot operands.
pub(crate) fn is_snapshot_kind(e: &Expr) -> bool {
    matches!(
        e,
        Expr::SnapshotConst(_)
            | Expr::Union(..)
            | Expr::Difference(..)
            | Expr::Product(..)
            | Expr::Project(..)
            | Expr::Select(..)
            | Expr::Rollback(..)
            | Expr::Join(..)
    )
}

/// Whether the expression's result kind is statically historical.
pub(crate) fn is_historical_kind(e: &Expr) -> bool {
    !is_snapshot_kind(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::TxSpec;
    use txtime_snapshot::Value;

    #[test]
    fn select_true_eliminated_on_snapshot_kind() {
        let e = Expr::current("emp").select(Predicate::True);
        assert_eq!(pushdown(&e), Expr::current("emp"));
    }

    #[test]
    fn select_true_kept_on_historical_kind() {
        // σ_true(ρ̂) errors (kind mismatch) in the reference semantics;
        // the rewrite must not erase that.
        let e = Expr::Select(Predicate::True, Box::new(Expr::hcurrent("h")));
        assert_eq!(pushdown(&e), e);
    }

    #[test]
    fn selections_fuse_onto_rollback_leaf() {
        let e = Expr::current("emp")
            .select(Predicate::gt_const("sal", Value::Int(10)))
            .select(Predicate::lt_const("sal", Value::Int(90)));
        match pushdown(&e) {
            Expr::Select(Predicate::And(..), inner) => {
                assert_eq!(*inner, Expr::current("emp"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selection_distributes_through_union_onto_leaves() {
        let p = Predicate::gt_const("sal", Value::Int(10));
        let e = Expr::current("emp")
            .union(Expr::rollback(
                "emp",
                TxSpec::At(txtime_core::TransactionNumber(3)),
            ))
            .select(p.clone());
        match pushdown(&e) {
            Expr::Union(a, b) => {
                assert!(matches!(*a, Expr::Select(_, ref i) if matches!(**i, Expr::Rollback(..))));
                assert!(matches!(*b, Expr::Select(_, ref i) if matches!(**i, Expr::Rollback(..))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selection_distributes_through_difference() {
        let p = Predicate::gt_const("sal", Value::Int(10));
        let e = Expr::current("a").difference(Expr::current("b")).select(p);
        assert!(matches!(pushdown(&e), Expr::Difference(..)));
    }

    #[test]
    fn historical_rules_mirror_snapshot_rules() {
        let p = Predicate::eq_const("name", Value::str("x"));
        let fused = Expr::hcurrent("h")
            .hselect(Predicate::gt_const("sal", Value::Int(1)))
            .hselect(p.clone());
        assert!(matches!(
            pushdown(&fused),
            Expr::HSelect(Predicate::And(..), _)
        ));
        let dist = Expr::hcurrent("h").hunion(Expr::hcurrent("g")).hselect(p);
        assert!(matches!(pushdown(&dist), Expr::HUnion(..)));
        let id = Expr::hcurrent("h").hselect(Predicate::True);
        assert_eq!(pushdown(&id), Expr::hcurrent("h"));
    }

    #[test]
    fn unsafe_rules_do_not_fire() {
        // select-false stays put (it can mask errors in the subterm)…
        let e = Expr::current("ghost").select(Predicate::False);
        assert_eq!(pushdown(&e), e);
        // …and so do project-cascade and select-below-project.
        let pp = Expr::current("emp")
            .project(vec!["sal".into(), "name".into()])
            .project(vec!["name".into()]);
        assert_eq!(pushdown(&pp), pp);
        let sp = Expr::current("emp")
            .project(vec!["name".into()])
            .select(Predicate::eq_const("name", Value::str("x")));
        assert_eq!(pushdown(&sp), sp);
    }

    #[test]
    fn pushdown_is_idempotent() {
        let e = Expr::current("emp")
            .union(Expr::current("emp"))
            .select(Predicate::gt_const("sal", Value::Int(10)))
            .select(Predicate::lt_const("sal", Value::Int(90)));
        let once = pushdown(&e);
        assert_eq!(pushdown(&once), once);
    }
}
