//! A cardinality-based cost model.
//!
//! The model is deliberately simple — System-R-style selectivity
//! constants over estimated cardinalities — because its job is to *rank*
//! plans for experiment E7 and to show that the classical cost reasoning
//! applies unchanged once ρ/ρ̂ are treated as base-relation leaves.

use std::collections::BTreeMap;

use txtime_core::Expr;

/// Per-relation cardinality statistics.
#[derive(Debug, Clone)]
pub struct CostModel {
    cardinalities: BTreeMap<String, f64>,
    /// Cardinality assumed for relations without statistics.
    pub default_cardinality: f64,
    /// Selectivity assumed per selection predicate conjunct.
    pub selectivity: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            cardinalities: BTreeMap::new(),
            default_cardinality: 100.0,
            selectivity: 0.5,
        }
    }
}

impl CostModel {
    /// An empty model with defaults.
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// A model seeded from the lint pass's statistics catalog: each
    /// relation's current cardinality interval collapses to its point
    /// estimate. This is the planned optimizer feed — the same
    /// statistics that power the `W`-series warnings rank plans here.
    pub fn from_stats(stats: &txtime_analyze::StatsCatalog) -> CostModel {
        let mut model = CostModel::new();
        for name in stats.names() {
            if let Some(card) = stats.current_card(name) {
                model.set_cardinality(name, card.estimate());
            }
        }
        model
    }

    /// Sets the cardinality statistic for a relation.
    pub fn set_cardinality(&mut self, relation: impl Into<String>, rows: f64) {
        self.cardinalities.insert(relation.into(), rows);
    }

    fn cardinality(&self, relation: &str) -> f64 {
        self.cardinalities
            .get(relation)
            .copied()
            .unwrap_or(self.default_cardinality)
    }
}

/// Estimated output cardinality of an expression.
pub fn estimate_rows(expr: &Expr, model: &CostModel) -> f64 {
    match expr {
        Expr::SnapshotConst(s) => s.len() as f64,
        Expr::HistoricalConst(h) => h.len() as f64,
        Expr::Rollback(i, _) | Expr::HRollback(i, _) => model.cardinality(i),
        Expr::Union(a, b) | Expr::HUnion(a, b) => estimate_rows(a, model) + estimate_rows(b, model),
        Expr::Difference(a, b) | Expr::HDifference(a, b) => {
            let _ = b;
            estimate_rows(a, model) * 0.5
        }
        Expr::Product(a, b) | Expr::HProduct(a, b) => {
            estimate_rows(a, model) * estimate_rows(b, model)
        }
        Expr::Project(_, e) | Expr::HProject(_, e) => estimate_rows(e, model) * 0.9,
        Expr::Select(p, e) | Expr::HSelect(p, e) => {
            let conjunct_count = count_conjuncts(p) as i32;
            estimate_rows(e, model) * model.selectivity.powi(conjunct_count)
        }
        Expr::Delta(_, _, e) => estimate_rows(e, model) * model.selectivity,
    }
}

fn count_conjuncts(p: &txtime_snapshot::Predicate) -> usize {
    match p {
        txtime_snapshot::Predicate::And(a, b) => count_conjuncts(a) + count_conjuncts(b),
        _ => 1,
    }
}

/// Decides whether propagating a delta of `delta_changes` changed
/// tuples/entries through one memoized operator beats recomputing that
/// operator from its (cached) inputs of `recompute_rows` total rows.
///
/// The same System-R-flavoured reasoning as [`estimate_cost`], collapsed
/// to a ratio: a delta rule touches O(Δ) items (each with a log-factor
/// membership probe against the sorted runs), a recompute touches every
/// input row. The probe constant is folded into a 4× headroom factor, so
/// propagation must be at least 4× smaller than the recompute before it
/// is chosen — the view memo consults this for the operators whose delta
/// rules have super-linear fan-out (×, ×̂) or where the delta can
/// approach the input (δ after a large churn).
pub fn delta_beats_reeval(delta_changes: usize, recompute_rows: usize) -> bool {
    // A delta too large to even scale can never beat the recompute.
    delta_changes
        .checked_mul(4)
        .is_some_and(|scaled| scaled <= recompute_rows)
}

/// Estimated total work of evaluating an expression: the sum of every
/// node's output cardinality (each intermediate state must be
/// materialized in the paper's semantics).
pub fn estimate_cost(expr: &Expr, model: &CostModel) -> f64 {
    let own = estimate_rows(expr, model);
    let children = match expr {
        Expr::SnapshotConst(_)
        | Expr::HistoricalConst(_)
        | Expr::Rollback(..)
        | Expr::HRollback(..) => 0.0,
        Expr::Union(a, b)
        | Expr::Difference(a, b)
        | Expr::Product(a, b)
        | Expr::HUnion(a, b)
        | Expr::HDifference(a, b)
        | Expr::HProduct(a, b) => estimate_cost(a, model) + estimate_cost(b, model),
        Expr::Project(_, e)
        | Expr::Select(_, e)
        | Expr::HProject(_, e)
        | Expr::HSelect(_, e)
        | Expr::Delta(_, _, e) => estimate_cost(e, model),
    };
    own + children
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_infer::SchemaCatalog;
    use txtime_snapshot::{DomainType, Predicate, Schema, Value};

    fn model() -> CostModel {
        let mut m = CostModel::new();
        m.set_cardinality("emp", 1000.0);
        m.set_cardinality("dept", 50.0);
        m
    }

    #[test]
    fn select_reduces_estimated_rows() {
        let base = Expr::current("emp");
        let sel = base
            .clone()
            .select(Predicate::gt_const("sal", Value::Int(1)));
        assert!(estimate_rows(&sel, &model()) < estimate_rows(&base, &model()));
    }

    #[test]
    fn product_multiplies() {
        let e = Expr::current("emp").product(Expr::current("dept"));
        assert_eq!(estimate_rows(&e, &model()), 50_000.0);
    }

    #[test]
    fn pushdown_lowers_cost() {
        // σ over a product vs the pushed-down form: the optimizer's
        // preferred plan must cost less under the model.
        let mut catalog = SchemaCatalog::new();
        catalog.insert(
            "emp",
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap(),
        );
        catalog.insert(
            "dept",
            Schema::new(vec![("dname", DomainType::Str)]).unwrap(),
        );
        let original = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(Predicate::gt_const("sal", Value::Int(10)));
        let optimized = crate::optimize(&original, &catalog);
        assert!(estimate_cost(&optimized, &model()) < estimate_cost(&original, &model()));
    }

    #[test]
    fn delta_threshold_prefers_small_deltas() {
        // A handful of changes against 10k rows: propagate.
        assert!(delta_beats_reeval(16, 10_000));
        // Delta comparable to the input: recompute.
        assert!(!delta_beats_reeval(5_000, 10_000));
        // Boundary and degenerate cases.
        assert!(delta_beats_reeval(0, 0));
        assert!(!delta_beats_reeval(1, 0));
        assert!(!delta_beats_reeval(usize::MAX, usize::MAX));
    }

    #[test]
    fn unknown_relations_use_default() {
        let m = CostModel::new();
        assert_eq!(estimate_rows(&Expr::current("mystery"), &m), 100.0);
    }

    #[test]
    fn model_from_stats_uses_interval_estimates() {
        use txtime_analyze::{CardInterval, StatsCatalog};
        use txtime_core::TransactionNumber;

        let mut stats = StatsCatalog::new();
        stats.define("emp");
        stats.get_mut("emp").unwrap().push_version(
            TransactionNumber(1),
            CardInterval::exact(40),
            None,
            true,
        );
        // A defined relation without any version stays at the default.
        stats.define("dept");
        let m = CostModel::from_stats(&stats);
        assert_eq!(estimate_rows(&Expr::current("emp"), &m), 40.0);
        assert_eq!(estimate_rows(&Expr::current("dept"), &m), 100.0);
    }
}
