//! A cardinality-based cost model.
//!
//! The model is deliberately simple — System-R-style selectivity
//! constants over estimated cardinalities — because its job is to *rank*
//! plans for experiment E7 and to show that the classical cost reasoning
//! applies unchanged once ρ/ρ̂ are treated as base-relation leaves.
//!
//! PR 8 grows it in two directions, both fed by the lint pass's
//! statistics substrate (`txtime-analyze`):
//!
//! - **value-range selectivity** — per-attribute [`ValueRange`]s turn a
//!   comparison like `sal > 95` into a linear-interpolated fraction of
//!   the attribute's observed `[lo, hi]` interval instead of the blanket
//!   0.5 constant, which is what lets the plan searcher rank a product
//!   ordering by how selective each side's conjuncts actually are;
//! - **numeric hygiene** — every arithmetic combine point is routed
//!   through [`sanitize_rows`], so deep products cannot overflow into
//!   `inf`/NaN and poison the `<` comparisons the searcher ranks with,
//!   and every selectivity is clamped to `[0, 1]`.

use std::collections::BTreeMap;

use txtime_analyze::ValueRange;
use txtime_core::Expr;
use txtime_snapshot::{CompOp, Operand, Predicate, Value};

/// Per-relation cardinality statistics plus per-attribute value ranges.
#[derive(Debug, Clone)]
pub struct CostModel {
    cardinalities: BTreeMap<String, f64>,
    /// Observed value range per attribute name, joined (hulled) across
    /// the relations that expose the attribute. Sound for selectivity
    /// because a hull only widens the denominator.
    attr_ranges: BTreeMap<String, ValueRange>,
    /// Distinct-value count per attribute name (max across relations —
    /// the widest denominator keeps equality selectivity conservative).
    attr_distincts: BTreeMap<String, f64>,
    /// Most-common-values sample per attribute: `(value, frequency)`
    /// pairs, most frequent first.
    attr_mcvs: BTreeMap<String, Vec<(Value, f64)>>,
    /// Cardinality assumed for relations without statistics.
    pub default_cardinality: f64,
    /// Selectivity assumed per selection predicate conjunct.
    pub selectivity: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            cardinalities: BTreeMap::new(),
            attr_ranges: BTreeMap::new(),
            attr_distincts: BTreeMap::new(),
            attr_mcvs: BTreeMap::new(),
            default_cardinality: 100.0,
            selectivity: 0.5,
        }
    }
}

impl CostModel {
    /// An empty model with defaults.
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// A model seeded from the lint pass's statistics catalog: each
    /// relation's current cardinality interval collapses to its point
    /// estimate. This is the planned optimizer feed — the same
    /// statistics that power the `W`-series warnings rank plans here.
    pub fn from_stats(stats: &txtime_analyze::StatsCatalog) -> CostModel {
        let mut model = CostModel::new();
        for name in stats.names() {
            if let Some(card) = stats.current_card(name) {
                model.set_cardinality(name, card.estimate());
            }
        }
        model
    }

    /// [`from_stats`](CostModel::from_stats) plus value ranges: the
    /// catalog's per-version ranges are positional (aligned with the
    /// scheme, no attribute names), so the schema catalog supplies the
    /// names to key them by. Only relations with a known (stable)
    /// schema contribute ranges.
    pub fn from_stats_with_schemas(
        stats: &txtime_analyze::StatsCatalog,
        schemas: &crate::SchemaCatalog,
    ) -> CostModel {
        let mut model = CostModel::from_stats(stats);
        let names: Vec<String> = stats.names().map(str::to_string).collect();
        for name in names {
            let (Some(rel), Some(schema)) = (stats.get(&name), schemas.get(&name)) else {
                continue;
            };
            let Some(ranges) = rel.current().and_then(|v| v.ranges.as_ref()) else {
                continue;
            };
            if ranges.len() != schema.arity() {
                continue;
            }
            for (i, range) in ranges.iter().enumerate() {
                model.note_attr_range(schema.attribute(i).name.to_string(), range.clone());
            }
            let Some(columns) = rel.current().and_then(|v| v.columns.as_ref()) else {
                continue;
            };
            if columns.len() != schema.arity() {
                continue;
            }
            for (i, col) in columns.iter().enumerate() {
                let name = schema.attribute(i).name.to_string();
                model.note_attr_distinct(name.clone(), col.distinct as f64);
                if !col.mcvs.is_empty() {
                    model.note_attr_mcvs(name, col.mcvs.clone());
                }
            }
        }
        model
    }

    /// Sets the cardinality statistic for a relation.
    pub fn set_cardinality(&mut self, relation: impl Into<String>, rows: f64) {
        self.cardinalities.insert(relation.into(), rows);
    }

    /// Records the observed value range of an attribute; a repeated
    /// attribute name widens to the hull of both ranges.
    pub fn note_attr_range(&mut self, attr: impl Into<String>, range: ValueRange) {
        self.attr_ranges
            .entry(attr.into())
            .and_modify(|r| *r = r.join(&range))
            .or_insert(range);
    }

    /// Records an attribute's distinct-value count; a repeated name
    /// keeps the larger count (conservative: a wider denominator gives
    /// the smaller, safer equality selectivity).
    pub fn note_attr_distinct(&mut self, attr: impl Into<String>, count: f64) {
        self.attr_distincts
            .entry(attr.into())
            .and_modify(|c| *c = c.max(count))
            .or_insert(count);
    }

    /// Records an attribute's most-common-values sample (first writer
    /// wins across relations sharing a name).
    pub fn note_attr_mcvs(&mut self, attr: impl Into<String>, mcvs: Vec<(Value, f64)>) {
        self.attr_mcvs.entry(attr.into()).or_insert(mcvs);
    }

    fn cardinality(&self, relation: &str) -> f64 {
        self.cardinalities
            .get(relation)
            .copied()
            .unwrap_or(self.default_cardinality)
    }

    /// Estimated fraction of input rows a predicate retains, always in
    /// `[0, 1]`. Comparisons against integer constants interpolate over
    /// the attribute's observed range when one is known; everything
    /// else falls back to the per-conjunct [`selectivity`] constant.
    /// Conjunctions multiply, disjunctions combine by inclusion–
    /// exclusion, negation complements — the independence assumptions
    /// of System R.
    ///
    /// [`selectivity`]: CostModel::selectivity
    pub fn predicate_selectivity(&self, p: &Predicate) -> f64 {
        let s = match p {
            Predicate::True => 1.0,
            Predicate::False => 0.0,
            Predicate::And(a, b) => self.predicate_selectivity(a) * self.predicate_selectivity(b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.predicate_selectivity(a), self.predicate_selectivity(b));
                sa + sb - sa * sb
            }
            Predicate::Not(q) => 1.0 - self.predicate_selectivity(q),
            Predicate::Comp(l, op, r) => self.comp_selectivity(l, *op, r),
        };
        if s.is_finite() {
            s.clamp(0.0, 1.0)
        } else {
            self.selectivity
        }
    }

    fn comp_selectivity(&self, l: &Operand, op: CompOp, r: &Operand) -> f64 {
        // Normalize `const ⊙ attr` to `attr ⊙⁻¹ const`.
        let (attr, op, value) = match (l, r) {
            (Operand::Attr(a), Operand::Const(v)) => (a, op, v),
            (Operand::Const(v), Operand::Attr(a)) => (a, flip(op), v),
            (Operand::Const(a), Operand::Const(b)) => {
                // Same-domain constant folds are exact; mixed domains
                // would error at compile time, so stay neutral.
                return match (a, b) {
                    (Value::Int(_), Value::Int(_))
                    | (Value::Real(_), Value::Real(_))
                    | (Value::Bool(_), Value::Bool(_))
                    | (Value::Str(_), Value::Str(_)) => {
                        if op.apply(a, b) {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => self.selectivity,
                };
            }
            // attr-attr comparisons: equality keys get the classical
            // 1/max(d_l, d_r) from distinct counts — the estimate the
            // join costing rides on.
            (Operand::Attr(a), Operand::Attr(b)) => {
                let (da, db) = (
                    self.attr_distincts.get(a.as_ref()),
                    self.attr_distincts.get(b.as_ref()),
                );
                let (Some(&da), Some(&db)) = (da, db) else {
                    return self.selectivity;
                };
                let eq = 1.0 / da.max(db).max(1.0);
                return match op {
                    CompOp::Eq => eq,
                    CompOp::Ne => 1.0 - eq,
                    _ => self.selectivity,
                };
            }
        };
        let bounds = self
            .attr_ranges
            .get(attr.as_ref())
            .and_then(|r| r.int_bounds());
        let (Some((lo, hi)), Value::Int(c)) = (bounds, value) else {
            // No usable integer range (string/boolean/real domains, or
            // no statistics): equality estimates come from the MCV
            // sample and the distinct count instead of the fixed guess.
            return self.eq_selectivity_from_columns(attr.as_ref(), op, value);
        };
        // All arithmetic in f64: extreme i64 endpoints must not wrap.
        let (lo, hi, c): (f64, f64, f64) = (lo as f64, hi as f64, *c as f64);
        let width = hi - lo + 1.0;
        if width <= 0.0 {
            return 0.0; // provably-empty range: nothing satisfies anything
        }
        let eq = if lo <= c && c <= hi { 1.0 / width } else { 0.0 };
        let frac = match op {
            CompOp::Eq => eq,
            CompOp::Ne => 1.0 - eq,
            CompOp::Lt => (c - lo) / width,
            CompOp::Le => (c - lo + 1.0) / width,
            CompOp::Gt => (hi - c) / width,
            CompOp::Ge => (hi - c + 1.0) / width,
        };
        frac.clamp(0.0, 1.0)
    }

    /// `=`/`≠` selectivity for `attr ⊙ const` on domains the integer
    /// range interpolation cannot serve. A constant found in the MCV
    /// sample answers with its observed frequency; otherwise the
    /// remaining mass spreads evenly over the non-MCV distinct values.
    fn eq_selectivity_from_columns(&self, attr: &str, op: CompOp, value: &Value) -> f64 {
        if !matches!(op, CompOp::Eq | CompOp::Ne) {
            return self.selectivity;
        }
        let mcvs = self.attr_mcvs.get(attr).map(Vec::as_slice).unwrap_or(&[]);
        let eq = if let Some((_, freq)) = mcvs.iter().find(|(v, _)| v == value) {
            *freq
        } else if let Some(&distinct) = self.attr_distincts.get(attr) {
            let covered: f64 = mcvs.iter().map(|(_, f)| f).sum();
            let rest = (distinct - mcvs.len() as f64).max(1.0);
            ((1.0 - covered).max(0.0) / rest).clamp(0.0, 1.0)
        } else {
            return self.selectivity;
        };
        match op {
            CompOp::Eq => eq,
            _ => 1.0 - eq,
        }
    }

    /// The work of one physical equi-join beyond its children: scan the
    /// build side once, probe with every left row, and materialize the
    /// output. Linear in its inputs — the whole point over the
    /// `|A| × |B|` product node it replaces.
    pub fn join_cost(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        sanitize_rows(left_rows + right_rows + out_rows)
    }
}

fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Eq => CompOp::Eq,
        CompOp::Ne => CompOp::Ne,
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
    }
}

/// Clamps a row estimate to a finite non-negative value: deep product
/// chains overflow `f64` into `inf`, and `0 × inf` poisons a whole plan
/// ranking with NaN. `MAX` (not `inf`) keeps `<` comparisons total.
pub fn sanitize_rows(rows: f64) -> f64 {
    if rows.is_nan() {
        f64::MAX
    } else {
        rows.clamp(0.0, f64::MAX)
    }
}

/// Estimated output cardinality of an expression.
pub fn estimate_rows(expr: &Expr, model: &CostModel) -> f64 {
    let rows = match expr {
        Expr::SnapshotConst(s) => s.len() as f64,
        Expr::HistoricalConst(h) => h.len() as f64,
        Expr::Rollback(i, _) | Expr::HRollback(i, _) => model.cardinality(i),
        Expr::Union(a, b) | Expr::HUnion(a, b) => estimate_rows(a, model) + estimate_rows(b, model),
        Expr::Difference(a, b) | Expr::HDifference(a, b) => {
            let _ = b;
            estimate_rows(a, model) * 0.5
        }
        Expr::Product(a, b) | Expr::HProduct(a, b) => {
            estimate_rows(a, model) * estimate_rows(b, model)
        }
        Expr::Project(_, e) | Expr::HProject(_, e) => estimate_rows(e, model) * 0.9,
        Expr::Select(p, e) | Expr::HSelect(p, e) => {
            estimate_rows(e, model) * model.predicate_selectivity(p)
        }
        Expr::Delta(_, _, e) => estimate_rows(e, model) * model.selectivity,
        Expr::Join(spec, a, b) | Expr::HJoin(spec, a, b) => {
            estimate_rows(a, model)
                * estimate_rows(b, model)
                * model.predicate_selectivity(&spec.as_predicate())
        }
    };
    sanitize_rows(rows)
}

/// Decides whether propagating a delta of `delta_changes` changed
/// tuples/entries through one memoized operator beats recomputing that
/// operator from its (cached) inputs of `recompute_rows` total rows.
///
/// The same System-R-flavoured reasoning as [`estimate_cost`], collapsed
/// to a ratio: a delta rule touches O(Δ) items (each with a log-factor
/// membership probe against the sorted runs), a recompute touches every
/// input row. The probe constant is folded into a 4× headroom factor, so
/// propagation must be at least 4× smaller than the recompute before it
/// is chosen — the view memo consults this for the operators whose delta
/// rules have super-linear fan-out (×, ×̂) or where the delta can
/// approach the input (δ after a large churn).
pub fn delta_beats_reeval(delta_changes: usize, recompute_rows: usize) -> bool {
    // A delta too large to even scale can never beat the recompute.
    delta_changes
        .checked_mul(4)
        .is_some_and(|scaled| scaled <= recompute_rows)
}

/// Estimated total work of evaluating an expression: the sum of every
/// node's output cardinality (each intermediate state must be
/// materialized in the paper's semantics). A join node's own work is
/// [`CostModel::join_cost`] — linear in its inputs plus its output,
/// where the product it replaces pays the full `|A| × |B|`.
pub fn estimate_cost(expr: &Expr, model: &CostModel) -> f64 {
    if let Expr::Join(_, a, b) | Expr::HJoin(_, a, b) = expr {
        let own = model.join_cost(
            estimate_rows(a, model),
            estimate_rows(b, model),
            estimate_rows(expr, model),
        );
        return sanitize_rows(own + estimate_cost(a, model) + estimate_cost(b, model));
    }
    let own = estimate_rows(expr, model);
    let children = match expr {
        Expr::SnapshotConst(_)
        | Expr::HistoricalConst(_)
        | Expr::Rollback(..)
        | Expr::HRollback(..) => 0.0,
        Expr::Union(a, b)
        | Expr::Difference(a, b)
        | Expr::Product(a, b)
        | Expr::HUnion(a, b)
        | Expr::HDifference(a, b)
        | Expr::HProduct(a, b) => estimate_cost(a, model) + estimate_cost(b, model),
        Expr::Project(_, e)
        | Expr::Select(_, e)
        | Expr::HProject(_, e)
        | Expr::HSelect(_, e)
        | Expr::Delta(_, _, e) => estimate_cost(e, model),
        Expr::Join(..) | Expr::HJoin(..) => unreachable!("handled above"),
    };
    sanitize_rows(own + children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_infer::SchemaCatalog;
    use txtime_analyze::Bound;
    use txtime_snapshot::{DomainType, Predicate, Schema, Value};

    fn model() -> CostModel {
        let mut m = CostModel::new();
        m.set_cardinality("emp", 1000.0);
        m.set_cardinality("dept", 50.0);
        m
    }

    #[test]
    fn select_reduces_estimated_rows() {
        let base = Expr::current("emp");
        let sel = base
            .clone()
            .select(Predicate::gt_const("sal", Value::Int(1)));
        assert!(estimate_rows(&sel, &model()) < estimate_rows(&base, &model()));
    }

    #[test]
    fn product_multiplies() {
        let e = Expr::current("emp").product(Expr::current("dept"));
        assert_eq!(estimate_rows(&e, &model()), 50_000.0);
    }

    #[test]
    fn pushdown_lowers_cost() {
        // σ over a product vs the pushed-down form: the optimizer's
        // preferred plan must cost less under the model.
        let mut catalog = SchemaCatalog::new();
        catalog.insert(
            "emp",
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap(),
        );
        catalog.insert(
            "dept",
            Schema::new(vec![("dname", DomainType::Str)]).unwrap(),
        );
        let original = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(Predicate::gt_const("sal", Value::Int(10)));
        let optimized = crate::optimize(&original, &catalog);
        assert!(estimate_cost(&optimized, &model()) < estimate_cost(&original, &model()));
    }

    #[test]
    fn delta_threshold_prefers_small_deltas() {
        // A handful of changes against 10k rows: propagate.
        assert!(delta_beats_reeval(16, 10_000));
        // Delta comparable to the input: recompute.
        assert!(!delta_beats_reeval(5_000, 10_000));
        // Boundary and degenerate cases.
        assert!(delta_beats_reeval(0, 0));
        assert!(!delta_beats_reeval(1, 0));
        assert!(!delta_beats_reeval(usize::MAX, usize::MAX));
    }

    #[test]
    fn unknown_relations_use_default() {
        let m = CostModel::new();
        assert_eq!(estimate_rows(&Expr::current("mystery"), &m), 100.0);
    }

    #[test]
    fn model_from_stats_uses_interval_estimates() {
        use txtime_analyze::{CardInterval, StatsCatalog};
        use txtime_core::TransactionNumber;

        let mut stats = StatsCatalog::new();
        stats.define("emp");
        stats.get_mut("emp").unwrap().push_version(
            TransactionNumber(1),
            CardInterval::exact(40),
            None,
            true,
        );
        // A defined relation without any version stays at the default.
        stats.define("dept");
        let m = CostModel::from_stats(&stats);
        assert_eq!(estimate_rows(&Expr::current("emp"), &m), 40.0);
        assert_eq!(estimate_rows(&Expr::current("dept"), &m), 100.0);
    }

    fn int_range(lo: i64, hi: i64) -> ValueRange {
        ValueRange {
            lo: Some(Bound::closed(Value::Int(lo))),
            hi: Some(Bound::closed(Value::Int(hi))),
        }
    }

    #[test]
    fn range_selectivity_interpolates_and_clamps() {
        let mut m = CostModel::new();
        m.note_attr_range("sal", int_range(0, 99));
        let sel = |p: &Predicate| m.predicate_selectivity(p);
        // sal > 89 keeps 10 of the 100 possible values.
        assert!((sel(&Predicate::gt_const("sal", Value::Int(89))) - 0.1).abs() < 1e-9);
        // Out-of-range comparisons clamp to [0, 1], never go negative.
        assert_eq!(sel(&Predicate::gt_const("sal", Value::Int(1000))), 0.0);
        assert_eq!(sel(&Predicate::lt_const("sal", Value::Int(1000))), 1.0);
        // Eq inside the range is 1/width; outside, 0.
        assert!((sel(&Predicate::eq_const("sal", Value::Int(5))) - 0.01).abs() < 1e-9);
        assert_eq!(sel(&Predicate::eq_const("sal", Value::Int(-1))), 0.0);
        // Attributes without statistics use the generic constant.
        assert_eq!(sel(&Predicate::gt_const("age", Value::Int(0))), 0.5);
    }

    #[test]
    fn connective_selectivities_stay_in_unit_interval() {
        let mut m = CostModel::new();
        m.note_attr_range("a", int_range(0, 9));
        let p = Predicate::gt_const("a", Value::Int(4));
        let q = Predicate::lt_const("a", Value::Int(2));
        for pred in [
            p.clone().and(q.clone()),
            p.clone().or(q.clone()),
            p.clone().not(),
            p.clone().and(q.clone()).not().or(p.clone()),
            Predicate::True,
            Predicate::False,
        ] {
            let s = m.predicate_selectivity(&pred);
            assert!((0.0..=1.0).contains(&s), "{pred:?} -> {s}");
        }
    }

    #[test]
    fn extreme_int_bounds_do_not_overflow() {
        // i64::MIN..=i64::MAX would wrap in integer arithmetic; the
        // f64 path must stay finite and in-range.
        let mut m = CostModel::new();
        m.note_attr_range("x", int_range(i64::MIN, i64::MAX));
        let s = m.predicate_selectivity(&Predicate::gt_const("x", Value::Int(0)));
        assert!((0.0..=1.0).contains(&s), "{s}");
    }

    #[test]
    fn empty_range_is_zero_selectivity() {
        let mut m = CostModel::new();
        m.note_attr_range("x", int_range(10, 5)); // contradiction range
        assert_eq!(
            m.predicate_selectivity(&Predicate::eq_const("x", Value::Int(7))),
            0.0
        );
    }

    #[test]
    fn deep_product_chain_stays_finite() {
        // 2^1000 rows overflows f64 into inf without the sanitizer;
        // the estimate must clamp to MAX so plan ranking stays total.
        let mut m = CostModel::new();
        m.set_cardinality("big", 1e308);
        let mut e = Expr::current("big");
        for _ in 0..64 {
            e = e.product(Expr::current("big"));
        }
        let rows = estimate_rows(&e, &m);
        let cost = estimate_cost(&e, &m);
        assert!(rows.is_finite() && rows == f64::MAX, "{rows}");
        assert!(cost.is_finite(), "{cost}");
        // A select over the overflowed product must not produce NaN.
        let sel = e.select(Predicate::eq_const("zzz", Value::Int(0)));
        assert!(estimate_rows(&sel, &m).is_finite());
    }

    #[test]
    fn empty_plans_estimate_zero() {
        use txtime_snapshot::SnapshotState;
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        let empty = Expr::SnapshotConst(SnapshotState::empty(schema));
        let m = CostModel::new();
        assert_eq!(estimate_rows(&empty, &m), 0.0);
        let u = empty.clone().union(empty.clone()).product(empty.clone());
        assert_eq!(estimate_rows(&u, &m), 0.0);
        assert_eq!(estimate_cost(&u, &m), 0.0);
    }

    #[test]
    fn sanitize_rows_boundaries() {
        assert_eq!(sanitize_rows(f64::NAN), f64::MAX);
        assert_eq!(sanitize_rows(f64::INFINITY), f64::MAX);
        assert_eq!(sanitize_rows(f64::NEG_INFINITY), 0.0);
        assert_eq!(sanitize_rows(-1.0), 0.0);
        assert_eq!(sanitize_rows(42.0), 42.0);
    }

    #[test]
    fn distinct_counts_drive_attr_attr_equality() {
        let mut m = CostModel::new();
        m.note_attr_distinct("a", 20.0);
        m.note_attr_distinct("b", 50.0);
        let eq = m.predicate_selectivity(&Predicate::eq_attrs("a", "b"));
        // 1 / max(distinct) — the System-R join-key estimate.
        assert!((eq - 0.02).abs() < 1e-9, "{eq}");
        let ne = m.predicate_selectivity(&Predicate::Comp(
            Operand::attr("a"),
            CompOp::Ne,
            Operand::attr("b"),
        ));
        assert!((ne - 0.98).abs() < 1e-9, "{ne}");
        // Without distincts the generic constant still answers.
        let unknown = m.predicate_selectivity(&Predicate::eq_attrs("x", "y"));
        assert_eq!(unknown, m.selectivity);
    }

    #[test]
    fn mcv_sample_answers_string_equality() {
        let mut m = CostModel::new();
        m.note_attr_distinct("city", 10.0);
        m.note_attr_mcvs(
            "city",
            vec![(Value::str("oslo"), 0.5), (Value::str("bergen"), 0.25)],
        );
        // An MCV hit answers with its observed frequency.
        let s = m.predicate_selectivity(&Predicate::eq_const("city", Value::str("oslo")));
        assert!((s - 0.5).abs() < 1e-9, "{s}");
        // A miss spreads the uncovered mass over the remaining distincts:
        // (1 - 0.75) / (10 - 2) = 0.03125.
        let s = m.predicate_selectivity(&Predicate::eq_const("city", Value::str("tromso")));
        assert!((s - 0.03125).abs() < 1e-9, "{s}");
        // ≠ is the complement of the = estimate.
        let s = m.predicate_selectivity(&Predicate::Comp(
            Operand::attr("city"),
            CompOp::Ne,
            Operand::Const(Value::str("oslo")),
        ));
        assert!((s - 0.5).abs() < 1e-9, "{s}");
    }

    #[test]
    fn join_estimate_beats_product_select() {
        use txtime_core::{JoinPhysical, JoinSpec};
        let m = {
            let mut m = model();
            m.note_attr_distinct("sal", 100.0);
            m.note_attr_distinct("dno", 25.0);
            m
        };
        let spec = JoinSpec {
            keys: vec![("sal".into(), "dno".into())],
            residual: Predicate::True,
            physical: JoinPhysical::Hash,
        };
        let join = Expr::current("emp").join(spec, Expr::current("dept"));
        let product = Expr::current("emp")
            .product(Expr::current("dept"))
            .select(Predicate::eq_attrs("sal", "dno"));
        // Same output estimate (both are σ_k(×) semantically)…
        assert_eq!(estimate_rows(&join, &m), estimate_rows(&product, &m));
        // …but the join pays build + probe + output, not |A|·|B|.
        assert!(estimate_cost(&join, &m) < estimate_cost(&product, &m));
        assert_eq!(m.join_cost(1000.0, 50.0, 500.0), 1550.0);
    }
}
