//! The algebraic-law suite (experiment E1).
//!
//! Each [`Law`] is one of the snapshot-algebra identities the paper says
//! its extension preserves, packaged as an executable check over randomly
//! generated states. The experiment harness runs every law for a
//! configurable number of trials and reports a table; the property tests
//! in `tests/equivalence.rs` run the same suite under proptest.

use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;

use txtime_snapshot::generate::{random_predicate, random_state, GenConfig};
use txtime_snapshot::{DomainType, Schema, SnapshotState};

/// One algebraic identity and its checker.
pub struct Law {
    /// Identity name, e.g. `"σ-commutativity"`.
    pub name: &'static str,
    /// The identity in mathematical notation.
    pub statement: &'static str,
    check: fn(&mut StdRng) -> bool,
}

impl Law {
    /// Runs the law `trials` times with the given base seed; returns the
    /// number of successful trials.
    pub fn run(&self, seed: u64, trials: usize) -> usize {
        (0..trials)
            .filter(|i| {
                let mut rng = StdRng::seed_from_u64(seed ^ (*i as u64).wrapping_mul(0x9e37_79b9));
                (self.check)(&mut rng)
            })
            .count()
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        ("a0", DomainType::Int),
        ("a1", DomainType::Str),
        ("a2", DomainType::Bool),
    ])
    .unwrap()
}

fn right_schema() -> Schema {
    Schema::new(vec![("b0", DomainType::Int)]).unwrap()
}

fn cfg() -> GenConfig {
    GenConfig {
        arity: 3,
        cardinality: 20,
        int_range: 10,
        str_pool: 5,
    }
}

fn st(rng: &mut StdRng) -> SnapshotState {
    random_state(rng, &schema(), &cfg())
}

fn rst(rng: &mut StdRng) -> SnapshotState {
    random_state(
        rng,
        &right_schema(),
        &GenConfig {
            arity: 1,
            cardinality: 8,
            ..cfg()
        },
    )
}

/// The law suite. Every entry corresponds to a classical snapshot-algebra
/// identity; together they witness the §2 preservation claim.
pub fn all_laws() -> Vec<Law> {
    vec![
        Law {
            name: "union-commutativity",
            statement: "A ∪ B = B ∪ A",
            check: |rng| {
                let (a, b) = (st(rng), st(rng));
                a.union(&b).unwrap() == b.union(&a).unwrap()
            },
        },
        Law {
            name: "union-associativity",
            statement: "(A ∪ B) ∪ C = A ∪ (B ∪ C)",
            check: |rng| {
                let (a, b, c) = (st(rng), st(rng), st(rng));
                a.union(&b).unwrap().union(&c).unwrap() == a.union(&b.union(&c).unwrap()).unwrap()
            },
        },
        Law {
            name: "union-idempotence",
            statement: "A ∪ A = A",
            check: |rng| {
                let a = st(rng);
                a.union(&a).unwrap() == a
            },
        },
        Law {
            name: "intersection-via-difference",
            statement: "A ∩ B = A − (A − B)",
            check: |rng| {
                let (a, b) = (st(rng), st(rng));
                a.intersect(&b).unwrap() == a.difference(&a.difference(&b).unwrap()).unwrap()
            },
        },
        Law {
            name: "σ-commutativity",
            statement: "σ_F(σ_G(A)) = σ_G(σ_F(A))",
            check: |rng| {
                let a = st(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                let g = random_predicate(rng, &schema(), &cfg(), 2);
                a.select(&f).unwrap().select(&g).unwrap()
                    == a.select(&g).unwrap().select(&f).unwrap()
            },
        },
        Law {
            name: "σ-cascade",
            statement: "σ_F(σ_G(A)) = σ_{F∧G}(A)",
            check: |rng| {
                let a = st(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                let g = random_predicate(rng, &schema(), &cfg(), 2);
                a.select(&g).unwrap().select(&f).unwrap() == a.select(&f.clone().and(g)).unwrap()
            },
        },
        Law {
            name: "σ-over-∪",
            statement: "σ_F(A ∪ B) = σ_F(A) ∪ σ_F(B)",
            check: |rng| {
                let (a, b) = (st(rng), st(rng));
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                a.union(&b).unwrap().select(&f).unwrap()
                    == a.select(&f).unwrap().union(&b.select(&f).unwrap()).unwrap()
            },
        },
        Law {
            name: "σ-over-−",
            statement: "σ_F(A − B) = σ_F(A) − σ_F(B)",
            check: |rng| {
                let (a, b) = (st(rng), st(rng));
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                a.difference(&b).unwrap().select(&f).unwrap()
                    == a.select(&f)
                        .unwrap()
                        .difference(&b.select(&f).unwrap())
                        .unwrap()
            },
        },
        Law {
            name: "σ-over-×",
            statement: "σ_F(A × B) = σ_F(A) × B, attrs(F) ⊆ scheme(A)",
            check: |rng| {
                let (a, b) = (st(rng), rst(rng));
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                a.product(&b).unwrap().select(&f).unwrap()
                    == a.select(&f).unwrap().product(&b).unwrap()
            },
        },
        Law {
            name: "σ-partition",
            statement: "σ_F(A) ∪ σ_{¬F}(A) = A ∧ σ_F(A) ∩ σ_{¬F}(A) = ∅",
            check: |rng| {
                let a = st(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                let sel = a.select(&f).unwrap();
                let neg = a.select(&f.clone().not()).unwrap();
                sel.union(&neg).unwrap() == a && sel.intersect(&neg).unwrap().is_empty()
            },
        },
        Law {
            name: "π-cascade",
            statement: "π_X(π_Y(A)) = π_X(A), X ⊆ Y",
            check: |rng| {
                let a = st(rng);
                a.project(&["a0", "a1"]).unwrap().project(&["a0"]).unwrap()
                    == a.project(&["a0"]).unwrap()
            },
        },
        Law {
            name: "π-over-∪",
            statement: "π_X(A ∪ B) = π_X(A) ∪ π_X(B)",
            check: |rng| {
                let (a, b) = (st(rng), st(rng));
                a.union(&b).unwrap().project(&["a0", "a2"]).unwrap()
                    == a.project(&["a0", "a2"])
                        .unwrap()
                        .union(&b.project(&["a0", "a2"]).unwrap())
                        .unwrap()
            },
        },
        Law {
            name: "σ/π-interchange",
            statement: "π_X(σ_F(A)) = σ_F(π_X(A)), attrs(F) ⊆ X",
            check: |rng| {
                let a = st(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                a.select(&f).unwrap().project(&["a0", "a1", "a2"]).unwrap()
                    == a.project(&["a0", "a1", "a2"]).unwrap().select(&f).unwrap()
            },
        },
        Law {
            name: "×-over-∪",
            statement: "(A ∪ B) × C = (A × C) ∪ (B × C)",
            check: |rng| {
                let (a, b, c) = (st(rng), st(rng), rst(rng));
                a.union(&b).unwrap().product(&c).unwrap()
                    == a.product(&c)
                        .unwrap()
                        .union(&b.product(&c).unwrap())
                        .unwrap()
            },
        },
        Law {
            name: "De-Morgan",
            statement: "σ_{¬(F∧G)}(A) = σ_{¬F ∨ ¬G}(A)",
            check: |rng| {
                let a = st(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                let g = random_predicate(rng, &schema(), &cfg(), 2);
                a.select(&f.clone().and(g.clone()).not()).unwrap()
                    == a.select(&f.not().or(g.not())).unwrap()
            },
        },
        Law {
            name: "⋈-via-×σ",
            statement: "A ⋈_F B = σ_F(A × B)",
            check: |rng| {
                let (a, b) = (st(rng), rst(rng));
                let f = txtime_snapshot::Predicate::eq_attrs("a0", "b0");
                a.theta_join(&b, &f).unwrap() == a.product(&b).unwrap().select(&f).unwrap()
            },
        },
        Law {
            name: "⋈-physical-via-×σ",
            statement: "A ⋈^{hash|merge}_{a0=b0} B = σ_{a0=b0}(A × B)",
            check: |rng| {
                use txtime_snapshot::{JoinPhysical, JoinSpec, Predicate};
                let (a, b) = (st(rng), rst(rng));
                let oracle = a
                    .product(&b)
                    .unwrap()
                    .select(&Predicate::eq_attrs("a0", "b0"))
                    .unwrap();
                [JoinPhysical::Hash, JoinPhysical::Merge]
                    .into_iter()
                    .all(|physical| {
                        let spec = JoinSpec {
                            keys: vec![("a0".into(), "b0".into())],
                            residual: Predicate::True,
                            physical,
                        };
                        a.equi_join(&b, &spec).unwrap() == oracle
                    })
            },
        },
    ]
}

// ---------------------------------------------------------------------
// The historical-algebra law suite (§4: the hatted operators must be
// conservative extensions of their snapshot counterparts).
// ---------------------------------------------------------------------

use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::{HistoricalState, TemporalElement, TemporalExpr, TemporalPred};

fn hcfg() -> HistGenConfig {
    HistGenConfig {
        values: GenConfig {
            arity: 3,
            cardinality: 12,
            int_range: 8,
            str_pool: 4,
        },
        horizon: 30,
        max_periods: 2,
    }
}

fn hst(rng: &mut StdRng) -> HistoricalState {
    random_historical_state(rng, &schema(), &hcfg())
}

fn hrst(rng: &mut StdRng) -> HistoricalState {
    let cfg = HistGenConfig {
        values: GenConfig {
            arity: 1,
            cardinality: 6,
            int_range: 8,
            str_pool: 4,
        },
        ..hcfg()
    };
    random_historical_state(rng, &right_schema(), &cfg)
}

fn random_chronon(rng: &mut StdRng) -> u32 {
    use txtime_snapshot::rng::Rng;
    rng.gen_range(0..35)
}

/// The historical-algebra law suite: the hatted operators obey the same
/// identities as their snapshot counterparts, and each one satisfies the
/// timeslice correspondence that makes §4's layering conservative.
pub fn historical_laws() -> Vec<Law> {
    vec![
        Law {
            name: "∪̂-commutativity",
            statement: "A ∪̂ B = B ∪̂ A",
            check: |rng| {
                let (a, b) = (hst(rng), hst(rng));
                a.hunion(&b).unwrap() == b.hunion(&a).unwrap()
            },
        },
        Law {
            name: "∪̂-associativity",
            statement: "(A ∪̂ B) ∪̂ C = A ∪̂ (B ∪̂ C)",
            check: |rng| {
                let (a, b, c) = (hst(rng), hst(rng), hst(rng));
                a.hunion(&b).unwrap().hunion(&c).unwrap()
                    == a.hunion(&b.hunion(&c).unwrap()).unwrap()
            },
        },
        Law {
            name: "∪̂-idempotence",
            statement: "A ∪̂ A = A",
            check: |rng| {
                let a = hst(rng);
                a.hunion(&a).unwrap() == a
            },
        },
        Law {
            name: "−̂-self-annihilation",
            statement: "A −̂ A = ∅",
            check: |rng| {
                let a = hst(rng);
                a.hdifference(&a).unwrap().is_empty()
            },
        },
        Law {
            name: "σ̂-commutativity",
            statement: "σ̂_F(σ̂_G(A)) = σ̂_G(σ̂_F(A))",
            check: |rng| {
                let a = hst(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                let g = random_predicate(rng, &schema(), &cfg(), 2);
                a.hselect(&f).unwrap().hselect(&g).unwrap()
                    == a.hselect(&g).unwrap().hselect(&f).unwrap()
            },
        },
        Law {
            name: "∪̂-timeslice",
            statement: "τ_c(A ∪̂ B) = τ_c(A) ∪ τ_c(B)",
            check: |rng| {
                let (a, b) = (hst(rng), hst(rng));
                let c = random_chronon(rng);
                a.hunion(&b).unwrap().timeslice(c) == a.timeslice(c).union(&b.timeslice(c)).unwrap()
            },
        },
        Law {
            name: "−̂-timeslice",
            statement: "τ_c(A −̂ B) = τ_c(A) − τ_c(B)",
            check: |rng| {
                let (a, b) = (hst(rng), hst(rng));
                let c = random_chronon(rng);
                a.hdifference(&b).unwrap().timeslice(c)
                    == a.timeslice(c).difference(&b.timeslice(c)).unwrap()
            },
        },
        Law {
            name: "×̂-timeslice",
            statement: "τ_c(A ×̂ B) = τ_c(A) × τ_c(B)",
            check: |rng| {
                let (a, b) = (hst(rng), hrst(rng));
                let c = random_chronon(rng);
                a.hproduct(&b).unwrap().timeslice(c)
                    == a.timeslice(c).product(&b.timeslice(c)).unwrap()
            },
        },
        Law {
            name: "π̂-timeslice",
            statement: "τ_c(π̂_X(A)) = π_X(τ_c(A))",
            check: |rng| {
                let a = hst(rng);
                let c = random_chronon(rng);
                a.hproject(&["a0"]).unwrap().timeslice(c)
                    == a.timeslice(c).project(&["a0"]).unwrap()
            },
        },
        Law {
            name: "σ̂-timeslice",
            statement: "τ_c(σ̂_F(A)) = σ_F(τ_c(A))",
            check: |rng| {
                let a = hst(rng);
                let f = random_predicate(rng, &schema(), &cfg(), 2);
                let c = random_chronon(rng);
                a.hselect(&f).unwrap().timeslice(c) == a.timeslice(c).select(&f).unwrap()
            },
        },
        Law {
            name: "δ-identity",
            statement: "δ_{true, valid}(A) = A",
            check: |rng| {
                let a = hst(rng);
                a.delta(&TemporalPred::True, &TemporalExpr::ValidTime)
                    .unwrap()
                    == a
            },
        },
        Law {
            name: "δ-clip-timeslice",
            statement: "τ_c(δ_{valid∋c, valid∩{c}}(A)) = τ_c(A)",
            check: |rng| {
                let a = hst(rng);
                let c = random_chronon(rng);
                let clip = TemporalExpr::intersect(
                    TemporalExpr::ValidTime,
                    TemporalExpr::constant(TemporalElement::instant(c)),
                );
                a.delta(&TemporalPred::valid_at(c), &clip)
                    .unwrap()
                    .timeslice(c)
                    == a.timeslice(c)
            },
        },
        Law {
            name: "⋈̂-via-×̂σ̂",
            statement: "A ⋈̂^{hash|merge}_{a0=b0} B = σ̂_{a0=b0}(A ×̂ B)",
            check: |rng| {
                use txtime_snapshot::{JoinPhysical, JoinSpec, Predicate};
                let (a, b) = (hst(rng), hrst(rng));
                let oracle = a
                    .hproduct(&b)
                    .unwrap()
                    .hselect(&Predicate::eq_attrs("a0", "b0"))
                    .unwrap();
                [JoinPhysical::Hash, JoinPhysical::Merge]
                    .into_iter()
                    .all(|physical| {
                        let spec = JoinSpec {
                            keys: vec![("a0".into(), "b0".into())],
                            residual: Predicate::True,
                            physical,
                        };
                        a.hequi_join(&b, &spec).unwrap() == oracle
                    })
            },
        },
        Law {
            name: "⋈̂-timeslice",
            statement: "τ_c(A ⋈̂_k B) = τ_c(A) ⋈_k τ_c(B)",
            check: |rng| {
                use txtime_snapshot::{JoinPhysical, JoinSpec, Predicate};
                let (a, b) = (hst(rng), hrst(rng));
                let c = random_chronon(rng);
                let spec = JoinSpec {
                    keys: vec![("a0".into(), "b0".into())],
                    residual: Predicate::True,
                    physical: JoinPhysical::Hash,
                };
                a.hequi_join(&b, &spec).unwrap().timeslice(c)
                    == a.timeslice(c).equi_join(&b.timeslice(c), &spec).unwrap()
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_law_holds_on_fifty_trials() {
        for law in all_laws() {
            let ok = law.run(0xfeed_beef, 50);
            assert_eq!(ok, 50, "law {} failed {} trials", law.name, 50 - ok);
        }
    }

    #[test]
    fn every_historical_law_holds_on_fifty_trials() {
        for law in historical_laws() {
            let ok = law.run(0xbeef_feed, 50);
            assert_eq!(ok, 50, "law {} failed {} trials", law.name, 50 - ok);
        }
    }

    #[test]
    fn suites_are_nontrivial() {
        assert!(all_laws().len() >= 16);
        assert!(historical_laws().len() >= 13);
    }
}
