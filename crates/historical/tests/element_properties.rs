//! Property tests for [`TemporalElement`], the chronon-set representation
//! everything valid-time rests on: it must be a faithful boolean algebra
//! of sets, with canonical (coalesced) representations.

use proptest::prelude::*;

use txtime_historical::{Period, TemporalElement};

/// Arbitrary elements over a small horizon so collisions are common.
fn arb_element() -> impl Strategy<Value = TemporalElement> {
    prop::collection::vec((0u32..40, 1u32..12), 0..5).prop_map(|pairs| {
        TemporalElement::from_periods(
            pairs
                .into_iter()
                .map(|(s, len)| Period::new(s, s + len).expect("len >= 1")),
        )
    })
}

/// Oracle: the element's chronon set as an explicit bit-set.
fn chronon_set(e: &TemporalElement) -> Vec<bool> {
    let mut v = vec![false; 64];
    for c in e.chronons() {
        if (c as usize) < v.len() {
            v[c as usize] = true;
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_matches_setwise_or(a in arb_element(), b in arb_element()) {
        let got = chronon_set(&a.union(&b));
        let (sa, sb) = (chronon_set(&a), chronon_set(&b));
        for i in 0..64 {
            prop_assert_eq!(got[i], sa[i] || sb[i], "chronon {}", i);
        }
    }

    #[test]
    fn intersect_matches_setwise_and(a in arb_element(), b in arb_element()) {
        let got = chronon_set(&a.intersect(&b));
        let (sa, sb) = (chronon_set(&a), chronon_set(&b));
        for i in 0..64 {
            prop_assert_eq!(got[i], sa[i] && sb[i], "chronon {}", i);
        }
    }

    #[test]
    fn difference_matches_setwise_andnot(a in arb_element(), b in arb_element()) {
        let got = chronon_set(&a.difference(&b));
        let (sa, sb) = (chronon_set(&a), chronon_set(&b));
        for i in 0..64 {
            prop_assert_eq!(got[i], sa[i] && !sb[i], "chronon {}", i);
        }
    }

    #[test]
    fn representations_are_canonical(a in arb_element(), b in arb_element()) {
        // Structural equality coincides with set equality: any two ways
        // of building the same set produce identical period lists.
        let via_union = a.union(&b);
        let via_pieces = a.difference(&b).union(&a.intersect(&b)).union(&b.difference(&a)).union(&a.intersect(&b));
        prop_assert_eq!(via_union, via_pieces);
    }

    #[test]
    fn periods_are_sorted_disjoint_and_nonadjacent(a in arb_element(), b in arb_element()) {
        for e in [a.union(&b), a.intersect(&b), a.difference(&b)] {
            let ps = e.periods();
            for w in ps.windows(2) {
                prop_assert!(w[0].end() < w[1].start(), "coalesced: {} then {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn de_morgan(a in arb_element(), b in arb_element()) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn complement_is_involution(a in arb_element()) {
        prop_assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn duration_is_additive_over_disjoint_parts(a in arb_element(), b in arb_element()) {
        let inter = a.intersect(&b);
        let uni = a.union(&b);
        prop_assert_eq!(
            uni.duration() + inter.duration(),
            a.duration() + b.duration()
        );
    }

    #[test]
    fn subset_and_overlap_agree_with_operations(a in arb_element(), b in arb_element()) {
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
        prop_assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn first_last_bound_the_set(a in arb_element()) {
        if let (Some(first), Some(last)) = (a.first(), a.last()) {
            prop_assert!(a.contains(first));
            prop_assert!(a.contains(last));
            prop_assert!(first == 0 || !a.contains(first - 1));
            prop_assert!(!a.contains(last + 1) || last == u32::MAX);
            for c in a.chronons() {
                prop_assert!(first <= c && c <= last);
            }
        } else {
            prop_assert!(a.is_empty());
        }
    }

    #[test]
    fn precedes_is_a_strict_order_on_disjoint_sets(a in arb_element(), b in arb_element()) {
        if !a.is_empty() && !b.is_empty() && a.precedes(&b) {
            prop_assert!(!b.precedes(&a));
            prop_assert!(!a.overlaps(&b));
        }
    }

    #[test]
    fn contains_matches_chronon_iteration(a in arb_element()) {
        let set = chronon_set(&a);
        for (i, &present) in set.iter().enumerate() {
            prop_assert_eq!(a.contains(i as u32), present, "chronon {}", i);
        }
    }
}
