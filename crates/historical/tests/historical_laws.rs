//! Property-based tests of the historical algebra.
//!
//! The key soundness property is the **timeslice correspondence**: each
//! historical operator, observed at any single chronon, behaves exactly
//! like its snapshot counterpart. This is what makes the historical
//! algebra a conservative extension of the snapshot algebra, and it is the
//! semantic content of the paper's claim that valid time and transaction
//! time can be layered independently.

use proptest::prelude::*;
use txtime_snapshot::rng::SeedableRng;

use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::{HistoricalState, TemporalElement, TemporalExpr, TemporalPred};
use txtime_snapshot::generate::{self, GenConfig};
use txtime_snapshot::{Predicate, Schema};

fn fixed_schema() -> Schema {
    use txtime_snapshot::DomainType::*;
    Schema::new(vec![("a0", Int), ("a1", Str)]).unwrap()
}

fn cfg() -> HistGenConfig {
    HistGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 16,
            int_range: 8,
            str_pool: 4,
        },
        horizon: 40,
        max_periods: 3,
    }
}

fn arb_hstate() -> impl Strategy<Value = HistoricalState> {
    any::<u64>().prop_map(|seed| {
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        random_historical_state(&mut rng, &fixed_schema(), &cfg())
    })
}

fn arb_right_hstate() -> impl Strategy<Value = HistoricalState> {
    any::<u64>().prop_map(|seed| {
        use txtime_snapshot::DomainType::*;
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        let schema = Schema::new(vec![("b0", Int)]).unwrap();
        let c = HistGenConfig {
            values: GenConfig {
                arity: 1,
                cardinality: 8,
                int_range: 8,
                str_pool: 4,
            },
            ..cfg()
        };
        random_historical_state(&mut rng, &schema, &c)
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    any::<u64>().prop_map(|seed| {
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        let c = GenConfig {
            int_range: 8,
            str_pool: 4,
            ..GenConfig::default()
        };
        generate::random_predicate(&mut rng, &fixed_schema(), &c, 2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn union_timeslice_correspondence(a in arb_hstate(), b in arb_hstate(), c in 0u32..45) {
        let u = a.hunion(&b).unwrap();
        prop_assert_eq!(u.timeslice(c), a.timeslice(c).union(&b.timeslice(c)).unwrap());
    }

    #[test]
    fn difference_timeslice_correspondence(a in arb_hstate(), b in arb_hstate(), c in 0u32..45) {
        let d = a.hdifference(&b).unwrap();
        prop_assert_eq!(d.timeslice(c), a.timeslice(c).difference(&b.timeslice(c)).unwrap());
    }

    #[test]
    fn product_timeslice_correspondence(a in arb_hstate(), b in arb_right_hstate(), c in 0u32..45) {
        let p = a.hproduct(&b).unwrap();
        prop_assert_eq!(p.timeslice(c), a.timeslice(c).product(&b.timeslice(c)).unwrap());
    }

    #[test]
    fn project_timeslice_correspondence(a in arb_hstate(), c in 0u32..45) {
        let p = a.hproject(&["a0"]).unwrap();
        prop_assert_eq!(p.timeslice(c), a.timeslice(c).project(&["a0"]).unwrap());
    }

    #[test]
    fn select_timeslice_correspondence(a in arb_hstate(), f in arb_predicate(), c in 0u32..45) {
        let s = a.hselect(&f).unwrap();
        prop_assert_eq!(s.timeslice(c), a.timeslice(c).select(&f).unwrap());
    }

    #[test]
    fn hunion_commutative(a in arb_hstate(), b in arb_hstate()) {
        prop_assert_eq!(a.hunion(&b).unwrap(), b.hunion(&a).unwrap());
    }

    #[test]
    fn hunion_associative(a in arb_hstate(), b in arb_hstate(), c in arb_hstate()) {
        prop_assert_eq!(
            a.hunion(&b).unwrap().hunion(&c).unwrap(),
            a.hunion(&b.hunion(&c).unwrap()).unwrap()
        );
    }

    #[test]
    fn hselect_commutes(a in arb_hstate(), f in arb_predicate(), g in arb_predicate()) {
        prop_assert_eq!(
            a.hselect(&f).unwrap().hselect(&g).unwrap(),
            a.hselect(&g).unwrap().hselect(&f).unwrap()
        );
    }

    #[test]
    fn hdifference_with_self_empty(a in arb_hstate()) {
        prop_assert!(a.hdifference(&a).unwrap().is_empty());
    }

    #[test]
    fn delta_identity(a in arb_hstate()) {
        prop_assert_eq!(
            a.delta(&TemporalPred::True, &TemporalExpr::ValidTime).unwrap(),
            a
        );
    }

    #[test]
    fn delta_clip_matches_timeslice(a in arb_hstate(), c in 0u32..45) {
        // δ with "valid at c" then clipping to {c} agrees with the
        // timeslice at c.
        let clip = TemporalExpr::intersect(
            TemporalExpr::ValidTime,
            TemporalExpr::constant(TemporalElement::instant(c)),
        );
        let d = a.delta(&TemporalPred::valid_at(c), &clip).unwrap();
        prop_assert_eq!(d.timeslice(c), a.timeslice(c));
        // Every surviving tuple is valid exactly at {c}.
        for (_, e) in d.iter() {
            prop_assert_eq!(e, &TemporalElement::instant(c));
        }
    }

    #[test]
    fn coalescing_invariant_is_maintained(a in arb_hstate(), b in arb_hstate()) {
        // After any operation, no tuple has an empty element and all
        // elements are coalesced (canonical form = from_periods of itself).
        let results = vec![
            a.hunion(&b).unwrap(),
            a.hdifference(&b).unwrap(),
            a.hproject(&["a0"]).unwrap(),
        ];
        for r in results {
            for (_, e) in r.iter() {
                prop_assert!(!e.is_empty());
                prop_assert_eq!(
                    e,
                    &TemporalElement::from_periods(e.periods().iter().copied())
                );
            }
        }
    }
}
