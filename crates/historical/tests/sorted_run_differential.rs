//! Differential property tests: the sorted-run historical kernels agree
//! byte-for-byte with the retained `BTreeMap` reference implementation
//! ([`txtime_historical::reference::RefHistorical`]) — values *and*
//! errors — sequentially and across partitioned thread counts, including
//! empty operands and schema-mismatch boundary cases.

use proptest::prelude::*;

use txtime_exec::ExecPool;
use txtime_historical::generate::{random_historical_state, HistGenConfig};
use txtime_historical::reference::RefHistorical;
use txtime_historical::{HistoricalState, TemporalElement, TemporalExpr, TemporalPred};
use txtime_snapshot::generate::GenConfig;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::SeedableRng;
use txtime_snapshot::{DomainType, Predicate, Schema, Tuple, Value};

fn fixed_schema() -> Schema {
    use DomainType::*;
    Schema::new(vec![("a0", Int), ("a1", Str)]).unwrap()
}

fn random(seed: u64, schema: &Schema, cardinality: usize) -> HistoricalState {
    let cfg = HistGenConfig {
        values: GenConfig {
            arity: schema.arity(),
            cardinality,
            int_range: 12,
            str_pool: 6,
        },
        horizon: 40,
        max_periods: 3,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    random_historical_state(&mut rng, schema, &cfg)
}

/// A state over the shared schema; cardinality 0 pins the empty state.
fn arb_state() -> impl Strategy<Value = HistoricalState> {
    (any::<u64>(), 0usize..30)
        .prop_map(|(seed, cardinality)| random(seed, &fixed_schema(), cardinality))
}

/// A right operand that is sometimes union-compatible, sometimes a
/// disjoint product operand, and sometimes an *incompatible* scheme.
fn arb_other() -> impl Strategy<Value = HistoricalState> {
    (any::<u64>(), 0usize..3, 0usize..15).prop_map(|(seed, kind, cardinality)| {
        use DomainType::*;
        let schema = match kind {
            0 => fixed_schema(),
            1 => Schema::new(vec![("b0", Int), ("b1", Str)]).unwrap(),
            _ => Schema::new(vec![("a0", Str), ("a1", Int)]).unwrap(),
        };
        random(seed, &schema, cardinality)
    })
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    any::<u64>().prop_map(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig {
            int_range: 12,
            str_pool: 6,
            ..GenConfig::default()
        };
        txtime_snapshot::generate::random_predicate(&mut rng, &fixed_schema(), &cfg, 2)
    })
}

fn arb_attrs() -> impl Strategy<Value = Vec<&'static str>> {
    (0usize..5).prop_map(|i| match i {
        0 => vec!["a0"],
        1 => vec!["a1"],
        2 => vec!["a1", "a0"],
        3 => vec!["a0", "a1"],
        _ => vec!["ghost"],
    })
}

fn norm(r: txtime_historical::Result<HistoricalState>) -> Result<HistoricalState, String> {
    r.map_err(|e| format!("{e:?}"))
}

fn norm_ref(r: txtime_historical::Result<RefHistorical>) -> Result<HistoricalState, String> {
    r.map(|s| s.to_state()).map_err(|e| format!("{e:?}"))
}

const THREADS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hunion_matches_reference(a in arb_state(), b in arb_other()) {
        let (ra, rb) = (RefHistorical::from_state(&a), RefHistorical::from_state(&b));
        let expected = norm_ref(ra.hunion(&rb));
        prop_assert_eq!(norm(a.hunion(&b)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.hunion_par(&b, &pool)), expected.clone());
        }
    }

    #[test]
    fn hdifference_matches_reference(a in arb_state(), b in arb_other()) {
        let (ra, rb) = (RefHistorical::from_state(&a), RefHistorical::from_state(&b));
        let expected = norm_ref(ra.hdifference(&rb));
        prop_assert_eq!(norm(a.hdifference(&b)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.hdifference_par(&b, &pool)), expected.clone());
        }
    }

    #[test]
    fn hproduct_matches_reference(a in arb_state(), b in arb_other()) {
        let (ra, rb) = (RefHistorical::from_state(&a), RefHistorical::from_state(&b));
        let expected = norm_ref(ra.hproduct(&rb));
        prop_assert_eq!(norm(a.hproduct(&b)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.hproduct_par(&b, &pool)), expected.clone());
        }
    }

    #[test]
    fn hproject_matches_reference(a in arb_state(), attrs in arb_attrs()) {
        let ra = RefHistorical::from_state(&a);
        let expected = norm_ref(ra.hproject(&attrs));
        prop_assert_eq!(norm(a.hproject(&attrs)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.hproject_par(&attrs, &pool)), expected.clone());
        }
    }

    #[test]
    fn hselect_matches_reference(a in arb_state(), pred in arb_predicate()) {
        let ra = RefHistorical::from_state(&a);
        let expected = norm_ref(ra.hselect(&pred));
        prop_assert_eq!(norm(a.hselect(&pred)), expected.clone());
        for threads in THREADS {
            let pool = ExecPool::new(threads);
            prop_assert_eq!(norm(a.hselect_par(&pred, &pool)), expected.clone());
        }
        let ghost = Predicate::eq_const("ghost", Value::Int(0));
        prop_assert_eq!(norm(a.hselect(&ghost)), norm_ref(ra.hselect(&ghost)));
    }

    #[test]
    fn delta_matches_reference(a in arb_state(), c in 0u32..45, lo in 0u32..40, len in 1u32..10) {
        let ra = RefHistorical::from_state(&a);
        let window = TemporalElement::period(lo, lo + len);
        let cases = [
            (TemporalPred::True, TemporalExpr::ValidTime),
            (TemporalPred::valid_at(c), TemporalExpr::ValidTime),
            (
                TemporalPred::True,
                TemporalExpr::intersect(
                    TemporalExpr::ValidTime,
                    TemporalExpr::constant(window.clone()),
                ),
            ),
            (TemporalPred::False, TemporalExpr::constant(window)),
        ];
        for (g, v) in &cases {
            prop_assert_eq!(norm(a.delta(g, v)), norm_ref(ra.delta(g, v)));
        }
    }

    #[test]
    fn apply_delta_matches_reference(
        a in arb_state(),
        b in arb_state(),
        c in arb_state(),
    ) {
        // Removals and upserts drawn from real states exercise present
        // and absent tuples, in unsorted order.
        let mut removed: Vec<Tuple> = b.iter().map(|(t, _)| t.clone()).collect();
        removed.extend(a.iter().take(3).map(|(t, _)| t.clone()));
        let mut upserted: Vec<(Tuple, TemporalElement)> = c
            .iter()
            .map(|(t, e)| (t.clone(), e.clone()))
            .collect();
        upserted.reverse();
        let mut prod = a.clone();
        let mut reference = RefHistorical::from_state(&a);
        prod.apply_delta(&removed, &upserted).unwrap();
        reference.apply_delta(&removed, &upserted).unwrap();
        prop_assert_eq!(reference.to_state(), prod);
    }
}
