//! The temporal-predicate domain 𝓖 used by δ_{G,V}.

use std::fmt;

use crate::element::TemporalElement;
use crate::texpr::TemporalExpr;

/// A boolean expression over temporal expressions — the paper's domain 𝓖
/// of "boolean expressions of elements from the domain 𝓥, the relational
/// operators, and the logical operators".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TemporalPred {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// The two expressions denote the same chronon set.
    Equals(TemporalExpr, TemporalExpr),
    /// The left set is a subset of the right.
    Subset(TemporalExpr, TemporalExpr),
    /// The two sets share at least one chronon.
    Overlaps(TemporalExpr, TemporalExpr),
    /// Every chronon of the left set precedes every chronon of the right.
    Precedes(TemporalExpr, TemporalExpr),
    /// Conjunction.
    And(Box<TemporalPred>, Box<TemporalPred>),
    /// Disjunction.
    Or(Box<TemporalPred>, Box<TemporalPred>),
    /// Negation.
    Not(Box<TemporalPred>),
}

impl TemporalPred {
    /// `a = b`
    pub fn equals(a: TemporalExpr, b: TemporalExpr) -> TemporalPred {
        TemporalPred::Equals(a, b)
    }

    /// `a ⊆ b`
    pub fn subset(a: TemporalExpr, b: TemporalExpr) -> TemporalPred {
        TemporalPred::Subset(a, b)
    }

    /// `a overlaps b`
    pub fn overlaps(a: TemporalExpr, b: TemporalExpr) -> TemporalPred {
        TemporalPred::Overlaps(a, b)
    }

    /// `a precedes b`
    pub fn precedes(a: TemporalExpr, b: TemporalExpr) -> TemporalPred {
        TemporalPred::Precedes(a, b)
    }

    /// `self ∧ other`
    pub fn and(self, other: TemporalPred) -> TemporalPred {
        TemporalPred::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`
    pub fn or(self, other: TemporalPred) -> TemporalPred {
        TemporalPred::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors the paper's ¬, returns Self
    pub fn not(self) -> TemporalPred {
        TemporalPred::Not(Box::new(self))
    }

    /// Shorthand: the tuple was valid at chronon `c`.
    pub fn valid_at(c: crate::chronon::Chronon) -> TemporalPred {
        TemporalPred::overlaps(
            TemporalExpr::ValidTime,
            TemporalExpr::constant(TemporalElement::instant(c)),
        )
    }

    /// Evaluates against a tuple's valid time.
    pub fn eval(&self, valid: &TemporalElement) -> bool {
        match self {
            TemporalPred::True => true,
            TemporalPred::False => false,
            TemporalPred::Equals(a, b) => a.eval(valid) == b.eval(valid),
            TemporalPred::Subset(a, b) => a.eval(valid).is_subset(&b.eval(valid)),
            TemporalPred::Overlaps(a, b) => a.eval(valid).overlaps(&b.eval(valid)),
            TemporalPred::Precedes(a, b) => a.eval(valid).precedes(&b.eval(valid)),
            TemporalPred::And(a, b) => a.eval(valid) && b.eval(valid),
            TemporalPred::Or(a, b) => a.eval(valid) || b.eval(valid),
            TemporalPred::Not(a) => !a.eval(valid),
        }
    }
}

impl fmt::Display for TemporalPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalPred::True => write!(f, "true"),
            TemporalPred::False => write!(f, "false"),
            TemporalPred::Equals(a, b) => write!(f, "{a} = {b}"),
            TemporalPred::Subset(a, b) => write!(f, "{a} subset {b}"),
            TemporalPred::Overlaps(a, b) => write!(f, "{a} overlaps {b}"),
            TemporalPred::Precedes(a, b) => write!(f, "{a} precedes {b}"),
            TemporalPred::And(a, b) => write!(f, "({a} and {b})"),
            TemporalPred::Or(a, b) => write!(f, "({a} or {b})"),
            TemporalPred::Not(a) => write!(f, "(not {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> TemporalElement {
        TemporalElement::period(5, 10)
    }

    fn cexpr(s: u32, e: u32) -> TemporalExpr {
        TemporalExpr::constant(TemporalElement::period(s, e))
    }

    #[test]
    fn comparisons() {
        assert!(TemporalPred::equals(TemporalExpr::ValidTime, cexpr(5, 10)).eval(&valid()));
        assert!(TemporalPred::subset(TemporalExpr::ValidTime, cexpr(0, 20)).eval(&valid()));
        assert!(!TemporalPred::subset(TemporalExpr::ValidTime, cexpr(0, 7)).eval(&valid()));
        assert!(TemporalPred::overlaps(TemporalExpr::ValidTime, cexpr(9, 20)).eval(&valid()));
        assert!(!TemporalPred::overlaps(TemporalExpr::ValidTime, cexpr(10, 20)).eval(&valid()));
        assert!(TemporalPred::precedes(TemporalExpr::ValidTime, cexpr(10, 20)).eval(&valid()));
        assert!(!TemporalPred::precedes(cexpr(10, 20), TemporalExpr::ValidTime).eval(&valid()));
    }

    #[test]
    fn connectives() {
        let p = TemporalPred::valid_at(5).and(TemporalPred::valid_at(9));
        assert!(p.eval(&valid()));
        let q = TemporalPred::valid_at(10).or(TemporalPred::valid_at(9));
        assert!(q.eval(&valid()));
        assert!(!q.not().eval(&valid()));
        assert!(TemporalPred::True.eval(&valid()));
        assert!(!TemporalPred::False.eval(&valid()));
    }

    #[test]
    fn valid_at_boundary_semantics() {
        assert!(TemporalPred::valid_at(5).eval(&valid()));
        assert!(TemporalPred::valid_at(9).eval(&valid()));
        assert!(!TemporalPred::valid_at(10).eval(&valid()));
        assert!(!TemporalPred::valid_at(4).eval(&valid()));
    }

    #[test]
    fn display_form() {
        let p = TemporalPred::precedes(TemporalExpr::ValidTime, cexpr(0, 1));
        assert_eq!(p.to_string(), "valid precedes {[0, 1)}");
    }
}
