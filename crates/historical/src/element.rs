//! Temporal elements: finite unions of disjoint periods.

use std::fmt;

use crate::chronon::Chronon;
use crate::period::Period;

/// A temporal element: a set of chronons represented as a sorted list of
/// disjoint, non-adjacent (maximally coalesced) periods.
///
/// Temporal elements are closed under union, intersection, difference, and
/// complement, which is what lets the historical operators manipulate
/// valid time set-theoretically. The canonical (coalesced) form makes
/// structural equality coincide with set equality.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TemporalElement {
    periods: Vec<Period>,
}

impl TemporalElement {
    /// The empty set of chronons.
    pub fn empty() -> TemporalElement {
        TemporalElement::default()
    }

    /// The single period `[start, end)`; panics if `start >= end`
    /// (constant-building convenience).
    pub fn period(start: Chronon, end: Chronon) -> TemporalElement {
        TemporalElement {
            periods: vec![Period::new(start, end).expect("non-empty period")],
        }
    }

    /// The singleton `{c}`.
    pub fn instant(c: Chronon) -> TemporalElement {
        TemporalElement {
            periods: vec![Period::instant(c)],
        }
    }

    /// `[start, FOREVER)`.
    pub fn from_chronon(start: Chronon) -> TemporalElement {
        TemporalElement {
            periods: vec![Period::from(start)],
        }
    }

    /// Builds an element from arbitrary periods, coalescing as needed.
    pub fn from_periods(periods: impl IntoIterator<Item = Period>) -> TemporalElement {
        let mut ps: Vec<Period> = periods.into_iter().collect();
        ps.sort();
        let mut out: Vec<Period> = Vec::with_capacity(ps.len());
        for p in ps {
            match out.last_mut() {
                Some(last) => {
                    if let Some(merged) = last.merge(p) {
                        *last = merged;
                    } else {
                        out.push(p);
                    }
                }
                None => out.push(p),
            }
        }
        TemporalElement { periods: out }
    }

    /// The coalesced periods, sorted ascending.
    pub fn periods(&self) -> &[Period] {
        &self.periods
    }

    /// Whether the element contains no chronon.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// Total number of chronons covered.
    pub fn duration(&self) -> u64 {
        self.periods.iter().map(|p| p.duration()).sum()
    }

    /// Whether chronon `c` is in the element (binary search).
    pub fn contains(&self, c: Chronon) -> bool {
        self.periods
            .binary_search_by(|p| {
                if p.end() <= c {
                    std::cmp::Ordering::Less
                } else if p.start() > c {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The earliest chronon, if non-empty.
    pub fn first(&self) -> Option<Chronon> {
        self.periods.first().map(|p| p.start())
    }

    /// The latest chronon, if non-empty.
    pub fn last(&self) -> Option<Chronon> {
        self.periods.last().map(|p| p.end() - 1)
    }

    /// Set union.
    pub fn union(&self, other: &TemporalElement) -> TemporalElement {
        TemporalElement::from_periods(self.periods.iter().chain(other.periods.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &TemporalElement) -> TemporalElement {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.periods.len() && j < other.periods.len() {
            let (a, b) = (self.periods[i], other.periods[j]);
            if let Some(p) = a.intersect(b) {
                out.push(p);
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        // Intersection of coalesced inputs is already disjoint and sorted,
        // but adjacent outputs can appear when inputs share boundaries, so
        // normalize anyway.
        TemporalElement::from_periods(out)
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &TemporalElement) -> TemporalElement {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in &self.periods {
            let mut start = a.start();
            // Skip other-periods entirely before this one.
            while j < other.periods.len() && other.periods[j].end() <= start {
                j += 1;
            }
            let mut k = j;
            while k < other.periods.len() && other.periods[k].start() < a.end() {
                let b = other.periods[k];
                if b.start() > start {
                    out.push(Period::new(start, b.start()).expect("non-empty gap"));
                }
                start = start.max(b.end());
                if start >= a.end() {
                    break;
                }
                k += 1;
            }
            if start < a.end() {
                out.push(Period::new(start, a.end()).expect("non-empty tail"));
            }
        }
        TemporalElement { periods: out }
    }

    /// Complement within the whole line `[0, FOREVER)`.
    pub fn complement(&self) -> TemporalElement {
        TemporalElement::from_chronon(0).difference(self)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &TemporalElement) -> bool {
        self.difference(other).is_empty()
    }

    /// Whether the two elements share at least one chronon.
    pub fn overlaps(&self, other: &TemporalElement) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Whether every chronon of `self` precedes every chronon of `other`
    /// (vacuously true if either is empty).
    pub fn precedes(&self, other: &TemporalElement) -> bool {
        match (self.last(), other.first()) {
            (Some(l), Some(f)) => l < f,
            _ => true,
        }
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<TemporalElement>() + self.periods.len() * std::mem::size_of::<Period>()
    }

    /// Iterates the chronons in the element. Intended for tests on small
    /// elements; the count can be astronomically large in general.
    pub fn chronons(&self) -> impl Iterator<Item = Chronon> + '_ {
        self.periods.iter().flat_map(|p| p.start()..p.end())
    }
}

impl fmt::Display for TemporalElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.periods.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (i, p) in self.periods.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl From<Period> for TemporalElement {
    fn from(p: Period) -> TemporalElement {
        TemporalElement { periods: vec![p] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(pairs: &[(Chronon, Chronon)]) -> TemporalElement {
        TemporalElement::from_periods(pairs.iter().map(|&(s, e)| Period::new(s, e).unwrap()))
    }

    #[test]
    fn construction_coalesces() {
        assert_eq!(el(&[(0, 5), (5, 9)]), el(&[(0, 9)]));
        assert_eq!(el(&[(0, 5), (3, 9)]), el(&[(0, 9)]));
        assert_eq!(el(&[(5, 9), (0, 2)]).periods().len(), 2);
    }

    #[test]
    fn containment() {
        let e = el(&[(0, 5), (10, 15)]);
        assert!(e.contains(0));
        assert!(e.contains(4));
        assert!(!e.contains(5));
        assert!(e.contains(12));
        assert!(!e.contains(20));
        assert!(!TemporalElement::empty().contains(0));
    }

    #[test]
    fn first_and_last() {
        let e = el(&[(3, 5), (10, 15)]);
        assert_eq!(e.first(), Some(3));
        assert_eq!(e.last(), Some(14));
        assert_eq!(TemporalElement::empty().first(), None);
    }

    #[test]
    fn union_merges() {
        assert_eq!(el(&[(0, 5)]).union(&el(&[(3, 9)])), el(&[(0, 9)]));
        assert_eq!(el(&[(0, 2)]).union(&el(&[(5, 7)])).periods().len(), 2);
    }

    #[test]
    fn intersection_cases() {
        assert_eq!(el(&[(0, 10)]).intersect(&el(&[(5, 15)])), el(&[(5, 10)]));
        assert_eq!(
            el(&[(0, 5), (10, 20)]).intersect(&el(&[(3, 12)])),
            el(&[(3, 5), (10, 12)])
        );
        assert!(el(&[(0, 3)]).intersect(&el(&[(5, 7)])).is_empty());
    }

    #[test]
    fn difference_cases() {
        assert_eq!(
            el(&[(0, 10)]).difference(&el(&[(3, 5)])),
            el(&[(0, 3), (5, 10)])
        );
        assert_eq!(
            el(&[(0, 10)]).difference(&el(&[(0, 10)])),
            TemporalElement::empty()
        );
        assert_eq!(el(&[(0, 10)]).difference(&el(&[(10, 20)])), el(&[(0, 10)]));
        assert_eq!(
            el(&[(0, 4), (6, 9)]).difference(&el(&[(2, 7)])),
            el(&[(0, 2), (7, 9)])
        );
    }

    #[test]
    fn complement_round_trip() {
        let e = el(&[(3, 5), (10, 15)]);
        assert_eq!(e.complement().complement(), e);
        assert!(e.intersect(&e.complement()).is_empty());
        assert_eq!(e.union(&e.complement()), TemporalElement::from_chronon(0));
    }

    #[test]
    fn subset_and_overlap() {
        assert!(el(&[(2, 4)]).is_subset(&el(&[(0, 10)])));
        assert!(!el(&[(2, 12)]).is_subset(&el(&[(0, 10)])));
        assert!(el(&[(2, 4)]).overlaps(&el(&[(3, 9)])));
        assert!(!el(&[(2, 4)]).overlaps(&el(&[(4, 9)])));
        assert!(TemporalElement::empty().is_subset(&el(&[(0, 1)])));
    }

    #[test]
    fn precedes_semantics() {
        assert!(el(&[(0, 5)]).precedes(&el(&[(5, 9)])));
        assert!(!el(&[(0, 6)]).precedes(&el(&[(5, 9)])));
        assert!(TemporalElement::empty().precedes(&el(&[(0, 1)])));
    }

    #[test]
    fn duration_sums_periods() {
        assert_eq!(el(&[(0, 5), (10, 12)]).duration(), 7);
        assert_eq!(TemporalElement::empty().duration(), 0);
    }

    #[test]
    fn display_form() {
        assert_eq!(el(&[(0, 5), (7, 9)]).to_string(), "{[0, 5) ∪ [7, 9)}");
        assert_eq!(TemporalElement::empty().to_string(), "{}");
    }

    #[test]
    fn chronon_iteration() {
        let cs: Vec<_> = el(&[(0, 2), (5, 7)]).chronons().collect();
        assert_eq!(cs, vec![0, 1, 5, 6]);
    }
}
