//! Random generation of historical states for tests and benchmarks.

use txtime_snapshot::rng::Rng;

use txtime_snapshot::generate::{random_tuple, GenConfig};
use txtime_snapshot::Schema;

use crate::chronon::Chronon;
use crate::element::TemporalElement;
use crate::period::Period;
use crate::state::HistoricalState;

/// Parameters for random historical-state generation.
#[derive(Debug, Clone)]
pub struct HistGenConfig {
    /// Value-generation parameters.
    pub values: GenConfig,
    /// Upper bound (exclusive) for generated chronons.
    pub horizon: Chronon,
    /// Maximum number of periods per tuple's temporal element.
    pub max_periods: usize,
}

impl Default for HistGenConfig {
    fn default() -> HistGenConfig {
        HistGenConfig {
            values: GenConfig::default(),
            horizon: 100,
            max_periods: 3,
        }
    }
}

/// Generates a random (possibly multi-period) temporal element below the
/// configured horizon.
pub fn random_element(rng: &mut impl Rng, cfg: &HistGenConfig) -> TemporalElement {
    let n = rng.gen_range(1..=cfg.max_periods);
    TemporalElement::from_periods((0..n).map(|_| {
        let start = rng.gen_range(0..cfg.horizon - 1);
        let end = rng.gen_range(start + 1..=cfg.horizon);
        Period::new(start, end).expect("start < end by construction")
    }))
}

/// Generates a random historical state over `schema`.
pub fn random_historical_state(
    rng: &mut impl Rng,
    schema: &Schema,
    cfg: &HistGenConfig,
) -> HistoricalState {
    HistoricalState::new(
        schema.clone(),
        (0..cfg.values.cardinality).map(|_| {
            (
                random_tuple(rng, schema, &cfg.values),
                random_element(rng, cfg),
            )
        }),
    )
    .expect("generated entries are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::generate::random_schema;
    use txtime_snapshot::rng::rngs::StdRng;
    use txtime_snapshot::rng::SeedableRng;

    #[test]
    fn generated_states_respect_horizon() {
        let cfg = HistGenConfig::default();
        let mut rng = StdRng::seed_from_u64(11);
        let schema = random_schema(&mut rng, 2);
        let s = random_historical_state(&mut rng, &schema, &cfg);
        for (_, e) in s.iter() {
            assert!(e.last().unwrap() < cfg.horizon);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = HistGenConfig::default();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let schema = random_schema(&mut a, 2);
        let _ = random_schema(&mut b, 2);
        assert_eq!(
            random_historical_state(&mut a, &schema, &cfg),
            random_historical_state(&mut b, &schema, &cfg)
        );
    }
}
