#![warn(missing_docs)]

//! An historical algebra supporting valid time.
//!
//! Section 4 of the paper shows that its transaction-time extension
//! "applies to any historical algebra"; this crate provides the historical
//! algebra we plug in. It is a *tuple-timestamped* algebra in which every
//! tuple of an [`HistoricalState`] carries a [`TemporalElement`] — a
//! finite union of disjoint [`Period`]s of [`Chronon`]s — recording when
//! the tuple's fact was valid in the modeled reality.
//!
//! The operators mirror the snapshot algebra (∪̂, −̂, ×̂, π̂, σ̂; paper §4)
//! plus the new valid-time operator **δ_{G,V}**, which "performs
//! functions, similar to those of the selection and projection operators
//! in the snapshot algebra, on the valid-time components of historical
//! tuples": `G` (a [`TemporalPred`] from the domain 𝓖) selects tuples by
//! their valid time, and `V` (a [`TemporalExpr`] from the domain 𝓥)
//! rewrites each surviving tuple's valid time.
//!
//! # Example
//!
//! ```
//! use txtime_historical::{HistoricalState, Period, TemporalElement, TemporalExpr, TemporalPred};
//! use txtime_snapshot::{Schema, DomainType, Tuple, Value};
//!
//! let schema = Schema::new(vec![("name", DomainType::Str)]).unwrap();
//! let state = HistoricalState::new(schema, vec![
//!     (Tuple::new(vec![Value::str("alice")]), TemporalElement::period(0, 10)),
//!     (Tuple::new(vec![Value::str("bob")]), TemporalElement::period(20, 30)),
//! ]).unwrap();
//!
//! // Keep tuples valid during [0,15), clipping their valid time to it.
//! let window = TemporalElement::period(0, 15);
//! let clipped = state.delta(
//!     &TemporalPred::overlaps(TemporalExpr::ValidTime, TemporalExpr::constant(window.clone())),
//!     &TemporalExpr::intersect(TemporalExpr::ValidTime, TemporalExpr::constant(window)),
//! ).unwrap();
//! assert_eq!(clipped.len(), 1);
//! ```

pub mod chronon;
pub mod element;
pub mod error;
pub mod generate;
pub mod ops;
pub mod period;
pub mod reference;
pub mod state;
pub mod texpr;
pub mod tpred;

pub use chronon::{Chronon, FOREVER};
pub use element::TemporalElement;
pub use error::HistoricalError;
pub use period::Period;
pub use state::{Entry, HistoricalState};
pub use texpr::TemporalExpr;
pub use tpred::TemporalPred;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HistoricalError>;
