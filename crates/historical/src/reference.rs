//! A retained `BTreeMap`-backed reference implementation of the
//! historical algebra.
//!
//! [`RefHistorical`] preserves the pre-sorted-run formulation of every
//! historical operator (tree-backed states, per-entry map operations).
//! It exists so differential tests and benchmarks can check the
//! merge-kernel implementations in `crate::ops` byte-for-byte against an
//! independently-derived result — including error selection, which goes
//! through the same schema validation in the same order.

use std::collections::BTreeMap;

use txtime_snapshot::{Predicate, Tuple};

use crate::element::TemporalElement;
use crate::state::HistoricalState;
use crate::texpr::TemporalExpr;
use crate::tpred::TemporalPred;
use crate::Result;

/// A historical state held as a `BTreeMap`, with the map-based operator
/// algorithms the sorted-run kernels replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefHistorical {
    schema: txtime_snapshot::Schema,
    entries: BTreeMap<Tuple, TemporalElement>,
}

impl RefHistorical {
    /// Converts a production state into the reference representation.
    pub fn from_state(state: &HistoricalState) -> RefHistorical {
        RefHistorical {
            schema: state.schema().clone(),
            entries: state.entries(),
        }
    }

    /// Converts back into the production representation.
    pub fn to_state(&self) -> HistoricalState {
        HistoricalState::from_checked(self.schema.clone(), self.entries.clone())
    }

    /// The state's scheme.
    pub fn schema(&self) -> &txtime_snapshot::Schema {
        &self.schema
    }

    /// Number of distinct value tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Map-based `∪̂`: per-entry insert-or-union into a copy of the left
    /// map.
    pub fn hunion(&self, other: &RefHistorical) -> Result<RefHistorical> {
        self.schema.require_union_compatible(&other.schema)?;
        let mut entries = self.entries.clone();
        for (t, e) in &other.entries {
            match entries.get_mut(t) {
                Some(existing) => *existing = existing.union(e),
                None => {
                    entries.insert(t.clone(), e.clone());
                }
            }
        }
        Ok(RefHistorical {
            schema: self.schema.clone(),
            entries,
        })
    }

    /// Map-based `−̂`: per-entry lookup and element subtraction.
    pub fn hdifference(&self, other: &RefHistorical) -> Result<RefHistorical> {
        self.schema.require_union_compatible(&other.schema)?;
        let mut entries = BTreeMap::new();
        for (t, e) in &self.entries {
            let remaining = match other.entries.get(t) {
                Some(oe) => e.difference(oe),
                None => e.clone(),
            };
            if !remaining.is_empty() {
                entries.insert(t.clone(), remaining);
            }
        }
        Ok(RefHistorical {
            schema: self.schema.clone(),
            entries,
        })
    }

    /// Map-based `×̂`: per-pair insert with element intersection.
    pub fn hproduct(&self, other: &RefHistorical) -> Result<RefHistorical> {
        let schema = self.schema.product(&other.schema)?;
        let mut entries = BTreeMap::new();
        for (l, le) in &self.entries {
            for (r, re) in &other.entries {
                let e = le.intersect(re);
                if !e.is_empty() {
                    entries.insert(l.concat(r), e);
                }
            }
        }
        Ok(RefHistorical { schema, entries })
    }

    /// Map-based `π̂`: per-entry projected insert-or-union.
    pub fn hproject(&self, attrs: &[impl AsRef<str>]) -> Result<RefHistorical> {
        let (schema, indices) = self.schema.project(attrs)?;
        let mut entries: BTreeMap<Tuple, TemporalElement> = BTreeMap::new();
        for (t, e) in &self.entries {
            let p = t.project(&indices);
            match entries.get_mut(&p) {
                Some(existing) => *existing = existing.union(e),
                None => {
                    entries.insert(p, e.clone());
                }
            }
        }
        Ok(RefHistorical { schema, entries })
    }

    /// Map-based `σ̂`: filter into a fresh map.
    pub fn hselect(&self, predicate: &Predicate) -> Result<RefHistorical> {
        let compiled = predicate.compile(&self.schema)?;
        let entries = self
            .entries
            .iter()
            .filter(|(t, _)| compiled.eval(t))
            .map(|(t, e)| (t.clone(), e.clone()))
            .collect();
        Ok(RefHistorical {
            schema: self.schema.clone(),
            entries,
        })
    }

    /// Map-based `δ_{G,V}`.
    pub fn delta(&self, g: &TemporalPred, v: &TemporalExpr) -> Result<RefHistorical> {
        let mut entries = BTreeMap::new();
        for (t, e) in &self.entries {
            if g.eval(e) {
                let ne = v.eval(e);
                if !ne.is_empty() {
                    entries.insert(t.clone(), ne);
                }
            }
        }
        Ok(RefHistorical {
            schema: self.schema.clone(),
            entries,
        })
    }

    /// Per-entry delta replay: remove each removed tuple, then insert
    /// (replacing) each upserted entry — the map formulation of
    /// [`HistoricalState::apply_delta`].
    pub fn apply_delta(
        &mut self,
        removed: &[Tuple],
        upserted: &[(Tuple, TemporalElement)],
    ) -> Result<()> {
        for (t, e) in upserted {
            t.check(&self.schema)?;
            if e.is_empty() {
                return Err(crate::HistoricalError::EmptyValidTime);
            }
        }
        for t in removed {
            self.entries.remove(t);
        }
        for (t, e) in upserted {
            self.entries.insert(t.clone(), e.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, Value};

    fn st(entries: &[(&str, u32, u32)]) -> HistoricalState {
        let schema = Schema::new(vec![("x", DomainType::Str)]).unwrap();
        HistoricalState::new(
            schema,
            entries.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::str(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_content() {
        let a = st(&[("a", 0, 5), ("b", 2, 8)]);
        assert_eq!(RefHistorical::from_state(&a).to_state(), a);
    }

    #[test]
    fn reference_ops_match_production_on_a_smoke_case() {
        let a = st(&[("a", 0, 5), ("b", 2, 8)]);
        let b = st(&[("a", 3, 9), ("c", 1, 4)]);
        let (ra, rb) = (RefHistorical::from_state(&a), RefHistorical::from_state(&b));
        assert_eq!(ra.hunion(&rb).unwrap().to_state(), a.hunion(&b).unwrap());
        assert_eq!(
            ra.hdifference(&rb).unwrap().to_state(),
            a.hdifference(&b).unwrap()
        );
        assert_eq!(
            ra.hproject(&["x"]).unwrap().to_state(),
            a.hproject(&["x"]).unwrap()
        );
        let pred = Predicate::eq_const("x", Value::str("a"));
        assert_eq!(
            ra.hselect(&pred).unwrap().to_state(),
            a.hselect(&pred).unwrap()
        );
        assert_eq!(
            ra.delta(&TemporalPred::valid_at(3), &TemporalExpr::ValidTime)
                .unwrap()
                .to_state(),
            a.delta(&TemporalPred::valid_at(3), &TemporalExpr::ValidTime)
                .unwrap()
        );
    }

    #[test]
    fn reference_apply_delta_matches_production() {
        let mut prod = st(&[("a", 0, 5), ("b", 2, 8)]);
        let mut reference = RefHistorical::from_state(&prod);
        let removed = vec![Tuple::new(vec![Value::str("b")])];
        let upserted = vec![
            (
                Tuple::new(vec![Value::str("a")]),
                TemporalElement::period(0, 9),
            ),
            (
                Tuple::new(vec![Value::str("z")]),
                TemporalElement::period(1, 2),
            ),
        ];
        prod.apply_delta(&removed, &upserted).unwrap();
        reference.apply_delta(&removed, &upserted).unwrap();
        assert_eq!(reference.to_state(), prod);
    }
}
