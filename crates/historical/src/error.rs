//! Errors raised by the historical algebra.

use std::fmt;

use txtime_snapshot::SnapshotError;

use crate::chronon::Chronon;

/// An error from constructing or operating on historical states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoricalError {
    /// A period was constructed with `start >= end`.
    EmptyPeriod {
        /// Attempted inclusive lower bound.
        start: Chronon,
        /// Attempted exclusive upper bound.
        end: Chronon,
    },
    /// A tuple was inserted with an empty valid-time element; historical
    /// states only record tuples that were valid at some time.
    EmptyValidTime,
    /// An error from the underlying value-level relational machinery
    /// (scheme mismatch, unknown attribute, …).
    Snapshot(SnapshotError),
}

impl fmt::Display for HistoricalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoricalError::EmptyPeriod { start, end } => {
                write!(f, "period [{start}, {end}) is empty")
            }
            HistoricalError::EmptyValidTime => {
                write!(f, "historical tuples must have a non-empty valid time")
            }
            HistoricalError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HistoricalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HistoricalError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for HistoricalError {
    fn from(e: SnapshotError) -> HistoricalError {
        HistoricalError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_errors_convert() {
        let e: HistoricalError = SnapshotError::EmptyScheme.into();
        assert!(matches!(e, HistoricalError::Snapshot(_)));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn display_period_error() {
        let e = HistoricalError::EmptyPeriod { start: 5, end: 5 };
        assert!(e.to_string().contains("[5, 5)"));
    }
}
