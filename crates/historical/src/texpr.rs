//! The temporal-expression domain 𝓥 used by δ_{G,V}.

use std::fmt;

use crate::element::TemporalElement;

/// A temporal expression, evaluated per historical tuple against that
/// tuple's valid-time element.
///
/// This is the domain 𝓥 of the paper's §4 syntax. `ValidTime` denotes the
/// tuple's own valid time; the set operators combine temporal elements;
/// `First`/`Last` extract the earliest/latest chronon as a singleton
/// element (empty if the operand is empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TemporalExpr {
    /// The tuple's valid-time element.
    ValidTime,
    /// A constant temporal element.
    Const(TemporalElement),
    /// Set union of two temporal expressions.
    Union(Box<TemporalExpr>, Box<TemporalExpr>),
    /// Set intersection of two temporal expressions.
    Intersect(Box<TemporalExpr>, Box<TemporalExpr>),
    /// Set difference of two temporal expressions.
    Difference(Box<TemporalExpr>, Box<TemporalExpr>),
    /// The earliest chronon of the operand, as a singleton element.
    First(Box<TemporalExpr>),
    /// The latest chronon of the operand, as a singleton element.
    Last(Box<TemporalExpr>),
}

impl TemporalExpr {
    /// Convenience constructor for constants.
    pub fn constant(e: TemporalElement) -> TemporalExpr {
        TemporalExpr::Const(e)
    }

    /// `a ∪ b`
    pub fn union(a: TemporalExpr, b: TemporalExpr) -> TemporalExpr {
        TemporalExpr::Union(Box::new(a), Box::new(b))
    }

    /// `a ∩ b`
    pub fn intersect(a: TemporalExpr, b: TemporalExpr) -> TemporalExpr {
        TemporalExpr::Intersect(Box::new(a), Box::new(b))
    }

    /// `a − b`
    pub fn difference(a: TemporalExpr, b: TemporalExpr) -> TemporalExpr {
        TemporalExpr::Difference(Box::new(a), Box::new(b))
    }

    /// `first(a)`
    pub fn first(a: TemporalExpr) -> TemporalExpr {
        TemporalExpr::First(Box::new(a))
    }

    /// `last(a)`
    pub fn last(a: TemporalExpr) -> TemporalExpr {
        TemporalExpr::Last(Box::new(a))
    }

    /// Evaluates against a tuple's valid time.
    pub fn eval(&self, valid: &TemporalElement) -> TemporalElement {
        match self {
            TemporalExpr::ValidTime => valid.clone(),
            TemporalExpr::Const(e) => e.clone(),
            TemporalExpr::Union(a, b) => a.eval(valid).union(&b.eval(valid)),
            TemporalExpr::Intersect(a, b) => a.eval(valid).intersect(&b.eval(valid)),
            TemporalExpr::Difference(a, b) => a.eval(valid).difference(&b.eval(valid)),
            TemporalExpr::First(a) => match a.eval(valid).first() {
                Some(c) => TemporalElement::instant(c),
                None => TemporalElement::empty(),
            },
            TemporalExpr::Last(a) => match a.eval(valid).last() {
                Some(c) => TemporalElement::instant(c),
                None => TemporalElement::empty(),
            },
        }
    }
}

impl fmt::Display for TemporalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalExpr::ValidTime => write!(f, "valid"),
            TemporalExpr::Const(e) => write!(f, "{e}"),
            TemporalExpr::Union(a, b) => write!(f, "({a} union {b})"),
            TemporalExpr::Intersect(a, b) => write!(f, "({a} intersect {b})"),
            TemporalExpr::Difference(a, b) => write!(f, "({a} minus {b})"),
            TemporalExpr::First(a) => write!(f, "first({a})"),
            TemporalExpr::Last(a) => write!(f, "last({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> TemporalElement {
        TemporalElement::from_periods([
            crate::period::Period::new(0, 5).unwrap(),
            crate::period::Period::new(10, 15).unwrap(),
        ])
    }

    #[test]
    fn valid_time_is_identity() {
        assert_eq!(TemporalExpr::ValidTime.eval(&valid()), valid());
    }

    #[test]
    fn constants_ignore_tuple_time() {
        let c = TemporalElement::period(100, 200);
        assert_eq!(TemporalExpr::constant(c.clone()).eval(&valid()), c);
    }

    #[test]
    fn set_operators() {
        let window = TemporalExpr::constant(TemporalElement::period(3, 12));
        let i = TemporalExpr::intersect(TemporalExpr::ValidTime, window.clone()).eval(&valid());
        assert_eq!(
            i,
            TemporalElement::from_periods([
                crate::period::Period::new(3, 5).unwrap(),
                crate::period::Period::new(10, 12).unwrap(),
            ])
        );
        let u = TemporalExpr::union(TemporalExpr::ValidTime, window.clone()).eval(&valid());
        assert_eq!(u, TemporalElement::period(0, 15));
        let d = TemporalExpr::difference(TemporalExpr::ValidTime, window).eval(&valid());
        assert_eq!(
            d,
            TemporalElement::from_periods([
                crate::period::Period::new(0, 3).unwrap(),
                crate::period::Period::new(12, 15).unwrap(),
            ])
        );
    }

    #[test]
    fn first_and_last() {
        assert_eq!(
            TemporalExpr::first(TemporalExpr::ValidTime).eval(&valid()),
            TemporalElement::instant(0)
        );
        assert_eq!(
            TemporalExpr::last(TemporalExpr::ValidTime).eval(&valid()),
            TemporalElement::instant(14)
        );
        assert!(
            TemporalExpr::first(TemporalExpr::constant(TemporalElement::empty()))
                .eval(&valid())
                .is_empty()
        );
    }

    #[test]
    fn display_form() {
        let e = TemporalExpr::intersect(
            TemporalExpr::ValidTime,
            TemporalExpr::constant(TemporalElement::period(0, 2)),
        );
        assert_eq!(e.to_string(), "(valid intersect {[0, 2)})");
    }
}
