//! Historical states: the semantic domain HISTORICAL STATE.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use txtime_snapshot::{Schema, SnapshotState, StrInterner, Tuple};

use crate::chronon::Chronon;
use crate::element::TemporalElement;
use crate::error::HistoricalError;
use crate::Result;

/// One `(value tuple, valid time)` entry of an historical state.
pub type Entry = (Tuple, TemporalElement);

/// An historical state: a set of value tuples, each timestamped with the
/// temporal element over which its fact was valid.
///
/// This is the semantic domain *HISTORICAL STATE* — "the domain of all
/// valid historical relations as defined in the historical algebra". Two
/// invariants are maintained:
///
/// 1. **Coalescing** — value-equivalent tuples are merged, so each value
///    tuple appears at most once, and its temporal element is maximally
///    coalesced.
/// 2. **Non-emptiness** — no tuple carries an empty temporal element; a
///    fact valid at no time is simply absent.
///
/// The physical representation is a *sorted run*: a flat, reference-
/// counted slice of entries in strictly increasing value-tuple order.
/// The historical operators run as single-pass merge/scan kernels over
/// the run, lookups are binary searches, and — like [`SnapshotState`] —
/// cloning is O(1) with copy-on-write mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HistoricalState {
    schema: Schema,
    run: Arc<Vec<Entry>>,
}

/// Whether `run` is strictly increasing by value tuple.
pub(crate) fn is_strictly_sorted(run: &[Entry]) -> bool {
    run.windows(2).all(|w| w[0].0 < w[1].0)
}

impl HistoricalState {
    /// The empty historical state over `schema`.
    pub fn empty(schema: Schema) -> HistoricalState {
        HistoricalState {
            schema,
            run: Arc::new(Vec::new()),
        }
    }

    /// Builds a state from `(tuple, valid-time)` pairs, validating tuples
    /// against the scheme, rejecting empty valid times, and coalescing
    /// value-equivalent entries.
    pub fn new(
        schema: Schema,
        entries: impl IntoIterator<Item = Entry>,
    ) -> Result<HistoricalState> {
        let mut run = Vec::new();
        for (t, e) in entries {
            t.check(&schema)?;
            if e.is_empty() {
                return Err(HistoricalError::EmptyValidTime);
            }
            run.push((t, e));
        }
        Ok(HistoricalState::from_unsorted_vec(schema, run))
    }

    /// Internal constructor for operator results that are already in
    /// canonical order (strictly sorted by value tuple, non-empty
    /// coalesced elements).
    pub(crate) fn from_sorted_vec(schema: Schema, run: Vec<Entry>) -> HistoricalState {
        debug_assert!(is_strictly_sorted(&run), "run must be strictly sorted");
        debug_assert!(run.iter().all(|(_, e)| !e.is_empty()));
        HistoricalState {
            schema,
            run: Arc::new(run),
        }
    }

    /// Internal constructor for operator results in arbitrary order:
    /// sorts by value tuple (stably, so value-equivalent entries coalesce
    /// in their original order) and unions adjacent duplicates.
    pub(crate) fn from_unsorted_vec(schema: Schema, mut run: Vec<Entry>) -> HistoricalState {
        debug_assert!(run.iter().all(|(_, e)| !e.is_empty()));
        if !is_strictly_sorted(&run) {
            run.sort_by(|a, b| a.0.cmp(&b.0));
            run.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    // Temporal-element union is commutative and
                    // associative, so left-to-right coalescing matches the
                    // map-based construction regardless of grouping.
                    prev.1 = prev.1.union(&next.1);
                    true
                } else {
                    false
                }
            });
        }
        HistoricalState {
            schema,
            run: Arc::new(run),
        }
    }

    /// Bridge constructor from a `BTreeMap` (which iterates in exactly
    /// the canonical order). Retained for the reference implementation
    /// and compatibility call sites.
    pub(crate) fn from_checked(
        schema: Schema,
        tuples: BTreeMap<Tuple, TemporalElement>,
    ) -> HistoricalState {
        debug_assert!(tuples.values().all(|e| !e.is_empty()));
        HistoricalState {
            schema,
            run: Arc::new(tuples.into_iter().collect()),
        }
    }

    /// Internal constructor that adopts an already-shared run — the
    /// zero-copy path for operator results that are one of the operands
    /// unchanged.
    pub(crate) fn from_shared(schema: Schema, run: Arc<Vec<Entry>>) -> HistoricalState {
        debug_assert!(is_strictly_sorted(&run), "run must be strictly sorted");
        HistoricalState { schema, run }
    }

    /// The reference-counted run (for zero-copy sharing between operator
    /// results).
    pub(crate) fn shared_run(&self) -> &Arc<Vec<Entry>> {
        &self.run
    }

    /// Applies a batch of removals and upserts as an in-place merge of
    /// sorted runs.
    ///
    /// Upserts *replace* an existing entry's temporal element (they do not
    /// union with it) — this is delta-replay semantics, not `hunion`. Like
    /// [`SnapshotState::apply_delta`], a replay loop that uniquely owns
    /// its working state pays one forward compaction pass for removals and
    /// one backward gap merge for genuinely new tuples; present tuples are
    /// revalued in place and untouched entries are moved, not cloned.
    /// Upserted tuples are checked against the scheme and their elements
    /// must be non-empty.
    pub fn apply_delta(&mut self, removed: &[Tuple], upserted: &[Entry]) -> Result<()> {
        for (t, e) in upserted {
            t.check(&self.schema)?;
            if e.is_empty() {
                return Err(HistoricalError::EmptyValidTime);
            }
        }
        if removed.is_empty() && upserted.is_empty() {
            return Ok(());
        }
        let removed = normalize_tuples(removed);
        let upserted = normalize_entries(upserted);
        let run = Arc::make_mut(&mut self.run);
        // Pass 1: removals. One galloping sweep locates the present ones
        // (both runs are sorted, so each search costs O(log gap)), then
        // compare-free swaps close the holes — untouched entries are
        // moved, never cloned or re-compared.
        if !removed.is_empty() {
            let mut holes: Vec<usize> = Vec::with_capacity(removed.len());
            let mut pos = 0;
            for r in removed.iter() {
                pos = gallop(run, pos, r);
                if run.get(pos).map(|(t, _)| t) == Some(r) {
                    holes.push(pos);
                    pos += 1;
                }
            }
            if !holes.is_empty() {
                let mut d = holes[0];
                for (h, &hole) in holes.iter().enumerate() {
                    let next = holes.get(h + 1).copied().unwrap_or(run.len());
                    for s in hole + 1..next {
                        run.swap(d, s);
                        d += 1;
                    }
                }
                run.truncate(d);
            }
        }
        // Pass 2: upserts. The same sweep revalues present tuples where
        // they stand (assignments never move entries) and records the
        // insertion points of genuinely new ones. A tuple removed and
        // re-upserted by the same delta is absent by now and re-enters as
        // fresh — the upserts-win-ties rule.
        if !upserted.is_empty() {
            let mut ins: Vec<(usize, usize)> = Vec::with_capacity(upserted.len());
            let mut pos = 0;
            for (k, (t, e)) in upserted.iter().enumerate() {
                pos = gallop(run, pos, t);
                if run.get(pos).map(|(rt, _)| rt) == Some(t) {
                    run[pos].1 = e.clone();
                    pos += 1;
                } else {
                    ins.push((pos, k));
                }
            }
            if !ins.is_empty() {
                let m = run.len();
                // Placeholder clones open the gap; every slot at or above
                // the lowest insertion point is overwritten by the shift.
                run.extend(upserted.iter().take(ins.len()).cloned());
                let (mut s, mut d) = (m, m + ins.len());
                for &(p, k) in ins.iter().rev() {
                    while s > p {
                        s -= 1;
                        d -= 1;
                        run.swap(d, s);
                    }
                    d -= 1;
                    run[d] = upserted[k].clone();
                }
            }
        }
        debug_assert!(is_strictly_sorted(run));
        Ok(())
    }

    /// A copy of this state with a batch of removals and upserts applied
    /// — the non-mutating face of [`HistoricalState::apply_delta`], used
    /// by incremental view maintenance to build a node's next cached
    /// state while the old one stays live for sibling delta rules.
    pub fn with_delta(&self, removed: &[Tuple], upserted: &[Entry]) -> Result<HistoricalState> {
        let mut next = self.clone();
        next.apply_delta(removed, upserted)?;
        Ok(next)
    }

    /// The state's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct value tuples.
    pub fn len(&self) -> usize {
        self.run.len()
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// The valid time of `tuple`, if it is present.
    pub fn valid_time(&self, tuple: &Tuple) -> Option<&TemporalElement> {
        self.run
            .binary_search_by(|(t, _)| t.cmp(tuple))
            .ok()
            .map(|i| &self.run[i].1)
    }

    /// Iterates `(tuple, valid-time)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &TemporalElement)> {
        self.run.iter().map(|(t, e)| (t, e))
    }

    /// The sorted run: every entry in strictly increasing value-tuple
    /// order.
    pub fn run(&self) -> &[Entry] {
        &self.run
    }

    /// Whether two states share the same physical run allocation — the
    /// observable footprint of the operators' zero-copy shortcuts.
    pub fn shares_run(&self, other: &HistoricalState) -> bool {
        Arc::ptr_eq(&self.run, &other.run)
    }

    /// The entries as a `BTreeMap` — a compatibility accessor that
    /// materializes a fresh tree from the run. Prefer
    /// [`HistoricalState::run`] or [`HistoricalState::iter`] on hot paths.
    pub fn entries(&self) -> BTreeMap<Tuple, TemporalElement> {
        self.run.iter().cloned().collect()
    }

    /// A state equal to this one but with every string value drawn from
    /// `pool` (see [`SnapshotState::interned`]). Returns a shallow clone
    /// when nothing changes.
    pub fn interned(&self, pool: &mut StrInterner) -> HistoricalState {
        let mut changed = false;
        let run: Vec<Entry> = self
            .run
            .iter()
            .map(|(t, e)| {
                let it = pool.intern_tuple(t);
                changed |= it.values().as_ptr() != t.values().as_ptr();
                (it, e.clone())
            })
            .collect();
        if changed {
            HistoricalState::from_sorted_vec(self.schema.clone(), run)
        } else {
            self.clone()
        }
    }

    /// The timeslice at chronon `c`: the snapshot state of facts valid at
    /// `c`. This is the bridge from historical to snapshot semantics.
    pub fn timeslice(&self, c: Chronon) -> SnapshotState {
        let tuples: Vec<Tuple> = self
            .run
            .iter()
            .filter(|(_, e)| e.contains(c))
            .map(|(t, _)| t.clone())
            .collect();
        SnapshotState::new(self.schema.clone(), tuples).expect("tuples were validated at insertion")
    }

    /// Converts a snapshot state into an historical state in which every
    /// tuple is valid exactly over `valid`.
    pub fn from_snapshot(state: &SnapshotState, valid: TemporalElement) -> Result<HistoricalState> {
        if valid.is_empty() {
            return Err(HistoricalError::EmptyValidTime);
        }
        // The snapshot run is already sorted; stamping preserves order.
        let run = state.iter().map(|t| (t.clone(), valid.clone())).collect();
        Ok(HistoricalState::from_sorted_vec(
            state.schema().clone(),
            run,
        ))
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<HistoricalState>()
            + self
                .run
                .iter()
                .map(|(t, e)| t.size_bytes() + e.size_bytes())
                .sum::<usize>()
    }
}

/// First index `i >= lo` whose entry tuple is `>= target`, found by
/// exponential probing upward from `lo`. Delta events arrive in sorted
/// order, so a sweep that restarts each search at the previous hit pays
/// O(log gap) comparisons per event instead of O(log n).
fn gallop(run: &[Entry], lo: usize, target: &Tuple) -> usize {
    if lo >= run.len() || run[lo].0 >= *target {
        return lo;
    }
    // Invariant: run[prev].0 < target.
    let (mut prev, mut step) = (lo, 1usize);
    while prev + step < run.len() && run[prev + step].0 < *target {
        prev += step;
        step *= 2;
    }
    let hi = (prev + step).min(run.len());
    prev + 1 + run[prev + 1..hi].partition_point(|(t, _)| t < target)
}

/// Removal slices are usually already canonical; fall back to a local
/// sort + dedup when they are not.
fn normalize_tuples(run: &[Tuple]) -> Cow<'_, [Tuple]> {
    if run.windows(2).all(|w| w[0] < w[1]) {
        Cow::Borrowed(run)
    } else {
        let mut owned = run.to_vec();
        owned.sort_unstable();
        owned.dedup();
        Cow::Owned(owned)
    }
}

/// Upsert slices are usually already canonical; fall back to a local
/// stable sort keeping the **last** entry per tuple (matching the
/// last-write-wins semantics of sequential map inserts).
fn normalize_entries(run: &[Entry]) -> Cow<'_, [Entry]> {
    if is_strictly_sorted(run) {
        Cow::Borrowed(run)
    } else {
        let mut owned = run.to_vec();
        owned.sort_by(|a, b| a.0.cmp(&b.0));
        // dedup_by keeps the FIRST of a duplicate group; reverse the
        // stable order within groups by deduping from the back instead.
        let mut deduped: Vec<Entry> = Vec::with_capacity(owned.len());
        for entry in owned {
            match deduped.last_mut() {
                Some(last) if last.0 == entry.0 => *last = entry,
                _ => deduped.push(entry),
            }
        }
        Cow::Owned(deduped)
    }
}

impl fmt::Display for HistoricalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.schema)?;
        let mut first = true;
        for (t, e) in self.run.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {t} @ {e}")?;
            first = false;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Value};

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str)]).unwrap()
    }

    fn t(name: &str) -> Tuple {
        Tuple::new(vec![Value::str(name)])
    }

    #[test]
    fn construction_coalesces_value_equivalent_tuples() {
        let s = HistoricalState::new(
            schema(),
            vec![
                (t("alice"), TemporalElement::period(0, 5)),
                (t("alice"), TemporalElement::period(5, 10)),
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.valid_time(&t("alice")).unwrap(),
            &TemporalElement::period(0, 10)
        );
    }

    #[test]
    fn construction_rejects_empty_valid_time() {
        let r = HistoricalState::new(schema(), vec![(t("a"), TemporalElement::empty())]);
        assert_eq!(r.unwrap_err(), HistoricalError::EmptyValidTime);
    }

    #[test]
    fn construction_validates_tuples() {
        let r = HistoricalState::new(
            schema(),
            vec![(
                Tuple::new(vec![Value::Int(1)]),
                TemporalElement::period(0, 1),
            )],
        );
        assert!(matches!(r, Err(HistoricalError::Snapshot(_))));
    }

    #[test]
    fn run_is_strictly_sorted_by_tuple() {
        let s = HistoricalState::new(
            schema(),
            vec![
                (t("zed"), TemporalElement::period(0, 1)),
                (t("alice"), TemporalElement::period(1, 2)),
                (t("mid"), TemporalElement::period(2, 3)),
            ],
        )
        .unwrap();
        assert!(is_strictly_sorted(s.run()));
    }

    #[test]
    fn apply_delta_replaces_and_removes() {
        let mut s = HistoricalState::new(
            schema(),
            vec![
                (t("alice"), TemporalElement::period(0, 5)),
                (t("bob"), TemporalElement::period(0, 5)),
            ],
        )
        .unwrap();
        s.apply_delta(
            &[t("bob")],
            &[
                (t("alice"), TemporalElement::period(0, 9)),
                (t("carol"), TemporalElement::period(1, 2)),
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.valid_time(&t("alice")).unwrap(),
            &TemporalElement::period(0, 9)
        );
        assert!(s.valid_time(&t("bob")).is_none());
        assert!(is_strictly_sorted(s.run()));
    }

    #[test]
    fn apply_delta_remove_then_upsert_keeps_tuple() {
        let mut s =
            HistoricalState::new(schema(), vec![(t("a"), TemporalElement::period(0, 5))]).unwrap();
        s.apply_delta(&[t("a")], &[(t("a"), TemporalElement::period(2, 3))])
            .unwrap();
        assert_eq!(
            s.valid_time(&t("a")).unwrap(),
            &TemporalElement::period(2, 3)
        );
    }

    #[test]
    fn timeslice_selects_valid_tuples() {
        let s = HistoricalState::new(
            schema(),
            vec![
                (t("alice"), TemporalElement::period(0, 5)),
                (t("bob"), TemporalElement::period(3, 10)),
            ],
        )
        .unwrap();
        assert_eq!(s.timeslice(0).len(), 1);
        assert_eq!(s.timeslice(4).len(), 2);
        assert_eq!(s.timeslice(7).len(), 1);
        assert_eq!(s.timeslice(20).len(), 0);
    }

    #[test]
    fn from_snapshot_stamps_uniformly() {
        let snap =
            SnapshotState::from_rows(schema(), vec![vec![Value::str("a")], vec![Value::str("b")]])
                .unwrap();
        let h = HistoricalState::from_snapshot(&snap, TemporalElement::period(2, 4)).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.timeslice(3), snap);
        assert!(h.timeslice(4).is_empty());
    }

    #[test]
    fn from_snapshot_rejects_empty_time() {
        let snap = SnapshotState::empty(schema());
        assert!(HistoricalState::from_snapshot(&snap, TemporalElement::empty()).is_err());
    }

    #[test]
    fn display_form() {
        let s =
            HistoricalState::new(schema(), vec![(t("a"), TemporalElement::period(0, 2))]).unwrap();
        assert_eq!(s.to_string(), "(name: str) { (\"a\") @ {[0, 2)} }");
    }
}
