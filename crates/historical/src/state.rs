//! Historical states: the semantic domain HISTORICAL STATE.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use txtime_snapshot::{Schema, SnapshotState, Tuple};

use crate::chronon::Chronon;
use crate::element::TemporalElement;
use crate::error::HistoricalError;
use crate::Result;

/// An historical state: a set of value tuples, each timestamped with the
/// temporal element over which its fact was valid.
///
/// This is the semantic domain *HISTORICAL STATE* — "the domain of all
/// valid historical relations as defined in the historical algebra". Two
/// invariants are maintained:
///
/// 1. **Coalescing** — value-equivalent tuples are merged, so each value
///    tuple appears at most once, and its temporal element is maximally
///    coalesced.
/// 2. **Non-emptiness** — no tuple carries an empty temporal element; a
///    fact valid at no time is simply absent.
///
/// Like [`SnapshotState`], the payload is reference-counted so cloning is
/// O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HistoricalState {
    schema: Schema,
    tuples: Arc<BTreeMap<Tuple, TemporalElement>>,
}

impl HistoricalState {
    /// The empty historical state over `schema`.
    pub fn empty(schema: Schema) -> HistoricalState {
        HistoricalState {
            schema,
            tuples: Arc::new(BTreeMap::new()),
        }
    }

    /// Builds a state from `(tuple, valid-time)` pairs, validating tuples
    /// against the scheme, rejecting empty valid times, and coalescing
    /// value-equivalent entries.
    pub fn new(
        schema: Schema,
        entries: impl IntoIterator<Item = (Tuple, TemporalElement)>,
    ) -> Result<HistoricalState> {
        let mut map: BTreeMap<Tuple, TemporalElement> = BTreeMap::new();
        for (t, e) in entries {
            t.check(&schema)?;
            if e.is_empty() {
                return Err(HistoricalError::EmptyValidTime);
            }
            match map.get_mut(&t) {
                Some(existing) => *existing = existing.union(&e),
                None => {
                    map.insert(t, e);
                }
            }
        }
        Ok(HistoricalState {
            schema,
            tuples: Arc::new(map),
        })
    }

    /// Internal constructor for operator results that already maintain the
    /// invariants (valid tuples, non-empty coalesced elements).
    pub(crate) fn from_checked(
        schema: Schema,
        tuples: BTreeMap<Tuple, TemporalElement>,
    ) -> HistoricalState {
        debug_assert!(tuples.values().all(|e| !e.is_empty()));
        HistoricalState {
            schema,
            tuples: Arc::new(tuples),
        }
    }

    /// Internal constructor that adopts an already-shared entry map — the
    /// zero-copy path for operator results that are one of the operands
    /// unchanged.
    pub(crate) fn from_shared(
        schema: Schema,
        tuples: Arc<BTreeMap<Tuple, TemporalElement>>,
    ) -> HistoricalState {
        HistoricalState { schema, tuples }
    }

    /// The reference-counted entry map (for zero-copy sharing between
    /// operator results).
    pub(crate) fn shared_entries(&self) -> &Arc<BTreeMap<Tuple, TemporalElement>> {
        &self.tuples
    }

    /// Applies a batch of removals and upserts *in place*, copying the
    /// entry map only if it is shared (copy-on-write via [`Arc`]).
    ///
    /// Upserts *replace* an existing entry's temporal element (they do not
    /// union with it) — this is delta-replay semantics, not `hunion`.
    /// Upserted tuples are checked against the scheme and their elements
    /// must be non-empty.
    pub fn apply_delta(
        &mut self,
        removed: &[Tuple],
        upserted: &[(Tuple, TemporalElement)],
    ) -> Result<()> {
        for (t, e) in upserted {
            t.check(&self.schema)?;
            if e.is_empty() {
                return Err(HistoricalError::EmptyValidTime);
            }
        }
        let map = Arc::make_mut(&mut self.tuples);
        for t in removed {
            map.remove(t);
        }
        for (t, e) in upserted {
            map.insert(t.clone(), e.clone());
        }
        Ok(())
    }

    /// The state's scheme.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of distinct value tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The valid time of `tuple`, if it is present.
    pub fn valid_time(&self, tuple: &Tuple) -> Option<&TemporalElement> {
        self.tuples.get(tuple)
    }

    /// Iterates `(tuple, valid-time)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &TemporalElement)> {
        self.tuples.iter()
    }

    /// The underlying map.
    pub fn entries(&self) -> &BTreeMap<Tuple, TemporalElement> {
        &self.tuples
    }

    /// The timeslice at chronon `c`: the snapshot state of facts valid at
    /// `c`. This is the bridge from historical to snapshot semantics.
    pub fn timeslice(&self, c: Chronon) -> SnapshotState {
        let tuples: Vec<Tuple> = self
            .tuples
            .iter()
            .filter(|(_, e)| e.contains(c))
            .map(|(t, _)| t.clone())
            .collect();
        SnapshotState::new(self.schema.clone(), tuples).expect("tuples were validated at insertion")
    }

    /// Converts a snapshot state into an historical state in which every
    /// tuple is valid exactly over `valid`.
    pub fn from_snapshot(state: &SnapshotState, valid: TemporalElement) -> Result<HistoricalState> {
        if valid.is_empty() {
            return Err(HistoricalError::EmptyValidTime);
        }
        let map = state.iter().map(|t| (t.clone(), valid.clone())).collect();
        Ok(HistoricalState::from_checked(state.schema().clone(), map))
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<HistoricalState>()
            + self
                .tuples
                .iter()
                .map(|(t, e)| t.size_bytes() + e.size_bytes())
                .sum::<usize>()
    }
}

impl fmt::Display for HistoricalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {{", self.schema)?;
        let mut first = true;
        for (t, e) in self.tuples.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, " {t} @ {e}")?;
            first = false;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Value};

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str)]).unwrap()
    }

    fn t(name: &str) -> Tuple {
        Tuple::new(vec![Value::str(name)])
    }

    #[test]
    fn construction_coalesces_value_equivalent_tuples() {
        let s = HistoricalState::new(
            schema(),
            vec![
                (t("alice"), TemporalElement::period(0, 5)),
                (t("alice"), TemporalElement::period(5, 10)),
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.valid_time(&t("alice")).unwrap(),
            &TemporalElement::period(0, 10)
        );
    }

    #[test]
    fn construction_rejects_empty_valid_time() {
        let r = HistoricalState::new(schema(), vec![(t("a"), TemporalElement::empty())]);
        assert_eq!(r.unwrap_err(), HistoricalError::EmptyValidTime);
    }

    #[test]
    fn construction_validates_tuples() {
        let r = HistoricalState::new(
            schema(),
            vec![(
                Tuple::new(vec![Value::Int(1)]),
                TemporalElement::period(0, 1),
            )],
        );
        assert!(matches!(r, Err(HistoricalError::Snapshot(_))));
    }

    #[test]
    fn timeslice_selects_valid_tuples() {
        let s = HistoricalState::new(
            schema(),
            vec![
                (t("alice"), TemporalElement::period(0, 5)),
                (t("bob"), TemporalElement::period(3, 10)),
            ],
        )
        .unwrap();
        assert_eq!(s.timeslice(0).len(), 1);
        assert_eq!(s.timeslice(4).len(), 2);
        assert_eq!(s.timeslice(7).len(), 1);
        assert_eq!(s.timeslice(20).len(), 0);
    }

    #[test]
    fn from_snapshot_stamps_uniformly() {
        let snap =
            SnapshotState::from_rows(schema(), vec![vec![Value::str("a")], vec![Value::str("b")]])
                .unwrap();
        let h = HistoricalState::from_snapshot(&snap, TemporalElement::period(2, 4)).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.timeslice(3), snap);
        assert!(h.timeslice(4).is_empty());
    }

    #[test]
    fn from_snapshot_rejects_empty_time() {
        let snap = SnapshotState::empty(schema());
        assert!(HistoricalState::from_snapshot(&snap, TemporalElement::empty()).is_err());
    }

    #[test]
    fn display_form() {
        let s =
            HistoricalState::new(schema(), vec![(t("a"), TemporalElement::period(0, 2))]).unwrap();
        assert_eq!(s.to_string(), "(name: str) { (\"a\") @ {[0, 2)} }");
    }
}
