//! Historical union (∪̂).

use crate::ops::hmerge::hmerge_union;
use crate::state::HistoricalState;
use crate::Result;

impl HistoricalState {
    /// Historical union `E₁ ∪̂ E₂`.
    ///
    /// Value-equivalent tuples merge, their valid times unioned: a fact
    /// appears in the result valid whenever it was valid in *either*
    /// operand.
    ///
    /// The kernel is a single two-pointer merge over the operands' sorted
    /// runs. When one operand is empty, or both share the same underlying
    /// run (idempotence), the surviving side's run is reused as-is — an
    /// O(1) `Arc` clone.
    pub fn hunion(&self, other: &HistoricalState) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if other.is_empty() || self.shares_run(other) {
            return Ok(self.clone());
        }
        if self.is_empty() {
            return Ok(HistoricalState::from_shared(
                self.schema().clone(),
                other.shared_run().clone(),
            ));
        }
        let out = hmerge_union(self.run(), other.run());
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }

    /// Union of an ordered sequence of union-compatible states — the
    /// merge entry point for horizontally partitioned (sharded) runs.
    ///
    /// A left fold over [`HistoricalState::hunion`]; the per-step
    /// identity shortcuts (empty operand, shared run) apply, so merging
    /// `K` shards with one survivor is `K − 1` Arc clones. Returns
    /// `None` for an empty sequence (no schema to give the result).
    pub fn hunion_many(states: &[HistoricalState]) -> Option<Result<HistoricalState>> {
        let (first, rest) = states.split_first()?;
        let mut acc = first.clone();
        for s in rest {
            match acc.hunion(s) {
                Ok(u) => acc = u,
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Ok(acc))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Str)]).unwrap()
    }

    fn st(entries: &[(&str, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            schema(),
            entries.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::str(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn union_merges_valid_times() {
        let u = st(&[("a", 0, 5)]).hunion(&st(&[("a", 5, 10)])).unwrap();
        assert_eq!(u, st(&[("a", 0, 10)]));
    }

    #[test]
    fn union_keeps_distinct_tuples() {
        let u = st(&[("a", 0, 5)]).hunion(&st(&[("b", 0, 5)])).unwrap();
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn union_commutative_and_idempotent() {
        let (a, b) = (st(&[("a", 0, 5), ("b", 2, 8)]), st(&[("a", 3, 9)]));
        assert_eq!(a.hunion(&b).unwrap(), b.hunion(&a).unwrap());
        assert_eq!(a.hunion(&a).unwrap(), a);
    }

    #[test]
    fn union_with_empty_shares_the_run() {
        let a = st(&[("a", 0, 5), ("b", 2, 8)]);
        let empty = HistoricalState::empty(schema());
        let left = a.hunion(&empty).unwrap();
        assert!(a.shares_run(&left));
        let right = empty.hunion(&a).unwrap();
        assert!(a.shares_run(&right));
    }

    #[test]
    fn union_requires_compatibility() {
        let other = Schema::new(vec![("y", DomainType::Str)]).unwrap();
        assert!(st(&[("a", 0, 1)])
            .hunion(&HistoricalState::empty(other))
            .is_err());
    }

    #[test]
    fn hunion_many_folds_partitions() {
        let parts = [
            st(&[("a", 0, 5)]),
            st(&[("a", 5, 10), ("b", 0, 2)]),
            HistoricalState::empty(schema()),
        ];
        let u = HistoricalState::hunion_many(&parts).unwrap().unwrap();
        assert_eq!(u, st(&[("a", 0, 10), ("b", 0, 2)]));
        assert!(HistoricalState::hunion_many(&[]).is_none());
    }

    #[test]
    fn timeslice_correspondence() {
        let (a, b) = (st(&[("a", 0, 5), ("b", 2, 8)]), st(&[("a", 3, 9)]));
        let u = a.hunion(&b).unwrap();
        for c in 0..12 {
            assert_eq!(
                u.timeslice(c),
                a.timeslice(c).union(&b.timeslice(c)).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
