//! The historical-algebra operators ∪̂, −̂, ×̂, π̂, σ̂, and δ_{G,V}.
//!
//! "The first five operators are historical counterparts to conventional
//! algebraic operators … The sixth operator δ_{G,V} is a new historical
//! operator which performs functions, similar to those of the selection
//! and projection operators in the snapshot algebra, on the valid-time
//! components of historical tuples" (paper §4).
//!
//! The guiding principle relating each operator to its snapshot
//! counterpart is the **timeslice correspondence**: for every chronon `c`,
//! `timeslice(op̂(H₁, H₂), c) = op(timeslice(H₁, c), timeslice(H₂, c))`.
//! The property tests in `tests/historical_laws.rs` check exactly this.

pub mod delta;
pub mod derived;
pub mod difference;
pub(crate) mod hmerge;
pub mod join;
pub mod par;
pub mod product;
pub mod project;
pub mod select;
pub mod union;
