//! Single-pass merge kernels over sorted historical runs.
//!
//! The historical analogues of `txtime_snapshot::ops::merge`: inputs are
//! canonically-ordered entry slices (strictly sorted by value tuple,
//! non-empty coalesced elements) and outputs are canonically-ordered
//! `Vec`s produced in one linear pass. Where the snapshot kernels drop or
//! keep whole tuples, these kernels union / subtract / intersect the
//! valid-time elements of value-equal entries.

use std::cmp::Ordering;

use crate::state::Entry;

/// Two-pointer historical union: value-equal entries merge with their
/// elements unioned (non-empty ∪ non-empty is non-empty, so the invariant
/// holds without filtering).
pub(crate) fn hmerge_union(left: &[Entry], right: &[Entry]) -> Vec<Entry> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match left[i].0.cmp(&right[j].0) {
            Ordering::Less => {
                out.push(left[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(right[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                out.push((left[i].0.clone(), left[i].1.union(&right[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Historical difference: each left entry keeps its element minus the
/// right element of the same value tuple; entries whose element empties
/// out disappear. Returns the surviving entries plus whether any element
/// actually changed (the caller's share-the-left-run shortcut).
pub(crate) fn hmerge_difference(left: &[Entry], right: &[Entry]) -> (Vec<Entry>, bool) {
    let mut out = Vec::with_capacity(left.len());
    let mut changed = false;
    let mut j = 0usize;
    for (t, e) in left {
        if right.get(j).is_some_and(|(rt, _)| rt < t) {
            j += right[j..].partition_point(|(rt, _)| rt < t);
        }
        let remaining = match right.get(j) {
            Some((rt, re)) if rt == t => e.difference(re),
            _ => e.clone(),
        };
        changed |= &remaining != e;
        if !remaining.is_empty() {
            out.push((t.clone(), remaining));
        }
    }
    (out, changed)
}

/// Historical intersection: value-equal entries survive over the
/// intersection of their elements; disjoint elements drop the entry.
pub(crate) fn hmerge_intersect(left: &[Entry], right: &[Entry]) -> Vec<Entry> {
    let mut out = Vec::with_capacity(left.len().min(right.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match left[i].0.cmp(&right[j].0) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let common = left[i].1.intersect(&right[j].1);
                if !common.is_empty() {
                    out.push((left[i].0.clone(), common));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::TemporalElement;
    use txtime_snapshot::{Tuple, Value};

    fn entry(v: i64, s: u32, e: u32) -> Entry {
        (
            Tuple::new(vec![Value::Int(v)]),
            TemporalElement::period(s, e),
        )
    }

    #[test]
    fn union_merges_elements_on_equal_tuples() {
        let out = hmerge_union(&[entry(1, 0, 5)], &[entry(1, 5, 9), entry(2, 0, 1)]);
        assert_eq!(out, vec![entry(1, 0, 9), entry(2, 0, 1)]);
    }

    #[test]
    fn difference_tracks_changes_and_drops_empties() {
        let (out, changed) =
            hmerge_difference(&[entry(1, 0, 5), entry(2, 0, 5)], &[entry(1, 0, 9)]);
        assert!(changed);
        assert_eq!(out, vec![entry(2, 0, 5)]);
        let (out, changed) = hmerge_difference(&[entry(1, 0, 5)], &[entry(2, 0, 9)]);
        assert!(!changed);
        assert_eq!(out, vec![entry(1, 0, 5)]);
    }

    #[test]
    fn intersect_drops_disjoint_elements() {
        let out = hmerge_intersect(
            &[entry(1, 0, 5), entry(2, 0, 5)],
            &[entry(1, 3, 9), entry(2, 7, 9)],
        );
        assert_eq!(out, vec![entry(1, 3, 5)]);
    }
}
