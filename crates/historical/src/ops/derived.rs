//! Derived historical operators.
//!
//! As in the snapshot algebra, several useful operators are definable
//! from the primitives; they carry the same timeslice correspondence.

use txtime_snapshot::Tuple;

use crate::ops::hmerge::hmerge_intersect;
use crate::state::{Entry, HistoricalState};
use crate::Result;

impl HistoricalState {
    /// Historical intersection: a fact is in the result exactly when it
    /// was valid in *both* operands, over the intersection of its valid
    /// times. Equal to `A −̂ (A −̂ B)`; computed as a single two-pointer
    /// merge over the operands' sorted runs.
    pub fn hintersect(&self, other: &HistoricalState) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        let out = hmerge_intersect(self.run(), other.run());
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }

    /// Historical natural join on all common attribute names: joined
    /// tuples are valid when both constituents were.
    pub fn hnatural_join(&self, other: &HistoricalState) -> Result<HistoricalState> {
        let common = self.schema().common_attributes(other.schema());
        for name in &common {
            let l = self.schema().attribute(self.schema().require(name)?);
            let r = other.schema().attribute(other.schema().require(name)?);
            if l.domain != r.domain {
                return Err(txtime_snapshot::SnapshotError::DomainMismatch {
                    attribute: name.to_string(),
                    expected: l.domain,
                    found: r.domain,
                }
                .into());
            }
        }
        let right_keep: Vec<usize> = (0..other.schema().arity())
            .filter(|&i| {
                !common
                    .iter()
                    .any(|c| *c == other.schema().attribute(i).name)
            })
            .collect();
        let mut attrs = self.schema().attributes().to_vec();
        for &i in &right_keep {
            attrs.push(other.schema().attribute(i).clone());
        }
        let schema = txtime_snapshot::Schema::from_attributes(attrs)?;

        let left_common: Vec<usize> = common
            .iter()
            .map(|c| self.schema().index_of(c).expect("common attr in left"))
            .collect();
        let right_common: Vec<usize> = common
            .iter()
            .map(|c| other.schema().index_of(c).expect("common attr in right"))
            .collect();

        // Joined tuples from distinct left/right pairs can coincide after
        // the right's common attributes are dropped; from_unsorted_vec
        // coalesces them in scan order with element union.
        let mut out: Vec<Entry> = Vec::new();
        for (l, le) in self.iter() {
            for (r, re) in other.iter() {
                let matches = left_common
                    .iter()
                    .zip(&right_common)
                    .all(|(&li, &ri)| l.get(li) == r.get(ri));
                if !matches {
                    continue;
                }
                let e = le.intersect(re);
                if e.is_empty() {
                    continue;
                }
                let mut vals = l.values().to_vec();
                for &i in &right_keep {
                    vals.push(r.get(i).clone());
                }
                out.push((Tuple::new(vals), e));
            }
        }
        Ok(HistoricalState::from_unsorted_vec(schema, out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn st(attr: &str, entries: &[(&str, u32, u32)]) -> HistoricalState {
        let schema = Schema::new(vec![(attr, DomainType::Str)]).unwrap();
        HistoricalState::new(
            schema,
            entries.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::str(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn hintersect_matches_double_difference() {
        let a = st("x", &[("p", 0, 10), ("q", 0, 4)]);
        let b = st("x", &[("p", 5, 15), ("r", 0, 4)]);
        let direct = a.hintersect(&b).unwrap();
        let derived = a.hdifference(&a.hdifference(&b).unwrap()).unwrap();
        assert_eq!(direct, derived);
        assert_eq!(
            direct
                .valid_time(&Tuple::new(vec![Value::str("p")]))
                .unwrap(),
            &TemporalElement::period(5, 10)
        );
        assert_eq!(direct.len(), 1);
    }

    #[test]
    fn hintersect_timeslice_correspondence() {
        let a = st("x", &[("p", 0, 10), ("q", 2, 8)]);
        let b = st("x", &[("p", 5, 15), ("q", 0, 3)]);
        let i = a.hintersect(&b).unwrap();
        for c in 0..16 {
            assert_eq!(
                i.timeslice(c),
                a.timeslice(c).intersect(&b.timeslice(c)).unwrap(),
                "at chronon {c}"
            );
        }
    }

    #[test]
    fn hnatural_join_on_shared_attribute() {
        let emp = HistoricalState::new(
            Schema::new(vec![("name", DomainType::Str), ("dept", DomainType::Str)]).unwrap(),
            vec![
                (
                    Tuple::new(vec![Value::str("alice"), Value::str("cs")]),
                    TemporalElement::period(0, 10),
                ),
                (
                    Tuple::new(vec![Value::str("bob"), Value::str("ee")]),
                    TemporalElement::period(5, 15),
                ),
            ],
        )
        .unwrap();
        let dept = HistoricalState::new(
            Schema::new(vec![("dept", DomainType::Str), ("bldg", DomainType::Str)]).unwrap(),
            vec![(
                Tuple::new(vec![Value::str("cs"), Value::str("sitterson")]),
                TemporalElement::period(3, 20),
            )],
        )
        .unwrap();
        let j = emp.hnatural_join(&dept).unwrap();
        assert_eq!(j.len(), 1);
        let t = Tuple::new(vec![
            Value::str("alice"),
            Value::str("cs"),
            Value::str("sitterson"),
        ]);
        // alice was in cs over [0,10); the building is known over [3,20):
        // the joined fact holds over the intersection.
        assert_eq!(j.valid_time(&t).unwrap(), &TemporalElement::period(3, 10));
    }

    #[test]
    fn hnatural_join_timeslice_correspondence() {
        let a = st("x", &[("p", 0, 10), ("q", 2, 8)]);
        let schema = Schema::new(vec![("x", DomainType::Str), ("y", DomainType::Str)]).unwrap();
        let b = HistoricalState::new(
            schema,
            vec![
                (
                    Tuple::new(vec![Value::str("p"), Value::str("1")]),
                    TemporalElement::period(4, 12),
                ),
                (
                    Tuple::new(vec![Value::str("q"), Value::str("2")]),
                    TemporalElement::period(0, 5),
                ),
            ],
        )
        .unwrap();
        let j = a.hnatural_join(&b).unwrap();
        for c in 0..14 {
            assert_eq!(
                j.timeslice(c),
                a.timeslice(c).natural_join(&b.timeslice(c)).unwrap(),
                "at chronon {c}"
            );
        }
    }

    #[test]
    fn hintersect_requires_compatibility() {
        let a = st("x", &[("p", 0, 1)]);
        let b = st("y", &[("p", 0, 1)]);
        assert!(a.hintersect(&b).is_err());
    }
}
