//! Historical selection (σ̂).

use crate::state::HistoricalState;
use crate::Result;
use txtime_snapshot::Predicate;

impl HistoricalState {
    /// Historical selection `σ̂_F(E)`: filters on *value* attributes,
    /// leaving valid times untouched. Selection on valid time is the
    /// business of [`HistoricalState::delta`].
    ///
    /// The kernel is a single filtering scan over the sorted run (a
    /// filtered sorted sequence stays sorted); when every entry passes,
    /// the input run is reused as-is — an O(1) `Arc` clone.
    pub fn hselect(&self, predicate: &Predicate) -> Result<HistoricalState> {
        let compiled = predicate.compile(self.schema())?;
        let out: Vec<_> = self
            .run()
            .iter()
            .filter(|(t, _)| compiled.eval(t))
            .cloned()
            .collect();
        if out.len() == self.len() {
            return Ok(self.clone());
        }
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Predicate, Schema, Tuple, Value};

    fn emp() -> HistoricalState {
        let schema =
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap();
        HistoricalState::new(
            schema,
            vec![
                (
                    Tuple::new(vec![Value::str("alice"), Value::Int(100)]),
                    TemporalElement::period(0, 5),
                ),
                (
                    Tuple::new(vec![Value::str("bob"), Value::Int(200)]),
                    TemporalElement::period(3, 9),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_filters_values() {
        let s = emp()
            .hselect(&Predicate::gt_const("sal", Value::Int(150)))
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.valid_time(&Tuple::new(vec![Value::str("bob"), Value::Int(200)]))
                .unwrap(),
            &TemporalElement::period(3, 9)
        );
    }

    #[test]
    fn select_true_is_identity() {
        assert_eq!(emp().hselect(&Predicate::True).unwrap(), emp());
    }

    #[test]
    fn select_validates_predicate() {
        assert!(emp()
            .hselect(&Predicate::eq_const("wage", Value::Int(1)))
            .is_err());
    }

    #[test]
    fn timeslice_correspondence() {
        let e = emp();
        let f = Predicate::gt_const("sal", Value::Int(150));
        let s = e.hselect(&f).unwrap();
        for c in 0..11 {
            assert_eq!(
                s.timeslice(c),
                e.timeslice(c).select(&f).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
