//! The hatted physical equi-join: `join̂[spec](E₁, E₂)` ≡ `σ̂_spec(E₁ ×̂ E₂)`.
//!
//! Equi-keys match on value components and the transaction/valid-time
//! elements intersect — pairs with disjoint elements do not appear, just
//! as in the defining ×̂. The kernels reuse the snapshot crate's key
//! resolution ([`key_columns`], [`merge_applies`]) and the same
//! probe-major emission argument: left entries in run order, each left
//! entry's right matches in right run order, so the output run is already
//! canonically sorted and needs no coalescing (distinct value tuples).

use std::collections::HashMap;

use txtime_exec::{ExecPool, OpKind};
use txtime_snapshot::ops::join::{key_columns, merge_applies};
use txtime_snapshot::predicate::CompiledPredicate;
use txtime_snapshot::{JoinPhysical, JoinSpec, Value};

use crate::state::{Entry, HistoricalState};
use crate::Result;

/// The hash-join build side over entries: right-run indices grouped by
/// key values, in run order.
fn build_table(right: &[Entry], cols: &[(usize, usize)]) -> HashMap<Vec<Value>, Vec<usize>> {
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, (r, _)) in right.iter().enumerate() {
        let key: Vec<Value> = cols.iter().map(|&(_, rc)| r.get(rc).clone()).collect();
        table.entry(key).or_default().push(i);
    }
    table
}

impl HistoricalState {
    /// Physical hatted equi-join, observationally identical to
    /// `σ̂_{spec}(self ×̂ other)` — values, elements, and errors.
    pub fn hequi_join(&self, other: &HistoricalState, spec: &JoinSpec) -> Result<HistoricalState> {
        // Error discipline replicates ×̂-then-σ̂: schema clash first, then
        // predicate validation against the concatenated scheme.
        let schema = self.schema().product(other.schema())?;
        let compiled = spec.as_predicate().compile(&schema)?;
        let out = match key_columns(spec, self.schema(), other.schema()) {
            Some(cols)
                if !cols.is_empty()
                    && merge_applies(&cols)
                    && spec.physical == JoinPhysical::Merge =>
            {
                hmerge_join(self.run(), other.run(), &compiled)
            }
            Some(cols) if !cols.is_empty() => {
                let table = build_table(other.run(), &cols);
                hhash_probe(self.run(), other.run(), &cols, &table, &compiled)
            }
            _ => hnested_loop(self.run(), other.run(), &compiled),
        };
        Ok(HistoricalState::from_sorted_vec(schema, out))
    }

    /// [`HistoricalState::hequi_join`] with the probe side partitioned
    /// across the pool on O(1) slice ranges, build side shared.
    pub fn hequi_join_par(
        &self,
        other: &HistoricalState,
        spec: &JoinSpec,
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        let schema = self.schema().product(other.schema())?;
        let compiled = spec.as_predicate().compile(&schema)?;
        let grain = OpKind::HJoin.min_chunk();
        let cols = key_columns(spec, self.schema(), other.schema());
        let chunks: Vec<Vec<Entry>> = match cols {
            Some(cols)
                if !cols.is_empty()
                    && merge_applies(&cols)
                    && spec.physical == JoinPhysical::Merge =>
            {
                // The merge kernel is a single two-pointer pass; see the
                // snapshot kernel for why it is not partitioned.
                vec![hmerge_join(self.run(), other.run(), &compiled)]
            }
            Some(cols) if !cols.is_empty() => {
                let table = build_table(other.run(), &cols);
                pool.map_chunks(OpKind::HJoin, self.run(), grain, |chunk| {
                    hhash_probe(chunk, other.run(), &cols, &table, &compiled)
                })
            }
            _ => pool.map_chunks(OpKind::HJoin, self.run(), grain, |chunk| {
                hnested_loop(chunk, other.run(), &compiled)
            }),
        };
        pool.note_join(other.len() as u64, self.len() as u64, chunks.len() as u64);
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        Ok(HistoricalState::from_sorted_vec(schema, out))
    }
}

/// Probe `left` entries against the build table; each surviving pair
/// carries the intersection of its constituents' temporal elements, and
/// empty intersections are dropped — exactly the ×̂ rule.
fn hhash_probe(
    left: &[Entry],
    right: &[Entry],
    cols: &[(usize, usize)],
    table: &HashMap<Vec<Value>, Vec<usize>>,
    compiled: &CompiledPredicate,
) -> Vec<Entry> {
    let mut out = Vec::new();
    let mut key: Vec<Value> = Vec::with_capacity(cols.len());
    for (l, le) in left {
        key.clear();
        key.extend(cols.iter().map(|&(lc, _)| l.get(lc).clone()));
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let (r, re) = &right[ri];
                let e = le.intersect(re);
                if e.is_empty() {
                    continue;
                }
                let pair = l.concat(r);
                if compiled.eval(&pair) {
                    out.push((pair, e));
                }
            }
        }
    }
    out
}

/// Two-pointer merge over key-sorted entry runs (key = column 0 on both
/// sides), intersecting temporal elements per pair.
fn hmerge_join(left: &[Entry], right: &[Entry], compiled: &CompiledPredicate) -> Vec<Entry> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        let lk = left[i].0.get(0);
        let rk = right[j].0.get(0);
        if lk < rk {
            i += 1;
        } else if lk > rk {
            j += 1;
        } else {
            let i_end = i + left[i..].partition_point(|(t, _)| t.get(0) == lk);
            let j_end = j + right[j..].partition_point(|(t, _)| t.get(0) == rk);
            for (l, le) in &left[i..i_end] {
                for (r, re) in &right[j..j_end] {
                    let e = le.intersect(re);
                    if e.is_empty() {
                        continue;
                    }
                    let pair = l.concat(r);
                    if compiled.eval(&pair) {
                        out.push((pair, e));
                    }
                }
            }
            i = i_end;
            j = j_end;
        }
    }
    out
}

/// The defining nested loop (the σ̂(×̂) order), for specs whose keys do
/// not resolve side-wise.
fn hnested_loop(left: &[Entry], right: &[Entry], compiled: &CompiledPredicate) -> Vec<Entry> {
    let mut out = Vec::new();
    for (l, le) in left {
        for (r, re) in right {
            let e = le.intersect(re);
            if e.is_empty() {
                continue;
            }
            let pair = l.concat(r);
            if compiled.eval(&pair) {
                out.push((pair, e));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Predicate, Schema, Tuple};

    fn spec(keys: &[(&str, &str)], physical: JoinPhysical) -> JoinSpec {
        JoinSpec {
            keys: keys
                .iter()
                .map(|&(l, r)| (l.to_string(), r.to_string()))
                .collect(),
            residual: Predicate::True,
            physical,
        }
    }

    fn hs(names: (&str, &str), entries: &[(i64, i64, u32, u32)]) -> HistoricalState {
        let schema =
            Schema::new(vec![(names.0, DomainType::Int), (names.1, DomainType::Int)]).unwrap();
        HistoricalState::new(
            schema,
            entries.iter().map(|&(a, b, s, e)| {
                (
                    Tuple::new(vec![Value::Int(a), Value::Int(b)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    /// The defining oracle: σ̂_spec(l ×̂ r).
    fn oracle(l: &HistoricalState, r: &HistoricalState, s: &JoinSpec) -> Result<HistoricalState> {
        l.hproduct(r)?.hselect(&s.as_predicate())
    }

    #[test]
    fn hatted_join_matches_oracle_and_intersects_elements() {
        let l = hs(("x", "u"), &[(1, 10, 0, 10), (2, 20, 2, 8)]);
        let r = hs(("y", "v"), &[(1, 100, 5, 15), (2, 200, 9, 12)]);
        for physical in [JoinPhysical::Hash, JoinPhysical::Merge] {
            let s = spec(&[("x", "y")], physical);
            let j = l.hequi_join(&r, &s).unwrap();
            assert_eq!(j, oracle(&l, &r, &s).unwrap());
            // (1,10,1,100) overlaps on [5,10); (2,…) has disjoint times.
            assert_eq!(j.len(), 1);
            let e = j
                .valid_time(&Tuple::new(vec![
                    Value::Int(1),
                    Value::Int(10),
                    Value::Int(1),
                    Value::Int(100),
                ]))
                .unwrap();
            assert_eq!(e, &TemporalElement::period(5, 10));
        }
    }

    #[test]
    fn errors_match_the_product_select_form() {
        let l = hs(("x", "u"), &[(1, 10, 0, 5)]);
        let s = spec(&[("x", "x")], JoinPhysical::Hash);
        assert!(l.hequi_join(&l, &s).is_err());
        assert!(oracle(&l, &l, &s).is_err());
        let r = hs(("y", "v"), &[(1, 100, 0, 5)]);
        let bad = spec(&[("ghost", "y")], JoinPhysical::Hash);
        assert!(l.hequi_join(&r, &bad).is_err());
        assert!(oracle(&l, &r, &bad).is_err());
    }

    #[test]
    fn timeslice_correspondence() {
        // timeslice(join̂(A, B), c) = join(timeslice(A, c), timeslice(B, c))
        let a = hs(("x", "u"), &[(1, 10, 0, 8), (2, 20, 2, 6), (3, 30, 4, 9)]);
        let b = hs(("y", "v"), &[(1, 100, 3, 12), (3, 300, 0, 5)]);
        let s = spec(&[("x", "y")], JoinPhysical::Hash);
        let j = a.hequi_join(&b, &s).unwrap();
        for c in 0..14 {
            assert_eq!(
                j.timeslice(c),
                a.timeslice(c).equi_join(&b.timeslice(c), &s).unwrap(),
                "at chronon {c}"
            );
        }
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let n = 1200;
        let entries: Vec<(i64, i64, u32, u32)> = (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(17);
                let start = (h >> 8) % 40;
                (
                    (h % 48) as i64,
                    i as i64,
                    start as u32,
                    (start + 1 + (h >> 16) % 10) as u32,
                )
            })
            .collect();
        let l = hs(("x", "u"), &entries);
        let r_entries: Vec<(i64, i64, u32, u32)> = entries
            .iter()
            .take(700)
            .map(|&(a, b, s, e)| (a, b + 7, s, e))
            .collect();
        let r = hs(("y", "v"), &r_entries);
        for physical in [JoinPhysical::Hash, JoinPhysical::Merge] {
            let s = spec(&[("x", "y")], physical);
            let seq = l.hequi_join(&r, &s).unwrap();
            assert_eq!(seq, oracle(&l, &r, &s).unwrap(), "{physical}");
            for threads in [1, 2, 4] {
                let pool = ExecPool::new(threads);
                assert_eq!(
                    l.hequi_join_par(&r, &s, &pool).unwrap(),
                    seq,
                    "{physical} threads {threads}"
                );
            }
        }
    }
}
