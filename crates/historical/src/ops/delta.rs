//! The valid-time operator δ_{G,V}.

use crate::state::HistoricalState;
use crate::texpr::TemporalExpr;
use crate::tpred::TemporalPred;
use crate::Result;

impl HistoricalState {
    /// The new historical operator `δ_{G,V}(E)` (paper §4).
    ///
    /// For each historical tuple, the predicate `G ∈ 𝓖` examines the
    /// tuple's valid time (selection on the valid-time component); tuples
    /// that pass have their valid time replaced by the value of the
    /// temporal expression `V ∈ 𝓥` (projection on the valid-time
    /// component). Tuples whose new valid time is empty are dropped,
    /// preserving the historical-state invariant.
    pub fn delta(&self, g: &TemporalPred, v: &TemporalExpr) -> Result<HistoricalState> {
        // A single scan over the sorted run: δ rewrites valid times but
        // never the value tuples, so the surviving subsequence is already
        // in canonical order.
        let mut out = Vec::with_capacity(self.len());
        for (t, e) in self.run() {
            if g.eval(e) {
                let ne = v.eval(e);
                if !ne.is_empty() {
                    out.push((t.clone(), ne));
                }
            }
        }
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }

    /// Shorthand: the historical state restricted to facts valid at
    /// chronon `c`, with their full valid times retained. Combine with
    /// [`HistoricalState::timeslice`] when only the values are wanted.
    pub fn valid_at(&self, c: crate::chronon::Chronon) -> Result<HistoricalState> {
        self.delta(&TemporalPred::valid_at(c), &TemporalExpr::ValidTime)
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement, TemporalExpr, TemporalPred};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn emp() -> HistoricalState {
        let schema = Schema::new(vec![("name", DomainType::Str)]).unwrap();
        HistoricalState::new(
            schema,
            vec![
                (
                    Tuple::new(vec![Value::str("alice")]),
                    TemporalElement::period(0, 5),
                ),
                (
                    Tuple::new(vec![Value::str("bob")]),
                    TemporalElement::period(3, 9),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn delta_selects_on_valid_time() {
        let d = emp()
            .delta(&TemporalPred::valid_at(1), &TemporalExpr::ValidTime)
            .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.valid_time(&Tuple::new(vec![Value::str("alice")]))
                .unwrap(),
            &TemporalElement::period(0, 5)
        );
    }

    #[test]
    fn delta_projects_valid_time() {
        let window = TemporalElement::period(2, 6);
        let d = emp()
            .delta(
                &TemporalPred::True,
                &TemporalExpr::intersect(TemporalExpr::ValidTime, TemporalExpr::constant(window)),
            )
            .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(
            d.valid_time(&Tuple::new(vec![Value::str("alice")]))
                .unwrap(),
            &TemporalElement::period(2, 5)
        );
        assert_eq!(
            d.valid_time(&Tuple::new(vec![Value::str("bob")])).unwrap(),
            &TemporalElement::period(3, 6)
        );
    }

    #[test]
    fn delta_drops_tuples_with_empty_result_time() {
        let d = emp()
            .delta(
                &TemporalPred::True,
                &TemporalExpr::intersect(
                    TemporalExpr::ValidTime,
                    TemporalExpr::constant(TemporalElement::period(100, 200)),
                ),
            )
            .unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn delta_with_identity_arguments_is_identity() {
        let e = emp();
        assert_eq!(
            e.delta(&TemporalPred::True, &TemporalExpr::ValidTime)
                .unwrap(),
            e
        );
    }

    #[test]
    fn delta_false_is_empty() {
        assert!(emp()
            .delta(&TemporalPred::False, &TemporalExpr::ValidTime)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn valid_at_shorthand() {
        let d = emp().valid_at(4).unwrap();
        assert_eq!(d.len(), 2);
        let d = emp().valid_at(7).unwrap();
        assert_eq!(d.len(), 1);
    }
}
