//! Historical cartesian product (×̂).

use crate::state::HistoricalState;
use crate::Result;

impl HistoricalState {
    /// Historical product `E₁ ×̂ E₂`.
    ///
    /// Concatenated tuples are valid exactly when both constituents were:
    /// the result's valid time is the intersection of the operands', and
    /// pairs with disjoint valid times do not appear.
    ///
    /// The kernel is a nested loop appending into a flat buffer: distinct
    /// left tuples of equal arity differ before the concatenation point,
    /// so the blocked output (a subsequence of the full pair grid) is
    /// already in canonical order — no sort, no per-pair tree insert.
    pub fn hproduct(&self, other: &HistoricalState) -> Result<HistoricalState> {
        let schema = self.schema().product(other.schema())?;
        let mut out = Vec::with_capacity(self.len() * other.len());
        for (l, le) in self.iter() {
            for (r, re) in other.iter() {
                let e = le.intersect(re);
                if !e.is_empty() {
                    out.push((l.concat(r), e));
                }
            }
        }
        Ok(HistoricalState::from_sorted_vec(schema, out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn st(attr: &str, entries: &[(&str, u32, u32)]) -> HistoricalState {
        let schema = Schema::new(vec![(attr, DomainType::Str)]).unwrap();
        HistoricalState::new(
            schema,
            entries.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::str(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn product_intersects_valid_times() {
        let p = st("x", &[("a", 0, 10)])
            .hproduct(&st("y", &[("b", 5, 15)]))
            .unwrap();
        assert_eq!(p.len(), 1);
        let e = p
            .valid_time(&Tuple::new(vec![Value::str("a"), Value::str("b")]))
            .unwrap();
        assert_eq!(e, &TemporalElement::period(5, 10));
    }

    #[test]
    fn disjoint_valid_times_produce_nothing() {
        let p = st("x", &[("a", 0, 5)])
            .hproduct(&st("y", &[("b", 5, 10)]))
            .unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn product_rejects_name_clash() {
        assert!(st("x", &[("a", 0, 5)])
            .hproduct(&st("x", &[("b", 0, 5)]))
            .is_err());
    }

    #[test]
    fn timeslice_correspondence() {
        let a = st("x", &[("a", 0, 8), ("b", 2, 6)]);
        let b = st("y", &[("c", 3, 12)]);
        let p = a.hproduct(&b).unwrap();
        for c in 0..14 {
            assert_eq!(
                p.timeslice(c),
                a.timeslice(c).product(&b.timeslice(c)).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
