//! Partitioned (parallel) variants of the historical operators.
//!
//! The same partition/merge discipline as the snapshot kernels
//! (`txtime_snapshot::ops::par`), applied to sorted-run historical
//! states: operands are split on slice ranges of the canonical run
//! (an O(1) partitioning — no per-entry collection), ranges are
//! evaluated on scoped worker threads, and the per-range results are
//! concatenated in range order. σ̂, π̂-free kernels and −̂ yield disjoint
//! sorted runs; ×̂ chunks the left operand so runs stay disjoint and
//! sorted; ∪̂ and −̂ split *both* operands at aligned pivot tuples so
//! each chunk is an independent two-pointer merge.

use std::ops::Range;

use txtime_exec::{ExecPool, OpKind};
use txtime_snapshot::Predicate;

use crate::ops::hmerge::{hmerge_difference, hmerge_union};
use crate::state::{Entry, HistoricalState};
use crate::Result;

/// Minimum entries per chunk for the entry-at-a-time kernels; sourced
/// from the shared per-kernel heuristic.
const SET_GRAIN: usize = OpKind::HSelect.min_chunk();

/// Minimum output pairs per chunk for the product kernel.
const PRODUCT_PAIR_GRAIN: usize = OpKind::HProduct.min_chunk();

/// Split two sorted runs into at most `want` aligned range pairs: the
/// left run is cut at evenly spaced indices and the right run at the
/// matching pivot tuples, so each pair of ranges can be merged
/// independently and the per-pair outputs concatenated in order.
pub(crate) fn aligned_parts(
    left: &[Entry],
    right: &[Entry],
    want: usize,
) -> Vec<(Range<usize>, Range<usize>)> {
    let want = want.max(1);
    let mut cuts: Vec<(usize, usize)> = Vec::with_capacity(want + 1);
    cuts.push((0, 0));
    let mut prev_l = 0usize;
    for k in 1..want {
        let l = k * left.len() / want;
        if l <= prev_l || l >= left.len() {
            continue;
        }
        let pivot = &left[l].0;
        let r = right.partition_point(|(t, _)| t < pivot);
        cuts.push((l, r));
        prev_l = l;
    }
    cuts.push((left.len(), right.len()));
    cuts.windows(2)
        .map(|w| (w[0].0..w[1].0, w[0].1..w[1].1))
        .collect()
}

impl HistoricalState {
    /// [`HistoricalState::hselect`] evaluated over partitioned chunks.
    pub fn hselect_par(&self, predicate: &Predicate, pool: &ExecPool) -> Result<HistoricalState> {
        let compiled = predicate.compile(self.schema())?;
        let runs = pool.map_chunks(OpKind::HSelect, self.run(), SET_GRAIN, |chunk| {
            chunk
                .iter()
                .filter(|(t, _)| compiled.eval(t))
                .cloned()
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
        for run in runs {
            out.extend(run);
        }
        if out.len() == self.len() {
            return Ok(self.clone());
        }
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }

    /// [`HistoricalState::hproject`] evaluated over partitioned chunks.
    pub fn hproject_par(
        &self,
        attrs: &[impl AsRef<str>],
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let runs = pool.map_chunks(OpKind::HProject, self.run(), SET_GRAIN, |chunk| {
            chunk
                .iter()
                .map(|(t, e)| (t.project(&indices), e.clone()))
                .collect::<Vec<_>>()
        });
        // Chunks are contiguous input ranges, so the concatenation scans
        // projected entries in input order; from_unsorted_vec coalesces
        // collisions with the same left-to-right element unions as the
        // sequential kernel, independent of chunking.
        let mut out = Vec::with_capacity(self.len());
        for run in runs {
            out.extend(run);
        }
        Ok(HistoricalState::from_unsorted_vec(schema, out))
    }

    /// [`HistoricalState::hproduct`] with the left operand partitioned.
    pub fn hproduct_par(
        &self,
        other: &HistoricalState,
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        let schema = self.schema().product(other.schema())?;
        let grain = (PRODUCT_PAIR_GRAIN / other.len().max(1)).max(1);
        let runs = pool.map_chunks(OpKind::HProduct, self.run(), grain, |chunk| {
            let mut pairs = Vec::new();
            for (l, le) in chunk {
                for (r, re) in other.run() {
                    let e = le.intersect(re);
                    if !e.is_empty() {
                        pairs.push((l.concat(r), e));
                    }
                }
            }
            pairs
        });
        let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
        for run in runs {
            out.extend(run);
        }
        Ok(HistoricalState::from_sorted_vec(schema, out))
    }

    /// [`HistoricalState::hunion`] partitioned into aligned range pairs,
    /// each merged independently.
    pub fn hunion_par(&self, other: &HistoricalState, pool: &ExecPool) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || self.shares_run(other) {
            return self.hunion(other);
        }
        let want = (self.len() + other.len()).div_ceil(SET_GRAIN).max(1);
        let parts = aligned_parts(self.run(), other.run(), want);
        let runs = pool.map_chunks(OpKind::HUnion, &parts, 1, |chunk| {
            let mut out = Vec::new();
            for (lr, rr) in chunk {
                out.extend(hmerge_union(
                    &self.run()[lr.clone()],
                    &other.run()[rr.clone()],
                ));
            }
            out
        });
        let mut out = Vec::with_capacity(runs.iter().map(Vec::len).sum());
        for run in runs {
            out.extend(run);
        }
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }

    /// [`HistoricalState::hdifference`] partitioned into aligned range
    /// pairs, each subtracted independently.
    pub fn hdifference_par(
        &self,
        other: &HistoricalState,
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || self.shares_run(other) {
            return self.hdifference(other);
        }
        let want = self.len().div_ceil(SET_GRAIN).max(1);
        let parts = aligned_parts(self.run(), other.run(), want);
        let runs = pool.map_chunks(OpKind::HDifference, &parts, 1, |chunk| {
            let mut out = Vec::new();
            let mut changed = false;
            for (lr, rr) in chunk {
                let (survivors, c) =
                    hmerge_difference(&self.run()[lr.clone()], &other.run()[rr.clone()]);
                changed |= c;
                out.extend(survivors);
            }
            (out, changed)
        });
        if !runs.iter().any(|(_, changed)| *changed) {
            // No element changed: share the left run, like the
            // sequential kernel.
            return Ok(self.clone());
        }
        let mut out = Vec::with_capacity(runs.iter().map(|(r, _)| r.len()).sum());
        for (run, _) in runs {
            out.extend(run);
        }
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_historical_state, HistGenConfig};
    use txtime_snapshot::generate::GenConfig;
    use txtime_snapshot::rng::rngs::StdRng;
    use txtime_snapshot::rng::SeedableRng;
    use txtime_snapshot::{DomainType, Schema, Value};

    fn schema(prefix: &str) -> Schema {
        Schema::new(vec![
            (format!("{prefix}0"), DomainType::Int),
            (format!("{prefix}1"), DomainType::Str),
        ])
        .unwrap()
    }

    fn random(seed: u64, prefix: &str, cardinality: usize) -> HistoricalState {
        let cfg = HistGenConfig {
            values: GenConfig {
                arity: 2,
                cardinality,
                int_range: 64,
                str_pool: 8,
            },
            horizon: 50,
            max_periods: 3,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        random_historical_state(&mut rng, &schema(prefix), &cfg)
    }

    #[test]
    fn aligned_parts_cover_both_runs_in_order() {
        let a = random(7, "a", 2000);
        let b = random(8, "a", 1500);
        for want in [1, 2, 5, 16] {
            let parts = aligned_parts(a.run(), b.run(), want);
            assert_eq!(parts.first().unwrap().0.start, 0);
            assert_eq!(parts.first().unwrap().1.start, 0);
            assert_eq!(parts.last().unwrap().0.end, a.len());
            assert_eq!(parts.last().unwrap().1.end, b.len());
            for w in parts.windows(2) {
                assert_eq!(w[0].0.end, w[1].0.start);
                assert_eq!(w[0].1.end, w[1].1.start);
            }
        }
    }

    #[test]
    fn partitioned_kernels_match_sequential() {
        let a = random(1, "a", 2500);
        let b = random(2, "a", 2500);
        let c = random(3, "c", 30);
        let pred = Predicate::gt_const("a0", Value::Int(20));
        for threads in [1, 2, 3, 8] {
            let pool = ExecPool::new(threads);
            assert_eq!(
                a.hselect(&pred).unwrap(),
                a.hselect_par(&pred, &pool).unwrap()
            );
            assert_eq!(
                a.hproject(&["a1"]).unwrap(),
                a.hproject_par(&["a1"], &pool).unwrap()
            );
            assert_eq!(a.hunion(&b).unwrap(), a.hunion_par(&b, &pool).unwrap());
            assert_eq!(
                a.hdifference(&b).unwrap(),
                a.hdifference_par(&b, &pool).unwrap()
            );
            assert_eq!(a.hproduct(&c).unwrap(), a.hproduct_par(&c, &pool).unwrap());
        }
    }

    #[test]
    fn partitioned_kernels_preserve_errors() {
        let a = random(1, "a", 8);
        let pool = ExecPool::new(4);
        assert!(a
            .hselect_par(&Predicate::eq_const("ghost", Value::Int(0)), &pool)
            .is_err());
        assert!(a.hproject_par(&["ghost"], &pool).is_err());
        assert!(a.hproduct_par(&a, &pool).is_err());
        let other = random(2, "z", 8);
        assert!(a.hunion_par(&other, &pool).is_err());
        assert!(a.hdifference_par(&other, &pool).is_err());
    }

    #[test]
    fn partitioned_identity_shortcuts_still_share() {
        let a = random(1, "a", 1200);
        let empty = HistoricalState::empty(schema("a"));
        let pool = ExecPool::new(4);
        let u = a.hunion_par(&empty, &pool).unwrap();
        assert!(a.shares_run(&u));
        let d = a.hdifference_par(&empty, &pool).unwrap();
        assert!(a.shares_run(&d));
        // A value-equal twin with a distinct run still subtracts to keep
        // everything; the left run is shared by the no-change shortcut.
        let twin = HistoricalState::new(schema("a"), a.iter().map(|(t, e)| (t.clone(), e.clone())))
            .unwrap();
        assert!(!a.shares_run(&twin));
        let kept = a
            .hdifference_par(&twin.hdifference_par(&a, &pool).unwrap(), &pool)
            .unwrap();
        assert!(a.shares_run(&kept));
    }
}
