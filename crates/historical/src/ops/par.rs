//! Partitioned (parallel) variants of the historical operators.
//!
//! The same partition/merge discipline as the snapshot kernels
//! (`txtime_snapshot::ops::par`), applied to `BTreeMap`-backed historical
//! states: operands are split into contiguous ranges of the canonical
//! tuple order, ranges are evaluated on scoped worker threads, and the
//! per-range results are merged in range order. σ̂ and −̂ yield disjoint
//! sorted runs; ×̂ chunks the left operand so runs stay disjoint and
//! sorted; π̂ and ∪̂ merge valid-time elements with the same commutative
//! `TemporalElement::union` the sequential kernels use, so the merged
//! content is independent of scheduling.

use std::collections::BTreeMap;

use txtime_exec::{ExecPool, OpKind};
use txtime_snapshot::{Predicate, Tuple};

use crate::element::TemporalElement;
use crate::state::HistoricalState;
use crate::Result;

/// Minimum entries per chunk for the entry-at-a-time kernels.
const SET_GRAIN: usize = 512;

/// Minimum output pairs per chunk for the product kernel.
const PRODUCT_PAIR_GRAIN: usize = 4096;

impl HistoricalState {
    /// [`HistoricalState::hselect`] evaluated over partitioned chunks.
    pub fn hselect_par(&self, predicate: &Predicate, pool: &ExecPool) -> Result<HistoricalState> {
        let compiled = predicate.compile(self.schema())?;
        let items: Vec<(&Tuple, &TemporalElement)> = self.iter().collect();
        let runs = pool.map_chunks(OpKind::HSelect, &items, SET_GRAIN, |chunk| {
            chunk
                .iter()
                .filter(|(t, _)| compiled.eval(t))
                .map(|&(t, e)| (t.clone(), e.clone()))
                .collect::<Vec<_>>()
        });
        let mut map = BTreeMap::new();
        for run in runs {
            map.extend(run);
        }
        Ok(HistoricalState::from_checked(self.schema().clone(), map))
    }

    /// [`HistoricalState::hproject`] evaluated over partitioned chunks.
    pub fn hproject_par(
        &self,
        attrs: &[impl AsRef<str>],
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let items: Vec<(&Tuple, &TemporalElement)> = self.iter().collect();
        let mut maps = pool
            .map_chunks(OpKind::HProject, &items, SET_GRAIN, |chunk| {
                let mut local: BTreeMap<Tuple, TemporalElement> = BTreeMap::new();
                for &(t, e) in chunk {
                    let p = t.project(&indices);
                    match local.get_mut(&p) {
                        Some(existing) => *existing = existing.union(e),
                        None => {
                            local.insert(p, e.clone());
                        }
                    }
                }
                local
            })
            .into_iter();
        // Cross-chunk collisions union their elements; `union` is
        // commutative and associative, so the merged content does not
        // depend on chunking.
        let mut map = maps.next().unwrap_or_default();
        for local in maps {
            for (t, e) in local {
                match map.get_mut(&t) {
                    Some(existing) => *existing = existing.union(&e),
                    None => {
                        map.insert(t, e);
                    }
                }
            }
        }
        Ok(HistoricalState::from_checked(schema, map))
    }

    /// [`HistoricalState::hproduct`] with the left operand partitioned.
    pub fn hproduct_par(
        &self,
        other: &HistoricalState,
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        let schema = self.schema().product(other.schema())?;
        let grain = (PRODUCT_PAIR_GRAIN / other.len().max(1)).max(1);
        let items: Vec<(&Tuple, &TemporalElement)> = self.iter().collect();
        let runs = pool.map_chunks(OpKind::HProduct, &items, grain, |chunk| {
            let mut pairs = Vec::new();
            for &(l, le) in chunk {
                for (r, re) in other.iter() {
                    let e = le.intersect(re);
                    if !e.is_empty() {
                        pairs.push((l.concat(r), e));
                    }
                }
            }
            pairs
        });
        let mut map = BTreeMap::new();
        for run in runs {
            map.extend(run);
        }
        Ok(HistoricalState::from_checked(schema, map))
    }

    /// [`HistoricalState::hunion`] with the element merge partitioned
    /// over the right operand.
    pub fn hunion_par(&self, other: &HistoricalState, pool: &ExecPool) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || std::ptr::eq(self.entries(), other.entries()) {
            return self.hunion(other);
        }
        let items: Vec<(&Tuple, &TemporalElement)> = other.iter().collect();
        let runs = pool.map_chunks(OpKind::HUnion, &items, SET_GRAIN, |chunk| {
            chunk
                .iter()
                .map(|&(t, e)| {
                    let merged = match self.valid_time(t) {
                        Some(mine) => mine.union(e),
                        None => e.clone(),
                    };
                    (t.clone(), merged)
                })
                .collect::<Vec<_>>()
        });
        let mut map = self.entries().clone();
        for run in runs {
            map.extend(run);
        }
        Ok(HistoricalState::from_checked(self.schema().clone(), map))
    }

    /// [`HistoricalState::hdifference`] with the element subtraction
    /// partitioned over the left operand.
    pub fn hdifference_par(
        &self,
        other: &HistoricalState,
        pool: &ExecPool,
    ) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if self.is_empty() || other.is_empty() || std::ptr::eq(self.entries(), other.entries()) {
            return self.hdifference(other);
        }
        let items: Vec<(&Tuple, &TemporalElement)> = self.iter().collect();
        let runs = pool.map_chunks(OpKind::HDifference, &items, SET_GRAIN, |chunk| {
            let mut survivors = Vec::with_capacity(chunk.len());
            let mut changed = false;
            for &(t, e) in chunk {
                let remaining = match other.valid_time(t) {
                    Some(oe) => e.difference(oe),
                    None => e.clone(),
                };
                changed |= &remaining != e;
                if !remaining.is_empty() {
                    survivors.push((t.clone(), remaining));
                }
            }
            (survivors, changed)
        });
        if !runs.iter().any(|(_, changed)| *changed) {
            // No element changed: share the left map, like the
            // sequential kernel.
            return Ok(self.clone());
        }
        let mut map = BTreeMap::new();
        for (run, _) in runs {
            map.extend(run);
        }
        Ok(HistoricalState::from_checked(self.schema().clone(), map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_historical_state, HistGenConfig};
    use txtime_snapshot::generate::GenConfig;
    use txtime_snapshot::rng::rngs::StdRng;
    use txtime_snapshot::rng::SeedableRng;
    use txtime_snapshot::{DomainType, Schema, Value};

    fn schema(prefix: &str) -> Schema {
        Schema::new(vec![
            (format!("{prefix}0"), DomainType::Int),
            (format!("{prefix}1"), DomainType::Str),
        ])
        .unwrap()
    }

    fn random(seed: u64, prefix: &str, cardinality: usize) -> HistoricalState {
        let cfg = HistGenConfig {
            values: GenConfig {
                arity: 2,
                cardinality,
                int_range: 64,
                str_pool: 8,
            },
            horizon: 50,
            max_periods: 3,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        random_historical_state(&mut rng, &schema(prefix), &cfg)
    }

    #[test]
    fn partitioned_kernels_match_sequential() {
        let a = random(1, "a", 2500);
        let b = random(2, "a", 2500);
        let c = random(3, "c", 30);
        let pred = Predicate::gt_const("a0", Value::Int(20));
        for threads in [1, 2, 3, 8] {
            let pool = ExecPool::new(threads);
            assert_eq!(
                a.hselect(&pred).unwrap(),
                a.hselect_par(&pred, &pool).unwrap()
            );
            assert_eq!(
                a.hproject(&["a1"]).unwrap(),
                a.hproject_par(&["a1"], &pool).unwrap()
            );
            assert_eq!(a.hunion(&b).unwrap(), a.hunion_par(&b, &pool).unwrap());
            assert_eq!(
                a.hdifference(&b).unwrap(),
                a.hdifference_par(&b, &pool).unwrap()
            );
            assert_eq!(a.hproduct(&c).unwrap(), a.hproduct_par(&c, &pool).unwrap());
        }
    }

    #[test]
    fn partitioned_kernels_preserve_errors() {
        let a = random(1, "a", 8);
        let pool = ExecPool::new(4);
        assert!(a
            .hselect_par(&Predicate::eq_const("ghost", Value::Int(0)), &pool)
            .is_err());
        assert!(a.hproject_par(&["ghost"], &pool).is_err());
        assert!(a.hproduct_par(&a, &pool).is_err());
        let other = random(2, "z", 8);
        assert!(a.hunion_par(&other, &pool).is_err());
        assert!(a.hdifference_par(&other, &pool).is_err());
    }

    #[test]
    fn partitioned_identity_shortcuts_still_share() {
        let a = random(1, "a", 1200);
        let empty = HistoricalState::empty(schema("a"));
        let pool = ExecPool::new(4);
        let u = a.hunion_par(&empty, &pool).unwrap();
        assert!(std::ptr::eq(a.entries(), u.entries()));
        let d = a.hdifference_par(&empty, &pool).unwrap();
        assert!(std::ptr::eq(a.entries(), d.entries()));
    }
}
