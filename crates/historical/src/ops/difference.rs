//! Historical difference (−̂).

use std::collections::BTreeMap;

use crate::state::HistoricalState;
use crate::Result;

impl HistoricalState {
    /// Historical difference `E₁ −̂ E₂`.
    ///
    /// A fact survives exactly over the valid time it had in the left
    /// operand minus the valid time it had in the right; tuples whose
    /// valid time becomes empty disappear.
    ///
    /// When the right operand is empty (or the left is), or the operands
    /// share the same underlying map, no element changes and the answer is
    /// an O(1) `Arc` clone (resp. the empty state).
    pub fn hdifference(&self, other: &HistoricalState) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if other.is_empty() || self.is_empty() {
            return Ok(self.clone());
        }
        if std::ptr::eq(self.entries(), other.entries()) {
            return Ok(HistoricalState::empty(self.schema().clone()));
        }
        let mut map = BTreeMap::new();
        let mut changed = false;
        for (t, e) in self.iter() {
            let remaining = match other.valid_time(t) {
                Some(oe) => e.difference(oe),
                None => e.clone(),
            };
            changed |= &remaining != e;
            if !remaining.is_empty() {
                map.insert(t.clone(), remaining);
            }
        }
        if !changed {
            // Value-disjoint operands (or disjoint valid times): share the
            // left map instead of keeping the rebuilt copy.
            return Ok(self.clone());
        }
        Ok(HistoricalState::from_checked(self.schema().clone(), map))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Str)]).unwrap()
    }

    fn st(entries: &[(&str, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            schema(),
            entries.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::str(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn difference_subtracts_valid_time() {
        let d = st(&[("a", 0, 10)])
            .hdifference(&st(&[("a", 3, 5)]))
            .unwrap();
        let e = d.valid_time(&Tuple::new(vec![Value::str("a")])).unwrap();
        assert!(e.contains(0) && e.contains(2) && !e.contains(3) && e.contains(5));
    }

    #[test]
    fn fully_covered_tuples_disappear() {
        let d = st(&[("a", 2, 5)])
            .hdifference(&st(&[("a", 0, 10)]))
            .unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn unrelated_tuples_survive_intact() {
        let d = st(&[("a", 0, 5)]).hdifference(&st(&[("b", 0, 5)])).unwrap();
        assert_eq!(d, st(&[("a", 0, 5)]));
    }

    #[test]
    fn difference_with_self_is_empty() {
        let a = st(&[("a", 0, 5), ("b", 1, 9)]);
        assert!(a.hdifference(&a).unwrap().is_empty());
    }

    #[test]
    fn difference_identity_cases_share_the_entry_map() {
        let a = st(&[("a", 0, 5), ("b", 1, 9)]);
        let kept = a.hdifference(&HistoricalState::empty(schema())).unwrap();
        assert!(std::ptr::eq(a.entries(), kept.entries()));
        // Value-disjoint operands remove nothing.
        let disjoint = a.hdifference(&st(&[("z", 0, 99)])).unwrap();
        assert!(std::ptr::eq(a.entries(), disjoint.entries()));
    }

    #[test]
    fn timeslice_correspondence() {
        let (a, b) = (st(&[("a", 0, 8), ("b", 2, 6)]), st(&[("a", 3, 12)]));
        let d = a.hdifference(&b).unwrap();
        for c in 0..14 {
            assert_eq!(
                d.timeslice(c),
                a.timeslice(c).difference(&b.timeslice(c)).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
