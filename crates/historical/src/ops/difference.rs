//! Historical difference (−̂).

use crate::ops::hmerge::hmerge_difference;
use crate::state::HistoricalState;
use crate::Result;

impl HistoricalState {
    /// Historical difference `E₁ −̂ E₂`.
    ///
    /// A fact survives exactly over the valid time it had in the left
    /// operand minus the valid time it had in the right; tuples whose
    /// valid time becomes empty disappear.
    ///
    /// The kernel walks the left run once, galloping the right cursor
    /// forward with binary jumps. When no element changes (including an
    /// empty right operand, or value/time-disjoint operands), the left
    /// run is reused as-is — an O(1) `Arc` clone.
    pub fn hdifference(&self, other: &HistoricalState) -> Result<HistoricalState> {
        self.schema().require_union_compatible(other.schema())?;
        if other.is_empty() || self.is_empty() {
            return Ok(self.clone());
        }
        if self.shares_run(other) {
            return Ok(HistoricalState::empty(self.schema().clone()));
        }
        let (out, changed) = hmerge_difference(self.run(), other.run());
        if !changed {
            return Ok(self.clone());
        }
        Ok(HistoricalState::from_sorted_vec(self.schema().clone(), out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Str)]).unwrap()
    }

    fn st(entries: &[(&str, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            schema(),
            entries.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::str(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn difference_subtracts_valid_time() {
        let d = st(&[("a", 0, 10)])
            .hdifference(&st(&[("a", 3, 5)]))
            .unwrap();
        let e = d.valid_time(&Tuple::new(vec![Value::str("a")])).unwrap();
        assert!(e.contains(0) && e.contains(2) && !e.contains(3) && e.contains(5));
    }

    #[test]
    fn fully_covered_tuples_disappear() {
        let d = st(&[("a", 2, 5)])
            .hdifference(&st(&[("a", 0, 10)]))
            .unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn unrelated_tuples_survive_intact() {
        let d = st(&[("a", 0, 5)]).hdifference(&st(&[("b", 0, 5)])).unwrap();
        assert_eq!(d, st(&[("a", 0, 5)]));
    }

    #[test]
    fn difference_with_self_is_empty() {
        let a = st(&[("a", 0, 5), ("b", 1, 9)]);
        assert!(a.hdifference(&a).unwrap().is_empty());
    }

    #[test]
    fn difference_identity_cases_share_the_run() {
        let a = st(&[("a", 0, 5), ("b", 1, 9)]);
        let kept = a.hdifference(&HistoricalState::empty(schema())).unwrap();
        assert!(a.shares_run(&kept));
        // Value-disjoint operands remove nothing.
        let disjoint = a.hdifference(&st(&[("z", 0, 99)])).unwrap();
        assert!(a.shares_run(&disjoint));
    }

    #[test]
    fn timeslice_correspondence() {
        let (a, b) = (st(&[("a", 0, 8), ("b", 2, 6)]), st(&[("a", 3, 12)]));
        let d = a.hdifference(&b).unwrap();
        for c in 0..14 {
            assert_eq!(
                d.timeslice(c),
                a.timeslice(c).difference(&b.timeslice(c)).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
