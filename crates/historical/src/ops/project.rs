//! Historical projection (π̂).

use crate::state::HistoricalState;
use crate::Result;

impl HistoricalState {
    /// Historical projection `π̂_X(E)`.
    ///
    /// Value tuples that become equal after projection merge, and their
    /// valid times union: the projected fact was valid whenever *any* of
    /// its pre-images was.
    ///
    /// The kernel is a single scan producing one projected entry per
    /// input entry, then a stable sort that coalesces value-equal entries
    /// in scan order (element union is commutative and associative, so
    /// the result matches the map-based formulation) — skipped when the
    /// projection already preserves strict order.
    pub fn hproject(&self, attrs: &[impl AsRef<str>]) -> Result<HistoricalState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let out = self
            .iter()
            .map(|(t, e)| (t.project(&indices), e.clone()))
            .collect();
        Ok(HistoricalState::from_unsorted_vec(schema, out))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn emp() -> HistoricalState {
        let schema =
            Schema::new(vec![("name", DomainType::Str), ("dept", DomainType::Str)]).unwrap();
        HistoricalState::new(
            schema,
            vec![
                (
                    Tuple::new(vec![Value::str("alice"), Value::str("cs")]),
                    TemporalElement::period(0, 5),
                ),
                (
                    Tuple::new(vec![Value::str("alice"), Value::str("ee")]),
                    TemporalElement::period(5, 10),
                ),
                (
                    Tuple::new(vec![Value::str("bob"), Value::str("cs")]),
                    TemporalElement::period(3, 7),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn projection_merges_valid_times() {
        let p = emp().hproject(&["name"]).unwrap();
        assert_eq!(p.len(), 2);
        let alice = p
            .valid_time(&Tuple::new(vec![Value::str("alice")]))
            .unwrap();
        // alice was somewhere (cs then ee) over [0,10) — one coalesced period.
        assert_eq!(alice, &TemporalElement::period(0, 10));
    }

    #[test]
    fn projection_onto_full_scheme_is_identity() {
        let e = emp();
        assert_eq!(e.hproject(&["name", "dept"]).unwrap(), e);
    }

    #[test]
    fn projection_rejects_unknown() {
        assert!(emp().hproject(&["wage"]).is_err());
    }

    #[test]
    fn timeslice_correspondence() {
        let e = emp();
        let p = e.hproject(&["dept"]).unwrap();
        for c in 0..12 {
            assert_eq!(
                p.timeslice(c),
                e.timeslice(c).project(&["dept"]).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
