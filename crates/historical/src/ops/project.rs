//! Historical projection (π̂).

use std::collections::BTreeMap;

use crate::element::TemporalElement;
use crate::state::HistoricalState;
use crate::Result;
use txtime_snapshot::Tuple;

impl HistoricalState {
    /// Historical projection `π̂_X(E)`.
    ///
    /// Value tuples that become equal after projection merge, and their
    /// valid times union: the projected fact was valid whenever *any* of
    /// its pre-images was.
    pub fn hproject(&self, attrs: &[impl AsRef<str>]) -> Result<HistoricalState> {
        let (schema, indices) = self.schema().project(attrs)?;
        let mut map: BTreeMap<Tuple, TemporalElement> = BTreeMap::new();
        for (t, e) in self.iter() {
            let p = t.project(&indices);
            match map.get_mut(&p) {
                Some(existing) => *existing = existing.union(e),
                None => {
                    map.insert(p, e.clone());
                }
            }
        }
        Ok(HistoricalState::from_checked(schema, map))
    }
}

#[cfg(test)]
mod tests {
    use crate::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, Tuple, Value};

    fn emp() -> HistoricalState {
        let schema =
            Schema::new(vec![("name", DomainType::Str), ("dept", DomainType::Str)]).unwrap();
        HistoricalState::new(
            schema,
            vec![
                (
                    Tuple::new(vec![Value::str("alice"), Value::str("cs")]),
                    TemporalElement::period(0, 5),
                ),
                (
                    Tuple::new(vec![Value::str("alice"), Value::str("ee")]),
                    TemporalElement::period(5, 10),
                ),
                (
                    Tuple::new(vec![Value::str("bob"), Value::str("cs")]),
                    TemporalElement::period(3, 7),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn projection_merges_valid_times() {
        let p = emp().hproject(&["name"]).unwrap();
        assert_eq!(p.len(), 2);
        let alice = p
            .valid_time(&Tuple::new(vec![Value::str("alice")]))
            .unwrap();
        // alice was somewhere (cs then ee) over [0,10) — one coalesced period.
        assert_eq!(alice, &TemporalElement::period(0, 10));
    }

    #[test]
    fn projection_onto_full_scheme_is_identity() {
        let e = emp();
        assert_eq!(e.hproject(&["name", "dept"]).unwrap(), e);
    }

    #[test]
    fn projection_rejects_unknown() {
        assert!(emp().hproject(&["wage"]).is_err());
    }

    #[test]
    fn timeslice_correspondence() {
        let e = emp();
        let p = e.hproject(&["dept"]).unwrap();
        for c in 0..12 {
            assert_eq!(
                p.timeslice(c),
                e.timeslice(c).project(&["dept"]).unwrap(),
                "at chronon {c}"
            );
        }
    }
}
