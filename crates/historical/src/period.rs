//! Periods: half-open intervals of chronons.

use std::fmt;

use crate::chronon::{Chronon, FOREVER};
use crate::error::HistoricalError;
use crate::Result;

/// A non-empty half-open period `[start, end)` of chronons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Period {
    start: Chronon,
    end: Chronon,
}

impl Period {
    /// Creates `[start, end)`; fails unless `start < end`.
    pub fn new(start: Chronon, end: Chronon) -> Result<Period> {
        if start < end {
            Ok(Period { start, end })
        } else {
            Err(HistoricalError::EmptyPeriod { start, end })
        }
    }

    /// `[start, FOREVER)` — valid from `start` until changed.
    pub fn from(start: Chronon) -> Period {
        Period {
            start,
            end: FOREVER,
        }
    }

    /// The single-chronon period `[c, c+1)`.
    pub fn instant(c: Chronon) -> Period {
        debug_assert!(c < FOREVER);
        Period {
            start: c,
            end: c + 1,
        }
    }

    /// Inclusive lower bound.
    pub fn start(self) -> Chronon {
        self.start
    }

    /// Exclusive upper bound.
    pub fn end(self) -> Chronon {
        self.end
    }

    /// Number of chronons covered.
    pub fn duration(self) -> u64 {
        u64::from(self.end) - u64::from(self.start)
    }

    /// Whether `c` lies inside the period.
    pub fn contains(self, c: Chronon) -> bool {
        self.start <= c && c < self.end
    }

    /// Whether the two periods share at least one chronon.
    pub fn overlaps(self, other: Period) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two periods are adjacent (`self.end == other.start` or
    /// vice versa); adjacent periods coalesce.
    pub fn meets(self, other: Period) -> bool {
        self.end == other.start || other.end == self.start
    }

    /// Whether every chronon of `self` precedes every chronon of `other`.
    pub fn precedes(self, other: Period) -> bool {
        self.end <= other.start
    }

    /// The common sub-period, if any.
    pub fn intersect(self, other: Period) -> Option<Period> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Period { start, end })
    }

    /// The merged period, if the two overlap or meet.
    pub fn merge(self, other: Period) -> Option<Period> {
        (self.overlaps(other) || self.meets(other)).then(|| Period {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        })
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == FOREVER {
            write!(f, "[{}, forever)", self.start)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: Chronon, e: Chronon) -> Period {
        Period::new(s, e).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert!(Period::new(5, 5).is_err());
        assert!(Period::new(6, 5).is_err());
    }

    #[test]
    fn containment_is_half_open() {
        let q = p(2, 5);
        assert!(!q.contains(1));
        assert!(q.contains(2));
        assert!(q.contains(4));
        assert!(!q.contains(5));
    }

    #[test]
    fn overlap_cases() {
        assert!(p(0, 5).overlaps(p(4, 10)));
        assert!(!p(0, 5).overlaps(p(5, 10))); // meets, doesn't overlap
        assert!(p(0, 10).overlaps(p(3, 4))); // containment
        assert!(!p(0, 2).overlaps(p(8, 9)));
    }

    #[test]
    fn meets_is_symmetric() {
        assert!(p(0, 5).meets(p(5, 9)));
        assert!(p(5, 9).meets(p(0, 5)));
        assert!(!p(0, 5).meets(p(6, 9)));
    }

    #[test]
    fn precedes_allows_meeting() {
        assert!(p(0, 5).precedes(p(5, 9)));
        assert!(p(0, 5).precedes(p(7, 9)));
        assert!(!p(0, 6).precedes(p(5, 9)));
    }

    #[test]
    fn intersection() {
        assert_eq!(p(0, 5).intersect(p(3, 9)), Some(p(3, 5)));
        assert_eq!(p(0, 5).intersect(p(5, 9)), None);
        assert_eq!(p(0, 10).intersect(p(2, 4)), Some(p(2, 4)));
    }

    #[test]
    fn merge_coalesces_adjacent() {
        assert_eq!(p(0, 5).merge(p(5, 9)), Some(p(0, 9)));
        assert_eq!(p(0, 5).merge(p(3, 9)), Some(p(0, 9)));
        assert_eq!(p(0, 5).merge(p(6, 9)), None);
    }

    #[test]
    fn instant_and_from() {
        assert_eq!(Period::instant(3), p(3, 4));
        assert_eq!(Period::from(7).end(), FOREVER);
        assert_eq!(Period::from(7).to_string(), "[7, forever)");
    }

    #[test]
    fn duration_handles_forever() {
        assert_eq!(p(2, 7).duration(), 5);
        assert_eq!(Period::from(0).duration(), u64::from(FOREVER));
    }
}
