//! Chronons: the quanta of valid time.

/// A chronon — the smallest indivisible unit of valid time.
///
/// Valid time is the clock time at which a fact held in the modeled
/// reality, "independent of the recording of that event in some database".
/// We model the valid-time line as the non-negative integers; an
/// application maps chronons to calendar granules (days, seconds, …) as it
/// sees fit.
pub type Chronon = u32;

/// A sentinel chronon strictly greater than any storable instant, used as
/// the open end of "until changed" periods.
pub const FOREVER: Chronon = Chronon::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forever_dominates() {
        let large: Chronon = 1_000_000;
        assert!(FOREVER > large);
    }
}
