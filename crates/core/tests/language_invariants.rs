//! Property-based tests of the language-level invariants the paper proves
//! or asserts.
//!
//! * Transaction numbers in every state sequence are strictly increasing
//!   (§3.6: the empty-database start "is both necessary and sufficient" to
//!   ensure this).
//! * ρ(I, t) equals replaying only the prefix of commands with commit time
//!   ≤ t — the defining property of a rollback database.
//! * Expression evaluation never changes the database (§3.4).
//! * Sequencing is associative (§3.5).
//! * Orthogonality (§4): for temporal relations, rolling back and then
//!   timeslicing commutes with the order of the two time dimensions.

use proptest::prelude::*;
use txtime_snapshot::rng::SeedableRng;

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::prelude::*;
use txtime_snapshot::generate::GenConfig;
use txtime_snapshot::{DomainType, Schema};

fn fixed_schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 12,
            int_range: 10,
            str_pool: 5,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

fn arb_commands() -> impl Strategy<Value = Vec<Command>> {
    (any::<u64>(), 1usize..30).prop_map(|(seed, len)| {
        let mut rng = txtime_snapshot::rng::rngs::StdRng::seed_from_u64(seed);
        random_commands(&mut rng, &fixed_schema(), &gen_cfg(), len)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transaction_numbers_strictly_increase(cmds in arb_commands()) {
        let db = Sentence::new(cmds).unwrap().eval().unwrap();
        for (_, rel) in db.state.iter() {
            let txs: Vec<u64> = rel.versions().iter().map(|v| v.tx.0).collect();
            prop_assert!(txs.windows(2).all(|w| w[0] < w[1]));
            // And no version postdates the database's own clock.
            prop_assert!(txs.iter().all(|&t| t <= db.tx.0));
        }
    }

    #[test]
    fn rollback_equals_prefix_replay(cmds in arb_commands(), cut in 0usize..30) {
        // Rolling the full database back to the transaction number reached
        // after `cut` commands gives exactly the state the prefix
        // execution produced.
        let cut = cut.min(cmds.len());
        let full = Sentence::new(cmds.clone()).unwrap().eval().unwrap();
        let prefix_db = if cut == 0 {
            Database::empty()
        } else {
            Sentence::new(cmds[..cut].to_vec()).unwrap().eval().unwrap()
        };
        for (name, rel) in prefix_db.state.iter() {
            if rel.versions().is_empty() {
                continue;
            }
            let expected = Expr::current(name).eval(&prefix_db).unwrap();
            let got = Expr::rollback(name.clone(), TxSpec::At(prefix_db.tx))
                .eval(&full)
                .unwrap();
            prop_assert_eq!(got, expected, "relation {}", name);
        }
    }

    #[test]
    fn expression_evaluation_is_pure(cmds in arb_commands()) {
        let db = Sentence::new(cmds).unwrap().eval().unwrap();
        let before = db.clone();
        for (name, rel) in before.state.iter() {
            if rel.versions().is_empty() {
                continue;
            }
            let _ = Expr::current(name).eval(&db).unwrap();
            let _ = Expr::current(name)
                .union(Expr::current(name))
                .eval(&db)
                .unwrap();
        }
        prop_assert_eq!(db, before);
    }

    #[test]
    fn sequencing_associativity(cmds in arb_commands(), split in 1usize..29) {
        let split = split.min(cmds.len().saturating_sub(1)).max(1);
        if cmds.len() < 2 {
            return Ok(());
        }
        let (a, b) = cmds.split_at(split);
        let joined = Sentence::new(a.to_vec()).unwrap()
            .then(Sentence::new(b.to_vec()).unwrap());
        let flat = Sentence::new(cmds.clone()).unwrap();
        prop_assert_eq!(joined.eval().unwrap(), flat.eval().unwrap());
    }

    #[test]
    fn snapshot_relations_never_grow_sequences(cmds in arb_commands()) {
        // Re-type every relation as snapshot; sequences must stay ≤ 1.
        let cmds: Vec<Command> = cmds
            .into_iter()
            .map(|c| match c {
                Command::DefineRelation(i, _) => {
                    Command::define_relation(i, RelationType::Snapshot)
                }
                other => other,
            })
            .collect();
        let db = Sentence::new(cmds).unwrap().eval().unwrap();
        for (_, rel) in db.state.iter() {
            prop_assert!(rel.versions().len() <= 1);
        }
    }

    #[test]
    fn eval_total_never_panics_and_monotonic_clock(cmds in arb_commands(), extra in any::<u64>()) {
        // Salt the command stream with guaranteed-failing commands; the
        // total semantics must skip them without disturbing the clock
        // discipline.
        let mut cmds = cmds;
        let pos = (extra as usize) % (cmds.len() + 1);
        cmds.insert(pos, Command::modify_state("ghost", Expr::current("ghost")));
        let res = Sentence::new(cmds).unwrap().eval_total();
        for (_, rel) in res.database.state.iter() {
            let txs: Vec<u64> = rel.versions().iter().map(|v| v.tx.0).collect();
            prop_assert!(txs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

mod orthogonality {
    use super::*;
    use txtime_historical::{HistoricalState, TemporalElement};
    use txtime_snapshot::{Tuple, Value};

    fn hstate(rows: &[(i64, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            Schema::new(vec![("a0", DomainType::Int)]).unwrap(),
            rows.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::Int(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    /// §4's orthogonality claim made operational: for a temporal relation,
    /// (transaction-time rollback, then valid-time timeslice) is a
    /// well-defined two-dimensional lookup — each historical version is
    /// independent of the valid-time query, and each valid-time query is
    /// independent of which version it is asked of.
    #[test]
    fn rollback_then_timeslice_is_two_dimensional() {
        let v1 = hstate(&[(1, 0, 10)]);
        let v2 = hstate(&[(1, 0, 10), (2, 5, 20)]);
        let db = Sentence::new(vec![
            Command::define_relation("t", RelationType::Temporal),
            Command::modify_state("t", Expr::historical_const(v1.clone())),
            Command::modify_state("t", Expr::historical_const(v2.clone())),
        ])
        .unwrap()
        .eval()
        .unwrap();

        // All four (transaction, valid) corners.
        let at = |tx: u64, c: u32| {
            Expr::hrollback("t", TxSpec::At(TransactionNumber(tx)))
                .eval(&db)
                .unwrap()
                .into_historical()
                .unwrap()
                .timeslice(c)
        };
        assert_eq!(at(2, 7), v1.timeslice(7)); // old version, mid valid time
        assert_eq!(at(3, 7), v2.timeslice(7)); // new version, same valid time
        assert_eq!(at(2, 15), v1.timeslice(15)); // old version knows no tuple 2
        assert!(at(2, 15).is_empty());
        assert_eq!(at(3, 15).len(), 1); // the revision added history
    }
}
