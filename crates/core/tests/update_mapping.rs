//! Correctness of the Quel→algebra update mapping (paper §1: "If these
//! operations in the calculus are formalized, the mapping can be proven
//! correct").
//!
//! The *formalization* here is the obvious tuple-level interpretation of
//! append/delete/replace; the property is that the algebraic encoding in
//! `txtime_core::ext::update` computes exactly the same new state.

use std::collections::BTreeSet;

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::prelude::*;
use txtime_core::{append, delete_where, replace_where, Assignment};
use txtime_snapshot::generate::{random_predicate, random_state, GenConfig};
use txtime_snapshot::{DomainType, Schema, SnapshotState, Tuple, Value};

fn schema() -> Schema {
    Schema::new(vec![
        ("a0", DomainType::Int),
        ("a1", DomainType::Str),
        ("a2", DomainType::Bool),
    ])
    .unwrap()
}

fn cfg() -> GenConfig {
    GenConfig {
        arity: 3,
        cardinality: 16,
        int_range: 10,
        str_pool: 4,
    }
}

fn db_with(state: &SnapshotState) -> Database {
    Sentence::new(vec![
        Command::define_relation("r", RelationType::Rollback),
        Command::modify_state("r", Expr::snapshot_const(state.clone())),
    ])
    .unwrap()
    .eval()
    .unwrap()
}

fn current(db: &Database) -> SnapshotState {
    Expr::current("r")
        .eval(db)
        .unwrap()
        .into_snapshot()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn append_mapping_is_tuple_union(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_state(&mut rng, &schema(), &cfg());
        let extra = random_state(&mut rng, &schema(), &cfg());
        let db = append("r", extra.clone()).execute_total(&db_with(&base));

        // Oracle: plain set union of tuple sets.
        let expected: BTreeSet<Tuple> =
            base.iter().chain(extra.iter()).cloned().collect();
        let got = current(&db);
        prop_assert_eq!(&got.tuples(), &expected);
    }

    #[test]
    fn delete_mapping_is_tuple_filter(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_state(&mut rng, &schema(), &cfg());
        let pred = random_predicate(&mut rng, &schema(), &cfg(), 2);
        let db = delete_where("r", pred.clone()).execute_total(&db_with(&base));

        // Oracle: keep tuples where the predicate is false.
        let compiled = pred.compile(&schema()).unwrap();
        let expected: BTreeSet<Tuple> = base
            .iter()
            .filter(|t| !compiled.eval(t))
            .cloned()
            .collect();
        let got = current(&db);
        prop_assert_eq!(&got.tuples(), &expected);
    }

    #[test]
    fn replace_mapping_is_tuple_rewrite(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_state(&mut rng, &schema(), &cfg());
        let pred = random_predicate(&mut rng, &schema(), &cfg(), 2);
        // Assign one or two of the attributes to random constants,
        // always leaving at least one unassigned.
        let assignments = match rng.gen_range(0..3) {
            0 => vec![Assignment::new("a0", Value::Int(rng.gen_range(0..10)))],
            1 => vec![Assignment::new("a1", Value::str(format!("s{}", rng.gen_range(0..4))))],
            _ => vec![
                Assignment::new("a0", Value::Int(rng.gen_range(0..10))),
                Assignment::new("a2", Value::Bool(rng.gen())),
            ],
        };
        let cmd = replace_where("r", &schema(), pred.clone(), &assignments).unwrap();
        let db = cmd.execute_total(&db_with(&base));

        // Oracle: rewrite matching tuples field-by-field.
        let compiled = pred.compile(&schema()).unwrap();
        let expected: BTreeSet<Tuple> = base
            .iter()
            .map(|t| {
                if compiled.eval(t) {
                    let vals: Vec<Value> = schema()
                        .attributes()
                        .iter()
                        .enumerate()
                        .map(|(i, at)| {
                            assignments
                                .iter()
                                .find(|a| a.attr == *at.name)
                                .map(|a| a.value.clone())
                                .unwrap_or_else(|| t.get(i).clone())
                        })
                        .collect();
                    Tuple::new(vals)
                } else {
                    t.clone()
                }
            })
            .collect();
        let got = current(&db);
        prop_assert_eq!(&got.tuples(), &expected);
    }

    #[test]
    fn update_mappings_preserve_history(seed in any::<u64>()) {
        // Whatever the update does, the prior state stays reachable.
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_state(&mut rng, &schema(), &cfg());
        let pred = random_predicate(&mut rng, &schema(), &cfg(), 1);
        let db0 = db_with(&base);
        let db = delete_where("r", pred).execute_total(&db0);
        let before = Expr::rollback("r", TxSpec::At(TransactionNumber(2)))
            .eval(&db)
            .unwrap()
            .into_snapshot()
            .unwrap();
        prop_assert_eq!(before, base);
    }
}
