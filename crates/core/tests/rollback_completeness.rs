//! Rollback completeness (§5): every snapshot query can be asked of every
//! past database state, and the answer equals what the query would have
//! returned had it been asked at that time.
//!
//! Property: for a random command sequence and a random snapshot query Q
//! over current states, `as_of(Q, t)` evaluated against the *full*
//! database equals `Q` evaluated against the database produced by the
//! command prefix whose clock is `t`.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{as_of, Command, Database, Expr, Sentence};
use txtime_snapshot::generate::{random_predicate, GenConfig};
use txtime_snapshot::{DomainType, Schema};

fn schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 10,
            int_range: 10,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into()],
        churn: 0.4,
    }
}

/// A random query whose leaves are all `ρ(·, ∞)`.
fn random_current_query(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        return Expr::current(["r0", "r1"][rng.gen_range(0..2usize)]);
    }
    match rng.gen_range(0..4) {
        0 => random_current_query(rng, depth - 1).union(random_current_query(rng, depth - 1)),
        1 => random_current_query(rng, depth - 1).difference(random_current_query(rng, depth - 1)),
        2 => random_current_query(rng, depth - 1).select(random_predicate(
            rng,
            &schema(),
            &GenConfig {
                int_range: 10,
                str_pool: 4,
                ..GenConfig::default()
            },
            2,
        )),
        _ => random_current_query(rng, depth - 1).project(vec!["a0".into()]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn as_of_equals_prefix_evaluation(
        seed in any::<u64>(),
        len in 2usize..20,
        q_seed in any::<u64>(),
        depth in 0usize..4,
        cut in 0usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &schema(), &gen_cfg(), len);
        // Choose a prefix that has defined both relations (the defines
        // come first in generated sequences).
        let defines = gen_cfg().relations.len();
        let cut = defines + (cut % (cmds.len() - defines + 1));

        let full = Sentence::new(cmds.clone()).unwrap().eval().unwrap();
        let prefix_cmds: Vec<Command> = cmds[..cut].to_vec();
        let prefix: Database = Sentence::new(prefix_cmds).unwrap().eval().unwrap();

        let mut qrng = StdRng::seed_from_u64(q_seed);
        let q = random_current_query(&mut qrng, depth);
        let rewritten = as_of(&q, prefix.tx);

        match q.eval(&prefix) {
            Ok(expected) => {
                let got = rewritten.eval(&full).unwrap_or_else(|e| {
                    panic!("as-of form failed where prefix evaluation succeeded: {e}\n{q}")
                });
                prop_assert_eq!(got, expected, "query {}", q);
            }
            Err(_) => {
                // Queries touching a relation with no state yet error on
                // the prefix; the as-of form must error (or answer ∅ for
                // the same reason) consistently — we only require it not
                // to fabricate data, which the Ok-arm covers.
            }
        }
    }
}
