#![warn(missing_docs)]

//! The transaction-time algebraic language.
//!
//! This crate is the paper's primary contribution: a language whose
//! *expressions* are a slightly extended relational algebra and whose
//! *commands* provide the side-effects an algebra by itself cannot
//! express. "We adopt a different strategy, leaving the basic structure of
//! the algebra intact, and instead inserting it into another structure of
//! commands that provide the needed side-effects" (§2).
//!
//! The three syntactic domains (§3.1) map to three types:
//!
//! * [`Expr`] — the domain EXPRESSION: constant states, the five
//!   snapshot-algebra operators, their historical counterparts, the
//!   valid-time operator δ, and the rollback operators ρ (snapshot) and
//!   ρ̂ (historical).
//! * [`Command`] — the domain COMMAND: `define_relation`, `modify_state`,
//!   sequencing, plus the documented extensions (`delete_relation`,
//!   scheme evolution, `display`).
//! * [`Sentence`] — the domain SENTENCE: a non-empty command sequence,
//!   always evaluated against the EMPTY database.
//!
//! The semantic domains (§3.2) are in [`semantics::domains`] and
//! [`semantics::database`]; the denotation functions **E** and **C**
//! (§3.4–3.5) are in [`semantics::expr_eval`] and
//! [`semantics::cmd_eval`], and **P** (§3.6) is [`Sentence::eval`].
//!
//! This implementation is the *reference semantics*: persistent values,
//! full state copies, no cleverness. It is deliberately "simple at the
//! expense of efficient direct implementation" (§2) so it can serve as the
//! oracle against which the efficient engines in `txtime-storage` are
//! verified — exactly the correctness methodology §5 prescribes.
//!
//! # Example
//!
//! ```
//! use txtime_core::prelude::*;
//! use txtime_snapshot::{Schema, DomainType, SnapshotState, Value, Predicate};
//!
//! let schema = Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap();
//! let v1 = SnapshotState::from_rows(schema.clone(), vec![
//!     vec![Value::str("alice"), Value::Int(100)],
//! ]).unwrap();
//! let v2 = SnapshotState::from_rows(schema, vec![
//!     vec![Value::str("alice"), Value::Int(100)],
//!     vec![Value::str("bob"), Value::Int(200)],
//! ]).unwrap();
//!
//! // A sentence: define a rollback relation and load two versions.
//! let sentence = Sentence::new(vec![
//!     Command::define_relation("emp", RelationType::Rollback),
//!     Command::modify_state("emp", Expr::snapshot_const(v1.clone())),
//!     Command::modify_state("emp", Expr::snapshot_const(v2.clone())),
//! ]).unwrap();
//! let db = sentence.eval().unwrap();
//!
//! // Roll back: the state as of transaction 2 was v1.
//! let old = Expr::rollback("emp", TxSpec::At(TransactionNumber(2))).eval(&db).unwrap();
//! assert_eq!(old.into_snapshot().unwrap(), v1);
//!
//! // ρ(emp, ∞) sees the current state.
//! let now = Expr::rollback("emp", TxSpec::Current).eval(&db).unwrap();
//! assert_eq!(now.into_snapshot().unwrap(), v2);
//! ```

pub mod error;
pub mod ext;
pub mod generate;
pub mod semantics;
pub mod syntax;

pub use error::{CoreError, EvalError};
pub use ext::asof::as_of;
pub use ext::scheme::SchemeChange;
pub use ext::update::{append, delete_where, replace_where, Assignment};
pub use semantics::database::{Database, DatabaseState};
pub use semantics::domains::{Relation, RelationType, StateValue, TransactionNumber, Version};
pub use semantics::expr_eval::{RollbackFilter, StateSource};
pub use syntax::command::{Command, CommandOutcome};
pub use syntax::expr::{Expr, JoinPhysical, JoinSpec, TxSpec};
pub use syntax::sentence::Sentence;
pub use syntax::span::{CommandSpans, ExprSpans, SentenceSpans, Span};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::semantics::database::Database;
    pub use crate::semantics::domains::{RelationType, StateValue, TransactionNumber};
    pub use crate::syntax::command::{Command, CommandOutcome};
    pub use crate::syntax::expr::{Expr, TxSpec};
    pub use crate::syntax::sentence::Sentence;
}
