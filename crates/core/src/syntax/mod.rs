//! The syntactic domains of §3.1 and §4: expressions, commands, sentences.

pub mod command;
pub mod expr;
pub mod sentence;
pub mod span;
