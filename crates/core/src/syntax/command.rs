//! The COMMAND syntactic domain.
//!
//! ```text
//! C ::= define_relation(I, Y) | modify_state(I, E) | C₁ ; C₂           (§3.1)
//! ```
//!
//! "Commands are the only language constructs that change the database."
//! Sequencing `C₁ ; C₂` is represented by the command *list* inside
//! [`crate::Sentence`]; its associativity is checked by tests there.
//!
//! Three additional command forms are implemented as documented
//! extensions (flagged by [`Command::is_extension`]):
//!
//! * `delete_relation(I)` — from the companion report \[McKenzie &
//!   Snodgrass 1987A\], which the paper cites for exactly this command.
//! * `evolve_scheme(I, Δ)` — scheme evolution, likewise delegated to
//!   \[1987A\] ("changes to the scheme are properly the province of
//!   transaction time").
//! * `display(E)` — §3.1 lists "display the contents of a relation" among
//!   the tasks commands perform; `display` evaluates an expression and
//!   reports the state without changing the database.

use std::fmt;

use crate::ext::scheme::SchemeChange;
use crate::semantics::domains::{RelationType, StateValue};
use crate::syntax::expr::Expr;

/// A command of the language.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Command {
    /// `define_relation(I, Y)`: bind type `Y` and an empty state sequence
    /// to the unbound identifier `I`.
    DefineRelation(String, RelationType),
    /// `modify_state(I, E)`: make the value of `E` the current state of
    /// relation `I`, replacing (snapshot/historical) or appending
    /// (rollback/temporal).
    ModifyState(String, Expr),
    /// Extension \[1987A\]: remove the binding of `I`.
    DeleteRelation(String),
    /// Extension \[1987A\]: evolve the scheme of relation `I`.
    EvolveScheme(String, SchemeChange),
    /// Extension (§3.1's "display the contents of a relation"): evaluate
    /// `E` and report the resulting state; the database is unchanged.
    Display(Expr),
}

impl Command {
    /// `define_relation(ident, rtype)`
    pub fn define_relation(ident: impl Into<String>, rtype: RelationType) -> Command {
        Command::DefineRelation(ident.into(), rtype)
    }

    /// `modify_state(ident, expr)`
    pub fn modify_state(ident: impl Into<String>, expr: Expr) -> Command {
        Command::ModifyState(ident.into(), expr)
    }

    /// `delete_relation(ident)`
    pub fn delete_relation(ident: impl Into<String>) -> Command {
        Command::DeleteRelation(ident.into())
    }

    /// `evolve_scheme(ident, change)`
    pub fn evolve_scheme(ident: impl Into<String>, change: SchemeChange) -> Command {
        Command::EvolveScheme(ident.into(), change)
    }

    /// `display(expr)`
    pub fn display(expr: Expr) -> Command {
        Command::Display(expr)
    }

    /// Whether this command form is one of the documented extensions
    /// rather than part of the paper's base language.
    pub fn is_extension(&self) -> bool {
        matches!(
            self,
            Command::DeleteRelation(_) | Command::EvolveScheme(..) | Command::Display(_)
        )
    }

    /// Whether this command can change the database.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Command::Display(_))
    }

    /// The relation this command writes, if any (used by the transaction
    /// scheduler to compute write sets).
    pub fn write_target(&self) -> Option<&str> {
        match self {
            Command::DefineRelation(i, _)
            | Command::ModifyState(i, _)
            | Command::DeleteRelation(i)
            | Command::EvolveScheme(i, _) => Some(i),
            Command::Display(_) => None,
        }
    }

    /// The command's expression argument, if it has one (`modify_state`
    /// and `display` do; the other forms don't).
    pub fn expr(&self) -> Option<&Expr> {
        match self {
            Command::ModifyState(_, e) | Command::Display(e) => Some(e),
            _ => None,
        }
    }

    /// The command keyword, for diagnostics.
    pub fn keyword(&self) -> &'static str {
        match self {
            Command::DefineRelation(..) => "define_relation",
            Command::ModifyState(..) => "modify_state",
            Command::DeleteRelation(_) => "delete_relation",
            Command::EvolveScheme(..) => "evolve_scheme",
            Command::Display(_) => "display",
        }
    }

    /// The relations this command reads through ρ/ρ̂ in its expression.
    pub fn read_set(&self) -> Vec<&str> {
        match self {
            Command::ModifyState(_, e) | Command::Display(e) => e.read_set(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::DefineRelation(i, y) => write!(f, "define_relation({i}, {y})"),
            Command::ModifyState(i, e) => write!(f, "modify_state({i}, {e})"),
            Command::DeleteRelation(i) => write!(f, "delete_relation({i})"),
            Command::EvolveScheme(i, c) => write!(f, "evolve_scheme({i}, {c})"),
            Command::Display(e) => write!(f, "display({e})"),
        }
    }
}

/// What executing one command did — the engineering-facing counterpart of
/// the paper's purely state-based semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutcome {
    /// `define_relation` bound a fresh identifier.
    Defined,
    /// `modify_state` installed a new state version.
    Modified,
    /// `delete_relation` removed a binding.
    Deleted,
    /// `evolve_scheme` installed a scheme-transformed version.
    Evolved,
    /// `display` evaluated its expression to this state.
    Displayed(StateValue),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::expr::Expr;

    #[test]
    fn extension_flags() {
        assert!(!Command::define_relation("r", RelationType::Snapshot).is_extension());
        assert!(!Command::modify_state("r", Expr::current("r")).is_extension());
        assert!(Command::delete_relation("r").is_extension());
        assert!(Command::display(Expr::current("r")).is_extension());
    }

    #[test]
    fn write_and_read_sets() {
        let c = Command::modify_state("a", Expr::current("b").union(Expr::current("c")));
        assert_eq!(c.write_target(), Some("a"));
        assert_eq!(c.read_set(), vec!["b", "c"]);
        assert!(Command::display(Expr::current("x"))
            .write_target()
            .is_none());
    }

    #[test]
    fn display_form() {
        let c = Command::define_relation("emp", RelationType::Rollback);
        assert_eq!(c.to_string(), "define_relation(emp, rollback)");
    }
}
