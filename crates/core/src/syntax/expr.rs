//! The EXPRESSION syntactic domain.
//!
//! ```text
//! E ::= A | E₁ ∪ E₂ | E₁ − E₂ | E₁ × E₂ | π_X(E) | σ_F(E) | ρ(I, N)        (§3.1)
//!     | (Y, A) | E₁ ∪̂ E₂ | E₁ −̂ E₂ | E₁ ×̂ E₂ | π̂_X(E) | σ̂_F(E)
//!     | δ_{G,V}(E) | ρ̂(I, N)                                               (§4)
//! ```
//!
//! An expression "always evaluate\[s\] to a single snapshot state" — or,
//! with the §4 extension, to a single historical state. Evaluation is
//! side-effect-free; see [`crate::semantics::expr_eval`].

use std::fmt;

use txtime_historical::{HistoricalState, TemporalExpr, TemporalPred};
use txtime_snapshot::{Predicate, SnapshotState};

pub use txtime_snapshot::{JoinPhysical, JoinSpec};

use crate::semantics::domains::TransactionNumber;

/// The NUMERAL argument of a rollback operator: a transaction number or
/// the special symbol ∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TxSpec {
    /// A specific transaction number `N`.
    At(TransactionNumber),
    /// The special symbol ∞: "the state of a relation at the time of the
    /// most recent transaction on the database".
    Current,
}

impl fmt::Display for TxSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxSpec::At(n) => write!(f, "{n}"),
            TxSpec::Current => write!(f, "inf"),
        }
    }
}

/// An expression of the language.
///
/// The snapshot-algebra operators (`Union` … `Select`) require snapshot
/// operands and produce snapshot states; their hatted historical
/// counterparts (`HUnion` … `HSelect`, plus `Delta`) require and produce
/// historical states. `Rollback` (ρ) retrieves snapshot states from
/// snapshot/rollback relations; `HRollback` (ρ̂) retrieves historical
/// states from historical/temporal relations.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// A constant snapshot state `A`.
    SnapshotConst(SnapshotState),
    /// A constant historical state `(historical, A)`.
    HistoricalConst(HistoricalState),
    /// `E₁ ∪ E₂`
    Union(Box<Expr>, Box<Expr>),
    /// `E₁ − E₂`
    Difference(Box<Expr>, Box<Expr>),
    /// `E₁ × E₂`
    Product(Box<Expr>, Box<Expr>),
    /// `π_X(E)`
    Project(Vec<String>, Box<Expr>),
    /// `σ_F(E)`
    Select(Predicate, Box<Expr>),
    /// `ρ(I, N)` — the rollback operator.
    Rollback(String, TxSpec),
    /// `E₁ ∪̂ E₂`
    HUnion(Box<Expr>, Box<Expr>),
    /// `E₁ −̂ E₂`
    HDifference(Box<Expr>, Box<Expr>),
    /// `E₁ ×̂ E₂`
    HProduct(Box<Expr>, Box<Expr>),
    /// `π̂_X(E)`
    HProject(Vec<String>, Box<Expr>),
    /// `σ̂_F(E)`
    HSelect(Predicate, Box<Expr>),
    /// `δ_{G,V}(E)` — valid-time selection and projection.
    Delta(TemporalPred, TemporalExpr, Box<Expr>),
    /// `ρ̂(I, N)` — the historical rollback operator.
    HRollback(String, TxSpec),
    /// A physical equi-join, observationally `σ_spec(E₁ × E₂)`.
    /// Emitted only by the plan search, never by the parser.
    Join(JoinSpec, Box<Expr>, Box<Expr>),
    /// The hatted physical equi-join, observationally `σ̂_spec(E₁ ×̂ E₂)`:
    /// equi-keys match and transaction-time elements intersect.
    HJoin(JoinSpec, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A constant snapshot state.
    pub fn snapshot_const(s: SnapshotState) -> Expr {
        Expr::SnapshotConst(s)
    }

    /// A constant historical state.
    pub fn historical_const(h: HistoricalState) -> Expr {
        Expr::HistoricalConst(h)
    }

    /// `self ∪ other`
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`
    pub fn difference(self, other: Expr) -> Expr {
        Expr::Difference(Box::new(self), Box::new(other))
    }

    /// `self × other`
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// `π_attrs(self)`
    pub fn project(self, attrs: Vec<String>) -> Expr {
        Expr::Project(attrs, Box::new(self))
    }

    /// `σ_pred(self)`
    pub fn select(self, pred: Predicate) -> Expr {
        Expr::Select(pred, Box::new(self))
    }

    /// `ρ(ident, tx)`
    pub fn rollback(ident: impl Into<String>, tx: TxSpec) -> Expr {
        Expr::Rollback(ident.into(), tx)
    }

    /// `ρ(ident, ∞)` — the relation's current state.
    pub fn current(ident: impl Into<String>) -> Expr {
        Expr::Rollback(ident.into(), TxSpec::Current)
    }

    /// `self ∪̂ other`
    pub fn hunion(self, other: Expr) -> Expr {
        Expr::HUnion(Box::new(self), Box::new(other))
    }

    /// `self −̂ other`
    pub fn hdifference(self, other: Expr) -> Expr {
        Expr::HDifference(Box::new(self), Box::new(other))
    }

    /// `self ×̂ other`
    pub fn hproduct(self, other: Expr) -> Expr {
        Expr::HProduct(Box::new(self), Box::new(other))
    }

    /// `π̂_attrs(self)`
    pub fn hproject(self, attrs: Vec<String>) -> Expr {
        Expr::HProject(attrs, Box::new(self))
    }

    /// `σ̂_pred(self)`
    pub fn hselect(self, pred: Predicate) -> Expr {
        Expr::HSelect(pred, Box::new(self))
    }

    /// `δ_{g,v}(self)`
    pub fn delta(self, g: TemporalPred, v: TemporalExpr) -> Expr {
        Expr::Delta(g, v, Box::new(self))
    }

    /// `ρ̂(ident, tx)`
    pub fn hrollback(ident: impl Into<String>, tx: TxSpec) -> Expr {
        Expr::HRollback(ident.into(), tx)
    }

    /// `ρ̂(ident, ∞)` — the current historical state.
    pub fn hcurrent(ident: impl Into<String>) -> Expr {
        Expr::HRollback(ident.into(), TxSpec::Current)
    }

    /// `join[spec](self, other)`
    pub fn join(self, spec: JoinSpec, other: Expr) -> Expr {
        Expr::Join(spec, Box::new(self), Box::new(other))
    }

    /// `hjoin[spec](self, other)`
    pub fn hjoin(self, spec: JoinSpec, other: Expr) -> Expr {
        Expr::HJoin(spec, Box::new(self), Box::new(other))
    }

    /// Whether any node in the tree is a physical join. Engines route
    /// join-bearing plans through the pool-scheduled evaluator so the
    /// join counters are recorded even with a one-thread pool.
    pub fn contains_join(&self) -> bool {
        matches!(self, Expr::Join(..) | Expr::HJoin(..))
            || self.operands().iter().any(|e| e.contains_join())
    }

    /// Whether this expression produces an historical (vs snapshot)
    /// state. Purely syntactic: the outermost operator decides.
    pub fn is_historical(&self) -> bool {
        matches!(
            self,
            Expr::HistoricalConst(_)
                | Expr::HUnion(..)
                | Expr::HDifference(..)
                | Expr::HProduct(..)
                | Expr::HProject(..)
                | Expr::HSelect(..)
                | Expr::Delta(..)
                | Expr::HRollback(..)
                | Expr::HJoin(..)
        )
    }

    /// The relation identifiers this expression reads via ρ/ρ̂, in
    /// first-occurrence order (used by the transaction scheduler to
    /// compute read sets).
    pub fn read_set(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::SnapshotConst(_) | Expr::HistoricalConst(_) => {}
            Expr::Rollback(i, _) | Expr::HRollback(i, _) => {
                if !out.contains(&i.as_str()) {
                    out.push(i);
                }
            }
            Expr::Union(a, b)
            | Expr::Difference(a, b)
            | Expr::Product(a, b)
            | Expr::HUnion(a, b)
            | Expr::HDifference(a, b)
            | Expr::HProduct(a, b)
            | Expr::Join(_, a, b)
            | Expr::HJoin(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Project(_, e)
            | Expr::Select(_, e)
            | Expr::HProject(_, e)
            | Expr::HSelect(_, e)
            | Expr::Delta(_, _, e) => e.collect_reads(out),
        }
    }

    /// Every ρ/ρ̂ leaf of the expression as an `(ident, spec)` pair, in
    /// syntactic order and *without* deduplication — unlike
    /// [`Expr::read_set`], which collapses to distinct identifiers. The
    /// view memo uses the specs to decide which leaves a new transaction
    /// can actually affect (`ρ(I, n)` with `n` below the new transaction
    /// number is immutable under strictly increasing transaction
    /// numbers).
    pub fn reads(&self) -> Vec<(&str, TxSpec)> {
        let mut out = Vec::new();
        self.collect_spec_reads(&mut out);
        out
    }

    fn collect_spec_reads<'a>(&'a self, out: &mut Vec<(&'a str, TxSpec)>) {
        match self {
            Expr::SnapshotConst(_) | Expr::HistoricalConst(_) => {}
            Expr::Rollback(i, spec) | Expr::HRollback(i, spec) => out.push((i, *spec)),
            Expr::Union(a, b)
            | Expr::Difference(a, b)
            | Expr::Product(a, b)
            | Expr::HUnion(a, b)
            | Expr::HDifference(a, b)
            | Expr::HProduct(a, b)
            | Expr::Join(_, a, b)
            | Expr::HJoin(_, a, b) => {
                a.collect_spec_reads(out);
                b.collect_spec_reads(out);
            }
            Expr::Project(_, e)
            | Expr::Select(_, e)
            | Expr::HProject(_, e)
            | Expr::HSelect(_, e)
            | Expr::Delta(_, _, e) => e.collect_spec_reads(out),
        }
    }

    /// The node's direct *expression* operands, in syntactic order
    /// (empty for constants and rollbacks). Analyses that walk the tree
    /// generically — the static checker, span tables — use this instead
    /// of matching every variant.
    pub fn operands(&self) -> Vec<&Expr> {
        match self {
            Expr::SnapshotConst(_)
            | Expr::HistoricalConst(_)
            | Expr::Rollback(..)
            | Expr::HRollback(..) => Vec::new(),
            Expr::Union(a, b)
            | Expr::Difference(a, b)
            | Expr::Product(a, b)
            | Expr::HUnion(a, b)
            | Expr::HDifference(a, b)
            | Expr::HProduct(a, b)
            | Expr::Join(_, a, b)
            | Expr::HJoin(_, a, b) => vec![a, b],
            Expr::Project(_, e)
            | Expr::Select(_, e)
            | Expr::HProject(_, e)
            | Expr::HSelect(_, e)
            | Expr::Delta(_, _, e) => vec![e],
        }
    }

    /// A short name for the node's operator, for diagnostics
    /// (`union`, `hproject`, `rho`, …).
    pub fn operator_name(&self) -> &'static str {
        match self {
            Expr::SnapshotConst(_) => "snapshot constant",
            Expr::HistoricalConst(_) => "historical constant",
            Expr::Union(..) => "union",
            Expr::Difference(..) => "minus",
            Expr::Product(..) => "times",
            Expr::Project(..) => "project",
            Expr::Select(..) => "select",
            Expr::Rollback(..) => "rho",
            Expr::HUnion(..) => "hunion",
            Expr::HDifference(..) => "hminus",
            Expr::HProduct(..) => "htimes",
            Expr::HProject(..) => "hproject",
            Expr::HSelect(..) => "hselect",
            Expr::Delta(..) => "delta",
            Expr::HRollback(..) => "hrho",
            Expr::Join(..) => "join",
            Expr::HJoin(..) => "hjoin",
        }
    }

    /// Number of operator nodes (used by the optimizer's cost heuristics
    /// and by tests on rewrite termination).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::SnapshotConst(_)
            | Expr::HistoricalConst(_)
            | Expr::Rollback(..)
            | Expr::HRollback(..) => 1,
            Expr::Union(a, b)
            | Expr::Difference(a, b)
            | Expr::Product(a, b)
            | Expr::HUnion(a, b)
            | Expr::HDifference(a, b)
            | Expr::HProduct(a, b)
            | Expr::Join(_, a, b)
            | Expr::HJoin(_, a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Project(_, e)
            | Expr::Select(_, e)
            | Expr::HProject(_, e)
            | Expr::HSelect(_, e)
            | Expr::Delta(_, _, e) => 1 + e.node_count(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::SnapshotConst(s) => write!(f, "{s}"),
            Expr::HistoricalConst(h) => write!(f, "(historical, {h})"),
            Expr::Union(a, b) => write!(f, "({a} union {b})"),
            Expr::Difference(a, b) => write!(f, "({a} minus {b})"),
            Expr::Product(a, b) => write!(f, "({a} times {b})"),
            Expr::Project(attrs, e) => write!(f, "project[{}]({e})", attrs.join(", ")),
            Expr::Select(p, e) => write!(f, "select[{p}]({e})"),
            Expr::Rollback(i, n) => write!(f, "rho({i}, {n})"),
            Expr::HUnion(a, b) => write!(f, "({a} hunion {b})"),
            Expr::HDifference(a, b) => write!(f, "({a} hminus {b})"),
            Expr::HProduct(a, b) => write!(f, "({a} htimes {b})"),
            Expr::HProject(attrs, e) => write!(f, "hproject[{}]({e})", attrs.join(", ")),
            Expr::HSelect(p, e) => write!(f, "hselect[{p}]({e})"),
            Expr::Delta(g, v, e) => write!(f, "delta[{g}; {v}]({e})"),
            Expr::HRollback(i, n) => write!(f, "hrho({i}, {n})"),
            Expr::Join(spec, a, b) => write!(f, "join[{spec}]({a}, {b})"),
            Expr::HJoin(spec, a, b) => write!(f, "hjoin[{spec}]({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::Value;

    #[test]
    fn builders_and_display() {
        let e = Expr::current("emp")
            .select(Predicate::gt_const("sal", Value::Int(10)))
            .project(vec!["name".into()]);
        assert_eq!(
            e.to_string(),
            "project[name](select[sal > 10](rho(emp, inf)))"
        );
    }

    #[test]
    fn historical_detection() {
        assert!(Expr::hcurrent("emp").is_historical());
        assert!(!Expr::current("emp").is_historical());
        assert!(Expr::hcurrent("a")
            .hunion(Expr::hcurrent("b"))
            .is_historical());
    }

    #[test]
    fn read_set_deduplicates() {
        let e = Expr::current("a")
            .union(Expr::current("b"))
            .union(Expr::current("a"));
        assert_eq!(e.read_set(), vec!["a", "b"]);
    }

    #[test]
    fn reads_keeps_specs_and_duplicates() {
        let e = Expr::rollback("a", TxSpec::At(TransactionNumber(3)))
            .union(Expr::current("b"))
            .union(Expr::current("a"));
        assert_eq!(
            e.reads(),
            vec![
                ("a", TxSpec::At(TransactionNumber(3))),
                ("b", TxSpec::Current),
                ("a", TxSpec::Current),
            ]
        );
    }

    #[test]
    fn node_count() {
        let e = Expr::current("a").union(Expr::current("b"));
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn txspec_display() {
        assert_eq!(TxSpec::Current.to_string(), "inf");
        assert_eq!(TxSpec::At(TransactionNumber(7)).to_string(), "7");
    }
}
