//! The SENTENCE syntactic domain.
//!
//! "A sentence in our language is a non-empty sequence of commands … Our
//! language requires that the evaluation of a sentence in the language
//! always start with an empty database. This requirement is both necessary
//! and sufficient … to ensure that transaction-number components of the
//! state sequence of each rollback relation in the database will be
//! strictly increasing" (§3.1, §3.6).

use std::fmt;

use crate::error::CoreError;
use crate::semantics::database::Database;
use crate::syntax::command::{Command, CommandOutcome};

/// A sentence: a non-empty command sequence.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sentence {
    commands: Vec<Command>,
}

impl Sentence {
    /// Builds a sentence; fails on an empty command list.
    pub fn new(commands: Vec<Command>) -> Result<Sentence, CoreError> {
        if commands.is_empty() {
            return Err(CoreError::EmptySentence);
        }
        Ok(Sentence { commands })
    }

    /// The commands, in execution order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Appends another command.
    pub fn push(&mut self, command: Command) {
        self.commands.push(command);
    }

    /// Concatenates two sentences (`C₁ ; C₂` at the sentence level).
    pub fn then(mut self, other: Sentence) -> Sentence {
        self.commands.extend(other.commands);
        self
    }
}

impl fmt::Display for Sentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.commands {
            writeln!(f, "{c};")?;
        }
        Ok(())
    }
}

/// The result of executing a sentence with full diagnostics: the final
/// database plus each command's outcome.
#[derive(Debug, Clone)]
pub struct SentenceResult {
    /// The database after the last command.
    pub database: Database,
    /// One entry per command: the outcome, or the error that made it a
    /// no-op under the paper's total semantics.
    pub outcomes: Vec<Result<CommandOutcome, CoreError>>,
}

impl SentenceResult {
    /// Whether every command succeeded.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(Result::is_ok)
    }

    /// The states produced by `display` commands, in order.
    pub fn displayed(&self) -> Vec<&crate::semantics::domains::StateValue> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                Ok(CommandOutcome::Displayed(s)) => Some(s),
                _ => None,
            })
            .collect()
    }
}

impl Sentence {
    /// The semantic function **P** (§3.6): `P⟦C⟧ ≜ C⟦C⟧ (EMPTY, 0)`,
    /// failing on the first invalid command.
    pub fn eval(&self) -> Result<Database, CoreError> {
        let mut db = Database::empty();
        for c in &self.commands {
            let (next, _) = c.execute(&db)?;
            db = next;
        }
        Ok(db)
    }

    /// **P** with the paper's total command semantics: invalid commands
    /// leave the database unchanged, and every command's outcome is
    /// reported.
    pub fn eval_total(&self) -> SentenceResult {
        let mut db = Database::empty();
        let mut outcomes = Vec::with_capacity(self.commands.len());
        for c in &self.commands {
            match c.execute(&db) {
                Ok((next, out)) => {
                    db = next;
                    outcomes.push(Ok(out));
                }
                Err(e) => outcomes.push(Err(e)),
            }
        }
        SentenceResult {
            database: db,
            outcomes,
        }
    }

    /// Continues execution from an existing database (the engine-facing
    /// form; the paper's **P** is `resume` from `(EMPTY, 0)`).
    pub fn resume(&self, db: &Database) -> Result<Database, CoreError> {
        let mut db = db.clone();
        for c in &self.commands {
            let (next, _) = c.execute(&db)?;
            db = next;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::domains::{RelationType, TransactionNumber};
    use crate::syntax::expr::Expr;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn rejects_empty_sentence() {
        assert!(matches!(
            Sentence::new(vec![]),
            Err(CoreError::EmptySentence)
        ));
    }

    #[test]
    fn eval_starts_from_empty_database() {
        let s = Sentence::new(vec![Command::define_relation("r", RelationType::Rollback)]).unwrap();
        let db = s.eval().unwrap();
        assert_eq!(db.tx, TransactionNumber(1));
        assert_eq!(db.state.len(), 1);
    }

    #[test]
    fn sequencing_is_associative() {
        // C⟦C₁, (C₂, C₃)⟧ = C⟦(C₁, C₂), C₃⟧: flattening order is
        // irrelevant, only command order matters.
        let c1 = Command::define_relation("r", RelationType::Rollback);
        let c2 = Command::modify_state("r", Expr::snapshot_const(snap(&[1])));
        let c3 = Command::modify_state("r", Expr::snapshot_const(snap(&[2])));

        let left = Sentence::new(vec![c1.clone(), c2.clone()])
            .unwrap()
            .then(Sentence::new(vec![c3.clone()]).unwrap());
        let right = Sentence::new(vec![c1])
            .unwrap()
            .then(Sentence::new(vec![c2, c3]).unwrap());
        assert_eq!(left.eval().unwrap(), right.eval().unwrap());
    }

    #[test]
    fn transaction_numbers_strictly_increase() {
        let s = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
            Command::define_relation("q", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[2]))),
            Command::modify_state("q", Expr::snapshot_const(snap(&[9]))),
        ])
        .unwrap();
        let db = s.eval().unwrap();
        assert_eq!(db.tx, TransactionNumber(5));
        let r = db.state.lookup("r").unwrap();
        let txs: Vec<u64> = r.versions().iter().map(|v| v.tx.0).collect();
        assert_eq!(txs, vec![2, 4]);
        assert!(txs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn eval_total_records_failures_as_noops() {
        let s = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::define_relation("r", RelationType::Snapshot), // no-op
            Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
        ])
        .unwrap();
        let res = s.eval_total();
        assert!(!res.all_ok());
        assert!(res.outcomes[0].is_ok());
        assert!(res.outcomes[1].is_err());
        assert!(res.outcomes[2].is_ok());
        // The failed define did not consume a transaction number.
        assert_eq!(res.database.tx, TransactionNumber(2));
        assert_eq!(
            res.database.state.lookup("r").unwrap().rtype(),
            RelationType::Rollback
        );
    }

    #[test]
    fn displayed_collects_query_results() {
        let s = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2]))),
            Command::display(Expr::current("r")),
        ])
        .unwrap();
        let res = s.eval_total();
        let shown = res.displayed();
        assert_eq!(shown.len(), 1);
        assert_eq!(shown[0].len(), 2);
    }

    #[test]
    fn resume_continues_from_given_database() {
        let first = Sentence::new(vec![Command::define_relation("r", RelationType::Rollback)])
            .unwrap()
            .eval()
            .unwrap();
        let db = Sentence::new(vec![Command::modify_state(
            "r",
            Expr::snapshot_const(snap(&[5])),
        )])
        .unwrap()
        .resume(&first)
        .unwrap();
        assert_eq!(db.tx, TransactionNumber(2));
    }

    #[test]
    fn display_round_trips_visually() {
        let s = Sentence::new(vec![Command::define_relation("r", RelationType::Temporal)]).unwrap();
        assert_eq!(s.to_string(), "define_relation(r, temporal);\n");
    }
}
