//! Source positions for parsed sentences.
//!
//! The lexer records a line/column for every token; the parser threads
//! those positions into *span tables* that mirror the shape of the AST.
//! Keeping spans out of [`Expr`](crate::Expr)/[`Command`](crate::Command)
//! themselves preserves their structural equality (the optimizer's law
//! tests compare rewritten trees with `==`, and two occurrences of the
//! same expression must stay equal regardless of where they were
//! written), while still letting diagnostics cite `line:col`.

use std::fmt;

use crate::syntax::command::Command;
use crate::syntax::expr::Expr;
use crate::syntax::sentence::Sentence;

/// A source position: 1-based line and column. `0:0` means "unknown"
/// (the AST was built programmatically, not parsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number, 0 if unknown.
    pub line: usize,
    /// 1-based column number, 0 if unknown.
    pub col: usize,
}

impl Span {
    /// A span at the given position.
    pub fn new(line: usize, col: usize) -> Span {
        Span { line, col }
    }

    /// The "unknown position" span.
    pub fn unknown() -> Span {
        Span::default()
    }

    /// Whether this span carries a real position.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "?:?")
        }
    }
}

/// The span table for one expression: the position of the node's own
/// operator plus one entry per *expression* operand, in the operand
/// order of the [`Expr`] variant. (Predicates and temporal operands are
/// covered by the node's own span.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExprSpans {
    /// Where this node's operator (or constant) starts.
    pub span: Span,
    /// Span tables of the node's expression operands, in order.
    pub children: Vec<ExprSpans>,
}

impl ExprSpans {
    /// A leaf table (no expression operands).
    pub fn leaf(span: Span) -> ExprSpans {
        ExprSpans {
            span,
            children: Vec::new(),
        }
    }

    /// A table for a node with the given operand tables.
    pub fn node(span: Span, children: Vec<ExprSpans>) -> ExprSpans {
        ExprSpans { span, children }
    }

    /// An all-unknown table matching the shape of `expr`, for sentences
    /// built programmatically rather than parsed.
    pub fn unknown_for(expr: &Expr) -> ExprSpans {
        ExprSpans {
            span: Span::unknown(),
            children: expr
                .operands()
                .iter()
                .map(|e| ExprSpans::unknown_for(e))
                .collect(),
        }
    }
}

/// The span table for one command: the position of the command keyword
/// plus the table of its expression argument, if it has one.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommandSpans {
    /// Where the command keyword starts.
    pub head: Span,
    /// The span table of the command's expression argument
    /// (`modify_state`, `display`), if any.
    pub expr: Option<ExprSpans>,
}

impl CommandSpans {
    /// An all-unknown table matching the shape of `command`.
    pub fn unknown_for(command: &Command) -> CommandSpans {
        CommandSpans {
            head: Span::unknown(),
            expr: command.expr().map(ExprSpans::unknown_for),
        }
    }
}

/// The span table for a whole sentence: one entry per command.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SentenceSpans {
    /// One table per command, in sentence order.
    pub commands: Vec<CommandSpans>,
}

impl SentenceSpans {
    /// An all-unknown table matching the shape of `sentence`.
    pub fn unknown_for(sentence: &Sentence) -> SentenceSpans {
        SentenceSpans {
            commands: sentence
                .commands()
                .iter()
                .map(CommandSpans::unknown_for)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::expr::TxSpec;

    #[test]
    fn unknown_tables_mirror_expression_shape() {
        let e = Expr::rollback("a", TxSpec::Current)
            .union(Expr::rollback("b", TxSpec::Current))
            .project(vec!["x".to_string()]);
        let t = ExprSpans::unknown_for(&e);
        assert_eq!(t.children.len(), 1); // project has one operand
        assert_eq!(t.children[0].children.len(), 2); // union has two
        assert!(!t.span.is_known());
        assert_eq!(t.span.to_string(), "?:?");
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }

    #[test]
    fn unknown_tables_mirror_sentence_shape() {
        let s = Sentence::new(vec![
            Command::define_relation("r", crate::RelationType::Rollback),
            Command::modify_state("r", Expr::rollback("r", TxSpec::Current)),
        ])
        .unwrap();
        let t = SentenceSpans::unknown_for(&s);
        assert_eq!(t.commands.len(), 2);
        assert!(t.commands[0].expr.is_none());
        assert!(t.commands[1].expr.is_some());
    }
}
