//! Scheme evolution (extension; \[McKenzie & Snodgrass 1987A\]).
//!
//! "The scheme is associated solely with transaction time, since it
//! defines how reality is modeled by the database … as the scheme
//! describes how data are stored in the database, changes to the scheme
//! are properly the province of transaction time" (§5).
//!
//! Accordingly, a scheme change behaves like `modify_state`: it installs a
//! new version (with the transformed scheme) at transaction `n+1`. For
//! rollback and temporal relations the pre-change versions — with their
//! old schemes — remain reachable by ρ/ρ̂ at earlier transaction numbers,
//! which is precisely what associating the scheme with transaction time
//! means.

use std::fmt;

use txtime_historical::HistoricalState;
use txtime_snapshot::{Attribute, DomainType, Schema, SnapshotState, Tuple, Value};

use crate::error::CoreError;
use crate::semantics::database::Database;
use crate::semantics::domains::StateValue;
use crate::syntax::command::CommandOutcome;

/// A single scheme-evolution step.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchemeChange {
    /// Add an attribute; existing tuples receive `default`.
    AddAttribute {
        /// The new attribute's name.
        name: String,
        /// The new attribute's domain.
        domain: DomainType,
        /// The value given to existing tuples.
        default: Value,
    },
    /// Drop an attribute; tuples that become equal merge (set semantics,
    /// with valid-time union for historical states).
    DropAttribute(String),
    /// Rename an attribute, keeping its domain and every tuple unchanged.
    RenameAttribute {
        /// The existing name.
        from: String,
        /// The new name.
        to: String,
    },
}

impl fmt::Display for SchemeChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeChange::AddAttribute {
                name,
                domain,
                default,
            } => write!(f, "add {name}: {domain} default {default}"),
            SchemeChange::DropAttribute(name) => write!(f, "drop {name}"),
            SchemeChange::RenameAttribute { from, to } => write!(f, "rename {from} to {to}"),
        }
    }
}

impl SchemeChange {
    /// Applies the change to a snapshot state.
    pub fn apply_snapshot(&self, state: &SnapshotState) -> Result<SnapshotState, CoreError> {
        match self {
            SchemeChange::AddAttribute {
                name,
                domain,
                default,
            } => {
                if default.domain() != *domain {
                    return Err(CoreError::SchemeChange(format!(
                        "default value {default} is not in domain {domain}"
                    )));
                }
                let mut attrs = state.schema().attributes().to_vec();
                attrs.push(Attribute::new(name, *domain));
                let schema = Schema::from_attributes(attrs)
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))?;
                let rows = state.iter().map(|t| {
                    let mut vals = t.values().to_vec();
                    vals.push(default.clone());
                    Tuple::new(vals)
                });
                SnapshotState::new(schema, rows).map_err(|e| CoreError::SchemeChange(e.to_string()))
            }
            SchemeChange::DropAttribute(name) => {
                let keep: Vec<String> = state
                    .schema()
                    .attributes()
                    .iter()
                    .filter(|a| &*a.name != name.as_str())
                    .map(|a| a.name.to_string())
                    .collect();
                if keep.len() == state.schema().arity() {
                    return Err(CoreError::SchemeChange(format!(
                        "no attribute named {name:?}"
                    )));
                }
                if keep.is_empty() {
                    return Err(CoreError::SchemeChange(
                        "cannot drop the last attribute".into(),
                    ));
                }
                state
                    .project(&keep)
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))
            }
            SchemeChange::RenameAttribute { from, to } => state
                .rename(from, to)
                .map_err(|e| CoreError::SchemeChange(e.to_string())),
        }
    }

    /// Applies the change to an historical state (valid times follow the
    /// tuples; merged tuples union their valid times).
    pub fn apply_historical(&self, state: &HistoricalState) -> Result<HistoricalState, CoreError> {
        match self {
            SchemeChange::AddAttribute {
                name,
                domain,
                default,
            } => {
                if default.domain() != *domain {
                    return Err(CoreError::SchemeChange(format!(
                        "default value {default} is not in domain {domain}"
                    )));
                }
                let mut attrs = state.schema().attributes().to_vec();
                attrs.push(Attribute::new(name, *domain));
                let schema = Schema::from_attributes(attrs)
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))?;
                let entries = state.iter().map(|(t, e)| {
                    let mut vals = t.values().to_vec();
                    vals.push(default.clone());
                    (Tuple::new(vals), e.clone())
                });
                HistoricalState::new(schema, entries)
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))
            }
            SchemeChange::DropAttribute(name) => {
                let keep: Vec<String> = state
                    .schema()
                    .attributes()
                    .iter()
                    .filter(|a| &*a.name != name.as_str())
                    .map(|a| a.name.to_string())
                    .collect();
                if keep.len() == state.schema().arity() {
                    return Err(CoreError::SchemeChange(format!(
                        "no attribute named {name:?}"
                    )));
                }
                if keep.is_empty() {
                    return Err(CoreError::SchemeChange(
                        "cannot drop the last attribute".into(),
                    ));
                }
                state
                    .hproject(&keep)
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))
            }
            SchemeChange::RenameAttribute { from, to } => {
                let schema = state
                    .schema()
                    .rename(from, to)
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))?;
                HistoricalState::new(schema, state.iter().map(|(t, e)| (t.clone(), e.clone())))
                    .map_err(|e| CoreError::SchemeChange(e.to_string()))
            }
        }
    }
}

/// Executes `evolve_scheme(ident, change)`: transforms the relation's
/// current state and installs the result as a new version at `n+1`.
pub fn evolve(
    db: &Database,
    ident: &str,
    change: &SchemeChange,
) -> Result<(Database, CommandOutcome), CoreError> {
    let relation = db
        .state
        .lookup(ident)
        .ok_or_else(|| CoreError::UndefinedRelation(ident.to_string()))?;
    let current = relation
        .current()
        .ok_or_else(|| CoreError::SchemeChange(format!("relation {ident:?} has no state")))?;
    let new_state = match &current.state {
        StateValue::Snapshot(s) => StateValue::Snapshot(change.apply_snapshot(s)?),
        StateValue::Historical(h) => StateValue::Historical(change.apply_historical(h)?),
    };
    let mut updated = relation.clone();
    let next = db.tx.next();
    updated.push_version(new_state, next);
    let state = db.state.bind(ident.to_string(), updated);
    Ok((Database::new(state, next), CommandOutcome::Evolved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use txtime_historical::TemporalElement;

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap()
    }

    fn snap() -> SnapshotState {
        SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("alice"), Value::Int(100)],
                vec![Value::str("bob"), Value::Int(100)],
            ],
        )
        .unwrap()
    }

    fn hist() -> HistoricalState {
        HistoricalState::new(
            schema(),
            vec![
                (
                    Tuple::new(vec![Value::str("alice"), Value::Int(100)]),
                    TemporalElement::period(0, 5),
                ),
                (
                    Tuple::new(vec![Value::str("alice"), Value::Int(200)]),
                    TemporalElement::period(5, 9),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn add_attribute_gives_default() {
        let c = SchemeChange::AddAttribute {
            name: "dept".into(),
            domain: DomainType::Str,
            default: Value::str("unknown"),
        };
        let s = c.apply_snapshot(&snap()).unwrap();
        assert_eq!(s.schema().arity(), 3);
        for t in s.iter() {
            assert_eq!(t.get(2), &Value::str("unknown"));
        }
    }

    #[test]
    fn add_attribute_checks_default_domain() {
        let c = SchemeChange::AddAttribute {
            name: "dept".into(),
            domain: DomainType::Str,
            default: Value::Int(1),
        };
        assert!(c.apply_snapshot(&snap()).is_err());
    }

    #[test]
    fn drop_attribute_merges_tuples() {
        let c = SchemeChange::DropAttribute("name".into());
        let s = c.apply_snapshot(&snap()).unwrap();
        assert_eq!(s.schema().arity(), 1);
        assert_eq!(s.len(), 1); // both tuples had sal = 100
    }

    #[test]
    fn drop_unknown_or_last_attribute_fails() {
        assert!(SchemeChange::DropAttribute("ghost".into())
            .apply_snapshot(&snap())
            .is_err());
        let one = SnapshotState::from_rows(
            Schema::new(vec![("x", DomainType::Int)]).unwrap(),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        assert!(SchemeChange::DropAttribute("x".into())
            .apply_snapshot(&one)
            .is_err());
    }

    #[test]
    fn rename_attribute() {
        let c = SchemeChange::RenameAttribute {
            from: "sal".into(),
            to: "salary".into(),
        };
        let s = c.apply_snapshot(&snap()).unwrap();
        assert!(s.schema().contains("salary"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn historical_drop_unions_valid_times() {
        let c = SchemeChange::DropAttribute("sal".into());
        let h = c.apply_historical(&hist()).unwrap();
        assert_eq!(h.len(), 1);
        let e = h
            .valid_time(&Tuple::new(vec![Value::str("alice")]))
            .unwrap();
        assert_eq!(e, &TemporalElement::period(0, 9));
    }

    #[test]
    fn evolve_appends_version_for_rollback_relation() {
        let db = Sentence::new(vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::modify_state("emp", Expr::snapshot_const(snap())),
            Command::evolve_scheme(
                "emp",
                SchemeChange::RenameAttribute {
                    from: "sal".into(),
                    to: "salary".into(),
                },
            ),
        ])
        .unwrap()
        .eval()
        .unwrap();

        // Current state has the new scheme…
        let cur = Expr::current("emp")
            .eval(&db)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert!(cur.schema().contains("salary"));
        // …but the pre-change version, with the old scheme, is still
        // reachable: the scheme is a transaction-time-varying aspect.
        let old = Expr::rollback("emp", TxSpec::At(TransactionNumber(2)))
            .eval(&db)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert!(old.schema().contains("sal"));
    }

    #[test]
    fn evolve_on_empty_relation_fails() {
        let db = Sentence::new(vec![Command::define_relation(
            "emp",
            RelationType::Rollback,
        )])
        .unwrap()
        .eval()
        .unwrap();
        let c = Command::evolve_scheme("emp", SchemeChange::DropAttribute("x".into()));
        assert!(c.execute(&db).is_err());
    }
}
