//! Documented extensions from the companion report.
//!
//! The paper delegates two capabilities to \[McKenzie & Snodgrass 1987A,
//! *Scheme Evolution and the Relational Algebra*\]: the `delete_relation`
//! command ("Elsewhere we introduce into the language a delete_relation
//! command") and scheme evolution ("Elsewhere we provide extensions to the
//! language presented here to accommodate scheme evolution"). The
//! `delete_relation` semantics lives with the other commands in
//! [`crate::semantics::cmd_eval`]; this module implements scheme
//! evolution.

pub mod asof;
pub mod scheme;
pub mod update;
