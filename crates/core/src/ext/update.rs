//! The calculus-to-algebra update mapping (extension; paper §1).
//!
//! "The action of update is available in the algebra, allowing the
//! algebra to be the executable form to which update operations in a
//! calculus-based language (e.g., append, delete, replace in Quel) can be
//! mapped. If these operations in the calculus are formalized, the
//! mapping can be proven correct."
//!
//! This module *is* that mapping: each Quel-style update operation is
//! compiled to a single `modify_state` command whose expression is pure
//! algebra over ρ(I, ∞) — no host-language computation of the new state.
//!
//! * **append**: `modify_state(I, ρ(I,∞) ∪ A)`
//! * **delete where F**: `modify_state(I, σ_{¬F}(ρ(I,∞)))`
//! * **replace where F set a₁:=c₁,…**:
//!   `modify_state(I, (ρ(I,∞) − σ_F(ρ(I,∞))) ∪ reassemble(σ_F(ρ(I,∞))))`
//!   where `reassemble` drops the assigned attributes by projection,
//!   crosses with the constant singleton of new values, and projects back
//!   into the original attribute order — all within the five primitive
//!   operators.
//!
//! The correctness of the mapping is property-tested in
//! `crates/core/tests/update_mapping.rs` against a direct tuple-level
//! interpretation of the same operations.

use txtime_snapshot::{Predicate, Schema, SnapshotState, Tuple, Value};

use crate::error::CoreError;
use crate::syntax::command::Command;
use crate::syntax::expr::Expr;

/// One Quel-style `set attr = constant` assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The attribute being assigned.
    pub attr: String,
    /// The new (constant) value.
    pub value: Value,
}

impl Assignment {
    /// Creates an assignment.
    pub fn new(attr: impl Into<String>, value: Value) -> Assignment {
        Assignment {
            attr: attr.into(),
            value,
        }
    }
}

/// `append to I: tuples` — the Quel APPEND.
pub fn append(ident: impl Into<String>, tuples: SnapshotState) -> Command {
    let ident = ident.into();
    Command::modify_state(
        ident.clone(),
        Expr::current(ident).union(Expr::snapshot_const(tuples)),
    )
}

/// `delete I where F` — the Quel DELETE.
///
/// Encoded as keeping the complement: `σ_{¬F}(ρ(I,∞))`.
pub fn delete_where(ident: impl Into<String>, pred: Predicate) -> Command {
    let ident = ident.into();
    Command::modify_state(ident.clone(), Expr::current(ident).select(pred.not()))
}

/// `replace I where F set a₁ := c₁, …` — the Quel REPLACE, restricted to
/// constant assignments (the general computed-expression form requires an
/// extended projection the 1987 algebra does not have).
///
/// Needs the relation's scheme to reassemble attribute order; fails if an
/// assigned attribute is missing, assigned twice, has the wrong domain,
/// or if *every* attribute is assigned (the projection of the unassigned
/// attributes would be empty — use delete + append for full-tuple
/// replacement).
pub fn replace_where(
    ident: impl Into<String>,
    schema: &Schema,
    pred: Predicate,
    assignments: &[Assignment],
) -> Result<Command, CoreError> {
    let ident = ident.into();
    if assignments.is_empty() {
        return Err(CoreError::SchemeChange(
            "replace requires at least one assignment".into(),
        ));
    }
    for (i, a) in assignments.iter().enumerate() {
        let idx = schema
            .index_of(&a.attr)
            .ok_or_else(|| CoreError::SchemeChange(format!("no attribute {:?}", a.attr)))?;
        if schema.attribute(idx).domain != a.value.domain() {
            return Err(CoreError::SchemeChange(format!(
                "assignment to {:?} has domain {} but attribute has {}",
                a.attr,
                a.value.domain(),
                schema.attribute(idx).domain
            )));
        }
        if assignments[..i].iter().any(|b| b.attr == a.attr) {
            return Err(CoreError::SchemeChange(format!(
                "attribute {:?} assigned twice",
                a.attr
            )));
        }
    }

    let kept: Vec<String> = schema
        .attributes()
        .iter()
        .filter(|at| !assignments.iter().any(|a| a.attr == *at.name))
        .map(|at| at.name.to_string())
        .collect();
    if kept.is_empty() {
        return Err(CoreError::SchemeChange(
            "replace must leave at least one attribute unassigned".into(),
        ));
    }

    // The constant singleton carrying the new values, over the assigned
    // attributes (in scheme order).
    let assigned_attrs: Vec<_> = schema
        .attributes()
        .iter()
        .filter(|at| assignments.iter().any(|a| a.attr == *at.name))
        .cloned()
        .collect();
    let const_schema = Schema::from_attributes(assigned_attrs.clone())
        .map_err(|e| CoreError::SchemeChange(e.to_string()))?;
    let const_tuple = Tuple::new(
        assigned_attrs
            .iter()
            .map(|at| {
                assignments
                    .iter()
                    .find(|a| a.attr == *at.name)
                    .expect("filtered to assigned")
                    .value
                    .clone()
            })
            .collect(),
    );
    let singleton = SnapshotState::new(const_schema, [const_tuple])
        .map_err(|e| CoreError::SchemeChange(e.to_string()))?;

    // Original attribute order, for the final projection.
    let original_order: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| a.name.to_string())
        .collect();

    let matched = Expr::current(ident.clone()).select(pred.clone());
    let reassembled = matched
        .clone()
        .project(kept)
        .product(Expr::snapshot_const(singleton))
        .project(original_order);
    let expr = Expr::current(ident.clone())
        .difference(matched)
        .union(reassembled);
    Ok(Command::modify_state(ident, expr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use txtime_snapshot::DomainType;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name", DomainType::Str),
            ("dept", DomainType::Str),
            ("sal", DomainType::Int),
        ])
        .unwrap()
    }

    fn start() -> Database {
        let s = SnapshotState::from_rows(
            schema(),
            vec![
                vec![Value::str("alice"), Value::str("cs"), Value::Int(100)],
                vec![Value::str("bob"), Value::str("ee"), Value::Int(120)],
                vec![Value::str("carol"), Value::str("cs"), Value::Int(90)],
            ],
        )
        .unwrap();
        Sentence::new(vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::modify_state("emp", Expr::snapshot_const(s)),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    fn current(db: &Database) -> SnapshotState {
        Expr::current("emp")
            .eval(db)
            .unwrap()
            .into_snapshot()
            .unwrap()
    }

    #[test]
    fn append_adds_tuples() {
        let extra = SnapshotState::from_rows(
            schema(),
            vec![vec![Value::str("dave"), Value::str("me"), Value::Int(80)]],
        )
        .unwrap();
        let db = append("emp", extra).execute_total(&start());
        assert_eq!(current(&db).len(), 4);
    }

    #[test]
    fn delete_where_removes_matches_only() {
        let db = delete_where("emp", Predicate::eq_const("dept", Value::str("cs")))
            .execute_total(&start());
        let cur = current(&db);
        assert_eq!(cur.len(), 1);
        assert_eq!(cur.iter().next().unwrap().get(0), &Value::str("bob"));
    }

    #[test]
    fn replace_where_reassigns_constants() {
        // Everyone in cs moves to the new "ai" department at salary 200.
        let cmd = replace_where(
            "emp",
            &schema(),
            Predicate::eq_const("dept", Value::str("cs")),
            &[
                Assignment::new("dept", Value::str("ai")),
                Assignment::new("sal", Value::Int(200)),
            ],
        )
        .unwrap();
        let db = cmd.execute_total(&start());
        let cur = current(&db);
        assert_eq!(cur.len(), 3);
        let ai: Vec<&str> = cur
            .iter()
            .filter(|t| t.get(1).as_str() == Some("ai"))
            .map(|t| t.get(0).as_str().unwrap())
            .collect();
        assert_eq!(ai, vec!["alice", "carol"]);
        for t in cur.iter() {
            if t.get(1).as_str() == Some("ai") {
                assert_eq!(t.get(2), &Value::Int(200));
            }
        }
        // bob is untouched.
        assert!(cur.contains(&Tuple::new(vec![
            Value::str("bob"),
            Value::str("ee"),
            Value::Int(120)
        ])));
    }

    #[test]
    fn replace_collapses_tuples_that_become_equal() {
        // Assigning sal := 0 to everyone in cs merges alice and carol if
        // their remaining attributes collide — here they don't (names
        // differ), but assigning *name* does collapse:
        let cmd = replace_where(
            "emp",
            &schema(),
            Predicate::eq_const("dept", Value::str("cs")),
            &[
                Assignment::new("name", Value::str("anon")),
                Assignment::new("sal", Value::Int(0)),
            ],
        )
        .unwrap();
        let db = cmd.execute_total(&start());
        // alice and carol both become (anon, cs, 0): set semantics.
        assert_eq!(current(&db).len(), 2);
    }

    #[test]
    fn replace_validates_assignments() {
        let s = schema();
        assert!(replace_where("emp", &s, Predicate::True, &[]).is_err());
        assert!(replace_where(
            "emp",
            &s,
            Predicate::True,
            &[Assignment::new("wage", Value::Int(1))]
        )
        .is_err());
        assert!(replace_where(
            "emp",
            &s,
            Predicate::True,
            &[Assignment::new("sal", Value::str("high"))]
        )
        .is_err());
        assert!(replace_where(
            "emp",
            &s,
            Predicate::True,
            &[
                Assignment::new("sal", Value::Int(1)),
                Assignment::new("sal", Value::Int(2))
            ]
        )
        .is_err());
        assert!(replace_where(
            "emp",
            &s,
            Predicate::True,
            &[
                Assignment::new("name", Value::str("x")),
                Assignment::new("dept", Value::str("y")),
                Assignment::new("sal", Value::Int(0)),
            ]
        )
        .is_err());
    }

    #[test]
    fn updates_are_recorded_as_history() {
        // The point of mapping updates into the algebra: they flow
        // through modify_state and are therefore rollback-visible.
        let db = delete_where("emp", Predicate::eq_const("dept", Value::str("cs")))
            .execute_total(&start());
        let before = Expr::rollback("emp", TxSpec::At(TransactionNumber(2)))
            .eval(&db)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert_eq!(before.len(), 3);
    }

    #[test]
    fn replace_on_empty_match_is_identity() {
        let cmd = replace_where(
            "emp",
            &schema(),
            Predicate::eq_const("dept", Value::str("law")),
            &[Assignment::new("sal", Value::Int(1))],
        )
        .unwrap();
        let db = cmd.execute_total(&start());
        assert_eq!(current(&db), current(&start()));
    }
}
