//! The *as-of* query transformer — rollback completeness made
//! operational.
//!
//! §5 discusses completeness: "Codd proposed his snapshot algebra as the
//! yardstick for snapshot completeness … Similar statements apply to …
//! rollback completeness (i.e., supporting transaction time)". One
//! concrete, checkable sense of rollback completeness is: *every
//! snapshot-complete query can be asked of every past database state*.
//!
//! [`as_of`] witnesses this: it rewrites a query over current states
//! (`ρ(I, ∞)` leaves) into the same query over the states at transaction
//! `t` (`ρ(I, t)` leaves). Because the algebra operators are the
//! unchanged snapshot operators, the transformed query computes exactly
//! what the original would have computed had it been evaluated when `t`
//! was the most recent transaction — which is the property tested in
//! `crates/core/tests/update_mapping.rs`'s companion suite.

use crate::semantics::domains::TransactionNumber;
use crate::syntax::expr::{Expr, TxSpec};

/// Rewrites every `ρ(I, ∞)`/`ρ̂(I, ∞)` leaf to `ρ(I, t)`/`ρ̂(I, t)`.
///
/// Leaves that already name an explicit transaction number are left
/// alone: the query's own historical references are preserved.
pub fn as_of(expr: &Expr, t: TransactionNumber) -> Expr {
    map_leaves(expr, &|ident, spec, historical| {
        let spec = match spec {
            TxSpec::Current => TxSpec::At(t),
            explicit => explicit,
        };
        if historical {
            Expr::HRollback(ident.to_string(), spec)
        } else {
            Expr::Rollback(ident.to_string(), spec)
        }
    })
}

/// Structural map over the rollback leaves of an expression.
pub fn map_leaves(expr: &Expr, f: &impl Fn(&str, TxSpec, bool) -> Expr) -> Expr {
    match expr {
        Expr::Rollback(i, spec) => f(i, *spec, false),
        Expr::HRollback(i, spec) => f(i, *spec, true),
        Expr::SnapshotConst(_) | Expr::HistoricalConst(_) => expr.clone(),
        Expr::Union(a, b) => Expr::Union(Box::new(map_leaves(a, f)), Box::new(map_leaves(b, f))),
        Expr::Difference(a, b) => {
            Expr::Difference(Box::new(map_leaves(a, f)), Box::new(map_leaves(b, f)))
        }
        Expr::Product(a, b) => {
            Expr::Product(Box::new(map_leaves(a, f)), Box::new(map_leaves(b, f)))
        }
        Expr::Project(attrs, e) => Expr::Project(attrs.clone(), Box::new(map_leaves(e, f))),
        Expr::Select(p, e) => Expr::Select(p.clone(), Box::new(map_leaves(e, f))),
        Expr::HUnion(a, b) => Expr::HUnion(Box::new(map_leaves(a, f)), Box::new(map_leaves(b, f))),
        Expr::HDifference(a, b) => {
            Expr::HDifference(Box::new(map_leaves(a, f)), Box::new(map_leaves(b, f)))
        }
        Expr::HProduct(a, b) => {
            Expr::HProduct(Box::new(map_leaves(a, f)), Box::new(map_leaves(b, f)))
        }
        Expr::HProject(attrs, e) => Expr::HProject(attrs.clone(), Box::new(map_leaves(e, f))),
        Expr::HSelect(p, e) => Expr::HSelect(p.clone(), Box::new(map_leaves(e, f))),
        Expr::Delta(g, v, e) => Expr::Delta(g.clone(), v.clone(), Box::new(map_leaves(e, f))),
        Expr::Join(spec, a, b) => Expr::Join(
            spec.clone(),
            Box::new(map_leaves(a, f)),
            Box::new(map_leaves(b, f)),
        ),
        Expr::HJoin(spec, a, b) => Expr::HJoin(
            spec.clone(),
            Box::new(map_leaves(a, f)),
            Box::new(map_leaves(b, f)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use txtime_snapshot::{DomainType, Predicate, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn db() -> Database {
        Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2]))), // tx 2
            Command::modify_state("r", Expr::snapshot_const(snap(&[2, 3]))), // tx 3
            Command::modify_state("r", Expr::snapshot_const(snap(&[3, 4]))), // tx 4
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    #[test]
    fn as_of_rewrites_current_leaves() {
        let q = Expr::current("r").select(Predicate::gt_const("x", Value::Int(1)));
        let q2 = as_of(&q, TransactionNumber(2));
        assert_eq!(q2.to_string(), "select[x > 1](rho(r, 2))");
    }

    #[test]
    fn as_of_answers_as_the_past_would_have() {
        let d = db();
        let q = Expr::current("r")
            .union(Expr::current("r"))
            .select(Predicate::gt_const("x", Value::Int(1)));
        // Evaluate the as-of form against the full database…
        let past = as_of(&q, TransactionNumber(2)).eval(&d).unwrap();
        // …and the original against the prefix database.
        let prefix = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2]))),
        ])
        .unwrap()
        .eval()
        .unwrap();
        let expected = q.eval(&prefix).unwrap();
        assert_eq!(past, expected);
    }

    #[test]
    fn explicit_times_are_preserved() {
        let q = Expr::rollback("r", TxSpec::At(TransactionNumber(3))).union(Expr::current("r"));
        let q2 = as_of(&q, TransactionNumber(2));
        assert_eq!(q2.to_string(), "(rho(r, 3) union rho(r, 2))");
    }

    #[test]
    fn historical_leaves_are_rewritten_too() {
        let q = Expr::hcurrent("t");
        let q2 = as_of(&q, TransactionNumber(7));
        assert_eq!(q2, Expr::hrollback("t", TxSpec::At(TransactionNumber(7))));
    }

    #[test]
    fn constants_are_untouched() {
        let q = Expr::snapshot_const(snap(&[9])).union(Expr::current("r"));
        let q2 = as_of(&q, TransactionNumber(2));
        match q2 {
            Expr::Union(a, _) => assert!(matches!(*a, Expr::SnapshotConst(_))),
            other => panic!("unexpected {other:?}"),
        }
    }
}
