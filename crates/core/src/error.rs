//! Errors for expression evaluation and command execution.
//!
//! The paper's semantic functions are *partial*: **E** "is a partial
//! function on valid expressions only", and **C** leaves the database
//! unchanged on invalid commands. We diagnose invalidity explicitly with
//! these types; [`crate::Command::execute_total`] recovers the paper's
//! total-function behaviour by mapping any error to "database unchanged".

use std::fmt;

use txtime_historical::HistoricalError;
use txtime_snapshot::SnapshotError;

use crate::semantics::domains::{RelationType, TransactionNumber};

/// An error from evaluating an expression (the semantic function **E**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The identifier is unbound (maps to ⊥) in the database state.
    UndefinedRelation(String),
    /// ρ with a non-∞ transaction number applied to a snapshot relation:
    /// "The rollback operator cannot retrieve a past state of a snapshot
    /// relation."
    RollbackOnSnapshot(String),
    /// ρ applied to an historical/temporal relation, or ρ̂ applied to a
    /// snapshot/rollback relation.
    RollbackTypeMismatch {
        /// The relation name.
        relation: String,
        /// The relation's actual type.
        actual: RelationType,
        /// Whether the historical rollback ρ̂ (vs the snapshot ρ) was used.
        historical: bool,
    },
    /// The relation has no states at all, so not even an empty state with
    /// a known scheme can be produced.
    EmptyRelation(String),
    /// An operator received a snapshot state where an historical state was
    /// required, or vice versa.
    StateKindMismatch {
        /// The operator that failed.
        operator: &'static str,
        /// True if an historical state was expected.
        expected_historical: bool,
    },
    /// A value-level algebra error (scheme mismatch, unknown attribute…).
    Snapshot(SnapshotError),
    /// A valid-time-level algebra error.
    Historical(HistoricalError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UndefinedRelation(i) => write!(f, "relation {i:?} is not defined"),
            EvalError::RollbackOnSnapshot(i) => write!(
                f,
                "cannot roll back snapshot relation {i:?} to a past state; only ρ({i}, ∞) is legal"
            ),
            EvalError::RollbackTypeMismatch {
                relation,
                actual,
                historical,
            } => {
                let op = if *historical { "ρ̂" } else { "ρ" };
                write!(
                    f,
                    "{op} is not applicable to relation {relation:?} of type {actual}"
                )
            }
            EvalError::EmptyRelation(i) => {
                write!(f, "relation {i:?} has no states; its scheme is unknown")
            }
            EvalError::StateKindMismatch {
                operator,
                expected_historical,
            } => {
                let (want, got) = if *expected_historical {
                    ("an historical", "a snapshot")
                } else {
                    ("a snapshot", "an historical")
                };
                write!(
                    f,
                    "operator {operator} expected {want} state but received {got} state"
                )
            }
            EvalError::Snapshot(e) => write!(f, "{e}"),
            EvalError::Historical(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SnapshotError> for EvalError {
    fn from(e: SnapshotError) -> EvalError {
        EvalError::Snapshot(e)
    }
}

impl From<HistoricalError> for EvalError {
    fn from(e: HistoricalError) -> EvalError {
        EvalError::Historical(e)
    }
}

/// An error from executing a command (the semantic function **C**) or a
/// sentence (**P**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// `define_relation` on an identifier that is already bound; the paper
    /// leaves the database unchanged in this case.
    AlreadyDefined(String),
    /// A command other than `define_relation` named an unbound identifier.
    UndefinedRelation(String),
    /// `modify_state` produced a state of the wrong kind for the
    /// relation's type (e.g. an historical state for a rollback relation).
    StateTypeMismatch {
        /// The relation name.
        relation: String,
        /// The relation's type.
        rtype: RelationType,
    },
    /// Expression evaluation failed inside a command.
    Eval(EvalError),
    /// A sentence must contain at least one command.
    EmptySentence,
    /// A scheme-evolution change could not be applied.
    SchemeChange(String),
    /// Internal invariant violation: transaction numbers in a state
    /// sequence must be strictly increasing. Surfaced (rather than
    /// panicking) so storage engines can report corruption.
    NonMonotonicTransaction {
        /// The relation name.
        relation: String,
        /// The offending transaction number.
        tx: TransactionNumber,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::AlreadyDefined(i) => write!(f, "relation {i:?} is already defined"),
            CoreError::UndefinedRelation(i) => write!(f, "relation {i:?} is not defined"),
            CoreError::StateTypeMismatch { relation, rtype } => write!(
                f,
                "expression kind does not match type {rtype} of relation {relation:?}"
            ),
            CoreError::Eval(e) => write!(f, "{e}"),
            CoreError::EmptySentence => write!(f, "a sentence must contain at least one command"),
            CoreError::SchemeChange(msg) => write!(f, "scheme change failed: {msg}"),
            CoreError::NonMonotonicTransaction { relation, tx } => write!(
                f,
                "transaction number {tx} would violate monotonicity of relation {relation:?}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EvalError> for CoreError {
    fn from(e: EvalError) -> CoreError {
        CoreError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = EvalError::RollbackOnSnapshot("emp".into());
        assert!(e.to_string().contains("emp"));
        let c: CoreError = e.into();
        assert!(matches!(c, CoreError::Eval(_)));
    }

    #[test]
    fn kind_mismatch_message() {
        let e = EvalError::StateKindMismatch {
            operator: "union",
            expected_historical: false,
        };
        assert!(e.to_string().contains("snapshot"));
    }
}
