//! The DATABASE STATE and DATABASE semantic domains.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::semantics::domains::{Relation, TransactionNumber};

/// DATABASE STATE ≜ IDENTIFIER → \[RELATION + {⊥}\]
///
/// "A database state is a function that maps identifiers either into a
/// relation or into the special symbol ⊥." We represent the function by a
/// finite map: absent identifiers denote ⊥. The map is wrapped in an `Arc`
/// so that a [`Database`] — which the reference semantics copies at every
/// command — clones in O(1) and shares structure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatabaseState {
    relations: Arc<BTreeMap<String, Relation>>,
}

impl DatabaseState {
    /// EMPTY: the state mapping every identifier to ⊥.
    pub fn empty() -> DatabaseState {
        DatabaseState::default()
    }

    /// Applies the state (as a function) to `ident`: `Some(relation)` or
    /// `None` for ⊥.
    pub fn lookup(&self, ident: &str) -> Option<&Relation> {
        self.relations.get(ident)
    }

    /// Whether `ident` is bound.
    pub fn is_defined(&self, ident: &str) -> bool {
        self.relations.contains_key(ident)
    }

    /// The functional update `b[(r)/I]`: a new state in which `ident`
    /// maps to `relation` and everything else is unchanged.
    pub fn bind(&self, ident: impl Into<String>, relation: Relation) -> DatabaseState {
        let mut map = (*self.relations).clone();
        map.insert(ident.into(), relation);
        DatabaseState {
            relations: Arc::new(map),
        }
    }

    /// The functional update mapping `ident` back to ⊥ (used by the
    /// `delete_relation` extension).
    pub fn unbind(&self, ident: &str) -> DatabaseState {
        let mut map = (*self.relations).clone();
        map.remove(ident);
        DatabaseState {
            relations: Arc::new(map),
        }
    }

    /// Iterates bound identifiers and their relations, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Number of bound identifiers.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no identifier is bound.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        self.relations
            .iter()
            .map(|(k, r)| k.len() + r.size_bytes())
            .sum()
    }
}

/// DATABASE ≜ DATABASE STATE × TRANSACTION NUMBER
///
/// "A database is an ordered pair consisting of a database state and a
/// transaction number indicating the most recent transaction that caused
/// a change to the database."
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Database {
    /// The database-state component `b`.
    pub state: DatabaseState,
    /// The transaction-number component `n`.
    pub tx: TransactionNumber,
}

impl Database {
    /// The initial database `(EMPTY, 0)` that every sentence starts from.
    pub fn empty() -> Database {
        Database::default()
    }

    /// Constructs a database from components.
    pub fn new(state: DatabaseState, tx: TransactionNumber) -> Database {
        Database { state, tx }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database @ tx {}", self.tx)?;
        for (name, rel) in self.state.iter() {
            writeln!(
                f,
                "  {name} : {} ({} version{})",
                rel.rtype(),
                rel.versions().len(),
                if rel.versions().len() == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::domains::RelationType;

    #[test]
    fn empty_database_is_the_sentence_start() {
        let d = Database::empty();
        assert_eq!(d.tx, TransactionNumber(0));
        assert!(d.state.is_empty());
        assert!(d.state.lookup("emp").is_none());
    }

    #[test]
    fn bind_is_persistent() {
        let b0 = DatabaseState::empty();
        let b1 = b0.bind("emp", Relation::new(RelationType::Rollback));
        assert!(!b0.is_defined("emp"));
        assert!(b1.is_defined("emp"));
        assert_eq!(b1.len(), 1);
    }

    #[test]
    fn unbind_restores_bottom() {
        let b = DatabaseState::empty().bind("emp", Relation::new(RelationType::Snapshot));
        let b2 = b.unbind("emp");
        assert!(b.is_defined("emp"));
        assert!(!b2.is_defined("emp"));
    }

    #[test]
    fn display_lists_relations() {
        let state = DatabaseState::empty().bind("emp", Relation::new(RelationType::Rollback));
        let d = Database::new(state, TransactionNumber(1));
        let s = d.to_string();
        assert!(s.contains("emp"));
        assert!(s.contains("rollback"));
    }
}
