//! The semantic domains and denotation functions (paper §3.2–3.6, §4).

pub mod aux;
pub mod cmd_eval;
pub mod database;
pub mod domains;
pub mod expr_eval;
