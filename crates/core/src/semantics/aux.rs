//! The auxiliary functions of §3.3: RTYPE, RSTATE, FINDSTATE, FINDTYPE.
//!
//! `RTYPE` and `RSTATE` are methods on [`Relation`]
//! ([`Relation::rtype`], [`Relation::versions`]); this module provides
//! the interpolating lookup FINDSTATE and its §4 companion FINDTYPE.

use crate::semantics::domains::{Relation, RelationType, StateValue, TransactionNumber, Version};

/// FINDSTATE — "maps a relation into the snapshot-state component of the
/// element in the relation's state sequence having the largest
/// transaction-number component less than or equal to a given integer. If
/// the sequence is empty or no such element exists in the sequence, then
/// FINDSTATE returns the empty set."
///
/// The paper observes that "we can interpolate on the transaction-number
/// component" of the strictly increasing state sequence, so the lookup is
/// a true interpolation search: each probe position is estimated from the
/// distribution of transaction numbers in the remaining window, giving
/// O(log log n) expected probes on near-uniform commit histories (the
/// common case: one commit per transaction) and never worse than O(n).
/// Experiment E9 compares it against binary search
/// ([`find_state_binary`]) and a linear scan.
///
/// We return `None` for the paper's "empty set" case; the caller
/// ([`crate::Expr::eval`]) converts `None` into an empty state with the
/// relation's known scheme, or into a diagnostic when no scheme is known
/// (see DESIGN.md: types force a scheme onto ∅).
pub fn find_state(relation: &Relation, tx: TransactionNumber) -> Option<&StateValue> {
    let versions = relation.versions();
    let idx = interpolating_partition(versions, tx);
    idx.checked_sub(1).map(|i| &versions[i].state)
}

/// FINDSTATE by classical binary search — kept as the baseline the
/// interpolating lookup is benchmarked against (E9).
pub fn find_state_binary(relation: &Relation, tx: TransactionNumber) -> Option<&StateValue> {
    let versions = relation.versions();
    // partition_point gives the count of versions with v.tx <= tx.
    let idx = versions.partition_point(|v| v.tx <= tx);
    idx.checked_sub(1).map(|i| &versions[i].state)
}

/// The count of versions with `v.tx <= tx` (the partition point), located
/// by interpolation on the transaction numbers.
///
/// Invariant: `versions[..lo]` all have `tx <= target` and
/// `versions[hi..]` all have `tx > target`. Each round either resolves
/// the window from its endpoints or probes the interpolated position,
/// which always shrinks the window, so the search terminates even on
/// adversarial key distributions.
fn interpolating_partition(versions: &[Version], tx: TransactionNumber) -> usize {
    let target = tx.0;
    let mut lo = 0usize;
    let mut hi = versions.len();
    while lo < hi {
        let lo_tx = versions[lo].tx.0;
        let hi_tx = versions[hi - 1].tx.0;
        if target < lo_tx {
            return lo; // everything in the window is newer than `tx`
        }
        if target >= hi_tx {
            return hi; // everything in the window is at or before `tx`
        }
        // lo_tx <= target < hi_tx, and transaction numbers are strictly
        // increasing, so the span is non-zero and the probe lands inside
        // [lo, hi - 2]. The u128 widening keeps the product exact for the
        // full u64 key range.
        let span = (hi_tx - lo_tx) as u128;
        let offset = (target - lo_tx) as u128;
        let window = (hi - lo - 1) as u128;
        let probe = lo + ((offset * window) / span) as usize;
        if versions[probe].tx <= tx {
            lo = probe + 1;
        } else {
            hi = probe;
        }
    }
    lo
}

/// FINDTYPE — the relation's type as of transaction `tx` (§4).
///
/// In the base language a relation's type never changes ("The
/// modify_state command changes a relation's state but leaves the
/// relation's type unchanged"), so FINDTYPE coincides with RTYPE; the
/// parameter documents where scheme-evolution support would hook in.
pub fn find_type(relation: &Relation, _tx: TransactionNumber) -> RelationType {
    relation.rtype()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    fn rollback_relation() -> Relation {
        let mut r = Relation::new(RelationType::Rollback);
        r.push_version(snap(&[1]), TransactionNumber(2));
        r.push_version(snap(&[1, 2]), TransactionNumber(5));
        r.push_version(snap(&[2]), TransactionNumber(9));
        r
    }

    #[test]
    fn findstate_exact_hit() {
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(5)), Some(&snap(&[1, 2])));
    }

    #[test]
    fn findstate_interpolates_between_transactions() {
        // "we can interpolate on the transaction-number component … to
        // determine the state of a rollback relation at any time."
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(3)), Some(&snap(&[1])));
        assert_eq!(find_state(&r, TransactionNumber(4)), Some(&snap(&[1])));
        assert_eq!(find_state(&r, TransactionNumber(7)), Some(&snap(&[1, 2])));
    }

    #[test]
    fn findstate_after_last_returns_current() {
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(100)), Some(&snap(&[2])));
    }

    #[test]
    fn findstate_before_first_is_none() {
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(1)), None);
        assert_eq!(find_state(&r, TransactionNumber(0)), None);
    }

    #[test]
    fn findstate_on_empty_sequence_is_none() {
        let r = Relation::new(RelationType::Rollback);
        assert_eq!(find_state(&r, TransactionNumber(10)), None);
    }

    #[test]
    fn findtype_is_constant() {
        let r = rollback_relation();
        assert_eq!(find_type(&r, TransactionNumber(0)), RelationType::Rollback);
        assert_eq!(find_type(&r, TransactionNumber(99)), RelationType::Rollback);
    }

    #[test]
    fn findstate_matches_linear_scan() {
        // Oracle check for both lookups (experiment E9 compares their
        // performance; this test pins their agreement).
        let r = rollback_relation();
        for t in 0..12 {
            let tx = TransactionNumber(t);
            let linear = r
                .versions()
                .iter()
                .rev()
                .find(|v| v.tx <= tx)
                .map(|v| &v.state);
            assert_eq!(find_state(&r, tx), linear, "at tx {t}");
            assert_eq!(find_state_binary(&r, tx), linear, "binary at tx {t}");
        }
    }

    #[test]
    fn interpolation_handles_skewed_transaction_numbers() {
        // A heavily non-uniform commit history — dense cluster, huge gap,
        // dense cluster — drives the interpolated probe to both window
        // edges. The answer must still match binary search everywhere,
        // including at the cluster boundaries and inside the gap.
        let mut r = Relation::new(RelationType::Rollback);
        let txs = [2u64, 3, 4, 5, 1_000_000, 1_000_001, u64::MAX - 1];
        for (i, &t) in txs.iter().enumerate() {
            r.push_version(snap(&[i as i64]), TransactionNumber(t));
        }
        let probes = [
            0,
            1,
            2,
            5,
            6,
            999_999,
            1_000_000,
            1_000_002,
            u64::MAX - 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &t in &probes {
            let tx = TransactionNumber(t);
            assert_eq!(find_state(&r, tx), find_state_binary(&r, tx), "at tx {t}");
        }
    }
}
