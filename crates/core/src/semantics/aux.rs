//! The auxiliary functions of §3.3: RTYPE, RSTATE, FINDSTATE, FINDTYPE.
//!
//! `RTYPE` and `RSTATE` are methods on [`Relation`]
//! ([`Relation::rtype`], [`Relation::versions`]); this module provides
//! the interpolating lookup FINDSTATE and its §4 companion FINDTYPE.

use crate::semantics::domains::{Relation, RelationType, StateValue, TransactionNumber};

/// FINDSTATE — "maps a relation into the snapshot-state component of the
/// element in the relation's state sequence having the largest
/// transaction-number component less than or equal to a given integer. If
/// the sequence is empty or no such element exists in the sequence, then
/// FINDSTATE returns the empty set."
///
/// Because the transaction numbers in a state sequence are strictly
/// increasing, the lookup interpolates by binary search in O(log n).
/// We return `None` for the paper's "empty set" case; the caller
/// ([`crate::Expr::eval`]) converts `None` into an empty state with the
/// relation's known scheme, or into a diagnostic when no scheme is known
/// (see DESIGN.md: types force a scheme onto ∅).
pub fn find_state(relation: &Relation, tx: TransactionNumber) -> Option<&StateValue> {
    let versions = relation.versions();
    // partition_point gives the count of versions with v.tx <= tx.
    let idx = versions.partition_point(|v| v.tx <= tx);
    idx.checked_sub(1).map(|i| &versions[i].state)
}

/// FINDTYPE — the relation's type as of transaction `tx` (§4).
///
/// In the base language a relation's type never changes ("The
/// modify_state command changes a relation's state but leaves the
/// relation's type unchanged"), so FINDTYPE coincides with RTYPE; the
/// parameter documents where scheme-evolution support would hook in.
pub fn find_type(relation: &Relation, _tx: TransactionNumber) -> RelationType {
    relation.rtype()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    fn rollback_relation() -> Relation {
        let mut r = Relation::new(RelationType::Rollback);
        r.push_version(snap(&[1]), TransactionNumber(2));
        r.push_version(snap(&[1, 2]), TransactionNumber(5));
        r.push_version(snap(&[2]), TransactionNumber(9));
        r
    }

    #[test]
    fn findstate_exact_hit() {
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(5)), Some(&snap(&[1, 2])));
    }

    #[test]
    fn findstate_interpolates_between_transactions() {
        // "we can interpolate on the transaction-number component … to
        // determine the state of a rollback relation at any time."
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(3)), Some(&snap(&[1])));
        assert_eq!(find_state(&r, TransactionNumber(4)), Some(&snap(&[1])));
        assert_eq!(find_state(&r, TransactionNumber(7)), Some(&snap(&[1, 2])));
    }

    #[test]
    fn findstate_after_last_returns_current() {
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(100)), Some(&snap(&[2])));
    }

    #[test]
    fn findstate_before_first_is_none() {
        let r = rollback_relation();
        assert_eq!(find_state(&r, TransactionNumber(1)), None);
        assert_eq!(find_state(&r, TransactionNumber(0)), None);
    }

    #[test]
    fn findstate_on_empty_sequence_is_none() {
        let r = Relation::new(RelationType::Rollback);
        assert_eq!(find_state(&r, TransactionNumber(10)), None);
    }

    #[test]
    fn findtype_is_constant() {
        let r = rollback_relation();
        assert_eq!(find_type(&r, TransactionNumber(0)), RelationType::Rollback);
        assert_eq!(find_type(&r, TransactionNumber(99)), RelationType::Rollback);
    }

    #[test]
    fn findstate_matches_linear_scan() {
        // Oracle check for the binary search (experiment E9 compares their
        // performance; this test pins their agreement).
        let r = rollback_relation();
        for t in 0..12 {
            let tx = TransactionNumber(t);
            let linear = r
                .versions()
                .iter()
                .rev()
                .find(|v| v.tx <= tx)
                .map(|v| &v.state);
            assert_eq!(find_state(&r, tx), linear, "at tx {t}");
        }
    }
}
