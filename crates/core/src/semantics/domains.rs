//! The semantic domains of §3.2 and their §4 extensions.

use std::fmt;

use txtime_historical::HistoricalState;
use txtime_snapshot::SnapshotState;

/// TRANSACTION NUMBER ≜ {0, 1, …}
///
/// "A transaction number is a non-negative integer which is used to
/// identify a transaction that modifies the database … the transaction's
/// time-stamp \[is\] the commit time for the transaction."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TransactionNumber(pub u64);

impl TransactionNumber {
    /// The next transaction number (`n + 1`).
    pub fn next(self) -> TransactionNumber {
        TransactionNumber(self.0 + 1)
    }
}

impl fmt::Display for TransactionNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for TransactionNumber {
    fn from(n: u64) -> TransactionNumber {
        TransactionNumber(n)
    }
}

/// RELATION TYPE ≜ {snapshot, rollback, historical, temporal}
///
/// The four classes of relations by their support for transaction time
/// and valid time (§1, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RelationType {
    /// Neither valid nor transaction time: a single snapshot state.
    Snapshot,
    /// Transaction time only: a sequence of snapshot states indexed by
    /// transaction time.
    Rollback,
    /// Valid time only: a single historical state.
    Historical,
    /// Both: a sequence of historical states indexed by transaction time.
    Temporal,
}

impl RelationType {
    /// Whether relations of this type keep their past states.
    pub fn keeps_history(self) -> bool {
        matches!(self, RelationType::Rollback | RelationType::Temporal)
    }

    /// Whether relations of this type hold historical (valid-time) states
    /// rather than snapshot states.
    pub fn holds_historical(self) -> bool {
        matches!(self, RelationType::Historical | RelationType::Temporal)
    }

    /// The surface-syntax keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            RelationType::Snapshot => "snapshot",
            RelationType::Rollback => "rollback",
            RelationType::Historical => "historical",
            RelationType::Temporal => "temporal",
        }
    }

    /// Parses a surface-syntax keyword.
    pub fn from_keyword(s: &str) -> Option<RelationType> {
        match s {
            "snapshot" => Some(RelationType::Snapshot),
            "rollback" => Some(RelationType::Rollback),
            "historical" => Some(RelationType::Historical),
            "temporal" => Some(RelationType::Temporal),
            _ => None,
        }
    }
}

impl fmt::Display for RelationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A state stored in (or produced by an expression over) the database:
/// either a snapshot state or an historical state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StateValue {
    /// An element of SNAPSHOT STATE.
    Snapshot(SnapshotState),
    /// An element of HISTORICAL STATE.
    Historical(HistoricalState),
}

impl StateValue {
    /// Whether this is an historical state.
    pub fn is_historical(&self) -> bool {
        matches!(self, StateValue::Historical(_))
    }

    /// Extracts the snapshot state, if that is the kind.
    pub fn as_snapshot(&self) -> Option<&SnapshotState> {
        match self {
            StateValue::Snapshot(s) => Some(s),
            StateValue::Historical(_) => None,
        }
    }

    /// Extracts the historical state, if that is the kind.
    pub fn as_historical(&self) -> Option<&HistoricalState> {
        match self {
            StateValue::Historical(h) => Some(h),
            StateValue::Snapshot(_) => None,
        }
    }

    /// Consumes into the snapshot state, if that is the kind.
    pub fn into_snapshot(self) -> Option<SnapshotState> {
        match self {
            StateValue::Snapshot(s) => Some(s),
            StateValue::Historical(_) => None,
        }
    }

    /// Consumes into the historical state, if that is the kind.
    pub fn into_historical(self) -> Option<HistoricalState> {
        match self {
            StateValue::Historical(h) => Some(h),
            StateValue::Snapshot(_) => None,
        }
    }

    /// Number of tuples in the state.
    pub fn len(&self) -> usize {
        match self {
            StateValue::Snapshot(s) => s.len(),
            StateValue::Historical(h) => h.len(),
        }
    }

    /// Whether the state has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty state with the same kind and scheme as `self`.
    pub fn empty_like(&self) -> StateValue {
        match self {
            StateValue::Snapshot(s) => {
                StateValue::Snapshot(SnapshotState::empty(s.schema().clone()))
            }
            StateValue::Historical(h) => {
                StateValue::Historical(HistoricalState::empty(h.schema().clone()))
            }
        }
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            StateValue::Snapshot(s) => s.size_bytes(),
            StateValue::Historical(h) => h.size_bytes(),
        }
    }
}

impl fmt::Display for StateValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateValue::Snapshot(s) => write!(f, "{s}"),
            StateValue::Historical(h) => write!(f, "{h}"),
        }
    }
}

impl From<SnapshotState> for StateValue {
    fn from(s: SnapshotState) -> StateValue {
        StateValue::Snapshot(s)
    }
}

impl From<HistoricalState> for StateValue {
    fn from(h: HistoricalState) -> StateValue {
        StateValue::Historical(h)
    }
}

/// One element of a relation's state sequence: a (state, transaction
/// number) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Version {
    /// The state that became current at `tx`.
    pub state: StateValue,
    /// The commit-time transaction number.
    pub tx: TransactionNumber,
}

/// RELATION ≜ RELATION TYPE × \[STATE × TRANSACTION NUMBER\]*
///
/// "A relation is an ordered pair consisting of a relation type, and a
/// sequence of (state, transaction number) pairs." The sequence invariant
/// — strictly increasing transaction numbers — is enforced by
/// [`Relation::push_version`]; for snapshot and historical relations the
/// sequence never exceeds one element.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Relation {
    rtype: RelationType,
    versions: Vec<Version>,
}

impl Relation {
    /// A newly defined relation: the given type and an empty sequence.
    pub fn new(rtype: RelationType) -> Relation {
        Relation {
            rtype,
            versions: Vec::new(),
        }
    }

    /// RTYPE: the relation's type.
    pub fn rtype(&self) -> RelationType {
        self.rtype
    }

    /// RSTATE: the relation's state sequence.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// The most recent version, if any.
    pub fn current(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// Whether the state kind matches the relation type.
    pub fn accepts(&self, state: &StateValue) -> bool {
        state.is_historical() == self.rtype.holds_historical()
    }

    /// Installs a new state at transaction `tx`.
    ///
    /// For snapshot/historical relations the single element is replaced;
    /// for rollback/temporal relations the pair is appended. The caller
    /// must have checked [`Relation::accepts`]; monotonicity of `tx` is
    /// enforced here (debug assertion plus silent clamp avoidance: the
    /// method panics in debug builds and is checked by callers in release
    /// paths through the sentence discipline).
    pub(crate) fn push_version(&mut self, state: StateValue, tx: TransactionNumber) {
        debug_assert!(self.accepts(&state), "state kind matches relation type");
        debug_assert!(
            self.versions.last().is_none_or(|v| v.tx < tx),
            "transaction numbers must be strictly increasing"
        );
        if self.rtype.keeps_history() {
            self.versions.push(Version { state, tx });
        } else {
            self.versions.clear();
            self.versions.push(Version { state, tx });
        }
    }

    /// Approximate footprint in bytes for space accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Relation>()
            + self
                .versions
                .iter()
                .map(|v| v.state.size_bytes() + std::mem::size_of::<TransactionNumber>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_snapshot::{DomainType, Schema, Value};

    fn snap(vals: &[i64]) -> StateValue {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        StateValue::Snapshot(
            SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap(),
        )
    }

    #[test]
    fn transaction_number_ordering() {
        assert!(TransactionNumber(1) < TransactionNumber(2));
        assert_eq!(TransactionNumber(1).next(), TransactionNumber(2));
    }

    #[test]
    fn relation_type_predicates() {
        assert!(RelationType::Rollback.keeps_history());
        assert!(RelationType::Temporal.keeps_history());
        assert!(!RelationType::Snapshot.keeps_history());
        assert!(RelationType::Temporal.holds_historical());
        assert!(!RelationType::Rollback.holds_historical());
    }

    #[test]
    fn relation_type_keywords_round_trip() {
        for t in [
            RelationType::Snapshot,
            RelationType::Rollback,
            RelationType::Historical,
            RelationType::Temporal,
        ] {
            assert_eq!(RelationType::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(RelationType::from_keyword("blob"), None);
    }

    #[test]
    fn snapshot_relation_keeps_single_version() {
        let mut r = Relation::new(RelationType::Snapshot);
        r.push_version(snap(&[1]), TransactionNumber(1));
        r.push_version(snap(&[2]), TransactionNumber(2));
        assert_eq!(r.versions().len(), 1);
        assert_eq!(r.current().unwrap().tx, TransactionNumber(2));
    }

    #[test]
    fn rollback_relation_appends_versions() {
        let mut r = Relation::new(RelationType::Rollback);
        r.push_version(snap(&[1]), TransactionNumber(1));
        r.push_version(snap(&[2]), TransactionNumber(3));
        assert_eq!(r.versions().len(), 2);
        assert_eq!(r.versions()[0].tx, TransactionNumber(1));
        assert_eq!(r.current().unwrap().tx, TransactionNumber(3));
    }

    #[test]
    fn accepts_checks_state_kind() {
        let r = Relation::new(RelationType::Rollback);
        assert!(r.accepts(&snap(&[1])));
        let h = Relation::new(RelationType::Temporal);
        assert!(!h.accepts(&snap(&[1])));
    }

    #[test]
    fn state_value_accessors() {
        let s = snap(&[1, 2]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_historical());
        assert!(s.as_snapshot().is_some());
        assert!(s.as_historical().is_none());
        assert!(s.empty_like().is_empty());
    }
}
