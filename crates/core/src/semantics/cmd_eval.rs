//! The semantic function **C** (§3.5, §4).
//!
//! ```text
//! C : COMMAND → [DATABASE → [DATABASE]]
//! ```
//!
//! "Execution of a command either produces a new database or leaves the
//! database unchanged." We expose two entry points:
//!
//! * [`Command::execute`] — returns `Result`: the new database and an
//!   outcome on success, a diagnostic on failure. This is what engines
//!   build on.
//! * [`Command::execute_total`] — the paper's total function: failures
//!   yield the unchanged database (the `else d` branches of §3.5).

use crate::error::CoreError;
use crate::semantics::aux::find_type;
use crate::semantics::database::Database;
use crate::semantics::domains::Relation;
use crate::syntax::command::{Command, CommandOutcome};

impl Command {
    /// Executes the command against `db`, producing the new database and
    /// an outcome (the denotation `C⟦self⟧ db`, with diagnostics).
    pub fn execute(&self, db: &Database) -> Result<(Database, CommandOutcome), CoreError> {
        match self {
            // C⟦define_relation(I, Y)⟧ d ≜
            //   if b(I) = ⊥ then (b[(Y⟦Y⟧, ⟨⟩)/I], n+1) else d
            Command::DefineRelation(ident, rtype) => {
                if db.state.is_defined(ident) {
                    return Err(CoreError::AlreadyDefined(ident.clone()));
                }
                let state = db.state.bind(ident.clone(), Relation::new(*rtype));
                Ok((Database::new(state, db.tx.next()), CommandOutcome::Defined))
            }

            // C⟦modify_state(I, E)⟧ d ≜ … (snapshot/historical: replace;
            // rollback/temporal: append; in both cases at tx n+1)
            Command::ModifyState(ident, expr) => {
                let relation = db
                    .state
                    .lookup(ident)
                    .ok_or_else(|| CoreError::UndefinedRelation(ident.clone()))?;
                // The expression is evaluated against d — i.e. against the
                // database *before* the modification.
                let new_state = expr.eval(db)?;
                // FINDTYPE(r, n) dispatch (§4): snapshot ∨ historical →
                // replace; rollback ∨ temporal → append.
                let _rtype = find_type(relation, db.tx);
                if !relation.accepts(&new_state) {
                    return Err(CoreError::StateTypeMismatch {
                        relation: ident.clone(),
                        rtype: relation.rtype(),
                    });
                }
                let mut updated = relation.clone();
                let next = db.tx.next();
                updated.push_version(new_state, next);
                let state = db.state.bind(ident.clone(), updated);
                Ok((Database::new(state, next), CommandOutcome::Modified))
            }

            // Extension [1987A]: delete_relation(I) maps I back to ⊥.
            Command::DeleteRelation(ident) => {
                if !db.state.is_defined(ident) {
                    return Err(CoreError::UndefinedRelation(ident.clone()));
                }
                let state = db.state.unbind(ident);
                Ok((Database::new(state, db.tx.next()), CommandOutcome::Deleted))
            }

            // Extension [1987A]: scheme evolution.
            Command::EvolveScheme(ident, change) => crate::ext::scheme::evolve(db, ident, change),

            // Extension: display(E) queries without changing the database.
            Command::Display(expr) => {
                let state = expr.eval(db)?;
                Ok((db.clone(), CommandOutcome::Displayed(state)))
            }
        }
    }

    /// The paper's total semantics: on any failure, "the command leaves
    /// the database unchanged".
    pub fn execute_total(&self, db: &Database) -> Database {
        match self.execute(db) {
            Ok((next, _)) => next,
            Err(_) => db.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::semantics::domains::{RelationType, TransactionNumber};
    use crate::syntax::expr::Expr;
    use txtime_historical::{HistoricalState, TemporalElement};
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![("x", DomainType::Int)]).unwrap()
    }

    fn snap(vals: &[i64]) -> SnapshotState {
        SnapshotState::from_rows(schema(), vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn hist(vals: &[(i64, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            schema(),
            vals.iter().map(|&(v, s, e)| {
                (
                    Tuple::new(vec![Value::Int(v)]),
                    TemporalElement::period(s, e),
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn define_increments_transaction_number() {
        let (db, out) = Command::define_relation("r", RelationType::Rollback)
            .execute(&Database::empty())
            .unwrap();
        assert_eq!(db.tx, TransactionNumber(1));
        assert_eq!(out, CommandOutcome::Defined);
        assert_eq!(
            db.state.lookup("r").unwrap().rtype(),
            RelationType::Rollback
        );
        assert!(db.state.lookup("r").unwrap().versions().is_empty());
    }

    #[test]
    fn redefining_fails_and_total_semantics_leaves_db_unchanged() {
        let (db, _) = Command::define_relation("r", RelationType::Rollback)
            .execute(&Database::empty())
            .unwrap();
        let again = Command::define_relation("r", RelationType::Snapshot);
        assert!(matches!(
            again.execute(&db),
            Err(CoreError::AlreadyDefined(_))
        ));
        assert_eq!(again.execute_total(&db), db);
    }

    #[test]
    fn modify_state_appends_for_rollback() {
        let db =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        let (db, _) = Command::modify_state("r", Expr::snapshot_const(snap(&[1])))
            .execute(&db)
            .unwrap();
        let (db, _) = Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2])))
            .execute(&db)
            .unwrap();
        let r = db.state.lookup("r").unwrap();
        assert_eq!(r.versions().len(), 2);
        assert_eq!(r.versions()[0].tx, TransactionNumber(2));
        assert_eq!(r.versions()[1].tx, TransactionNumber(3));
        assert_eq!(db.tx, TransactionNumber(3));
    }

    #[test]
    fn modify_state_replaces_for_snapshot() {
        let db =
            Command::define_relation("s", RelationType::Snapshot).execute_total(&Database::empty());
        let db = Command::modify_state("s", Expr::snapshot_const(snap(&[1]))).execute_total(&db);
        let db = Command::modify_state("s", Expr::snapshot_const(snap(&[2]))).execute_total(&db);
        let r = db.state.lookup("s").unwrap();
        assert_eq!(r.versions().len(), 1);
        assert_eq!(
            r.current().unwrap().state.as_snapshot().unwrap(),
            &snap(&[2])
        );
        // The version's tx is still stamped with the replacing transaction.
        assert_eq!(r.current().unwrap().tx, TransactionNumber(3));
    }

    #[test]
    fn modify_state_evaluates_against_pre_state() {
        // append semantics: E may reference ρ(r, ∞), which must see the
        // previous state, not the one being installed.
        let db =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        let db = Command::modify_state("r", Expr::snapshot_const(snap(&[1]))).execute_total(&db);
        let db = Command::modify_state(
            "r",
            Expr::current("r").union(Expr::snapshot_const(snap(&[2]))),
        )
        .execute_total(&db);
        let cur = Expr::current("r")
            .eval(&db)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert_eq!(cur, snap(&[1, 2]));
    }

    #[test]
    fn modify_state_on_undefined_relation_fails() {
        let c = Command::modify_state("ghost", Expr::snapshot_const(snap(&[1])));
        assert!(matches!(
            c.execute(&Database::empty()),
            Err(CoreError::UndefinedRelation(_))
        ));
    }

    #[test]
    fn modify_state_rejects_kind_mismatch() {
        let db =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        let c = Command::modify_state("r", Expr::historical_const(hist(&[(1, 0, 5)])));
        assert!(matches!(
            c.execute(&db),
            Err(CoreError::StateTypeMismatch { .. })
        ));
        // Total semantics: unchanged, tx not incremented.
        assert_eq!(c.execute_total(&db), db);
    }

    #[test]
    fn temporal_relation_appends_historical_states() {
        let db =
            Command::define_relation("t", RelationType::Temporal).execute_total(&Database::empty());
        let db = Command::modify_state("t", Expr::historical_const(hist(&[(1, 0, 5)])))
            .execute_total(&db);
        let db = Command::modify_state("t", Expr::historical_const(hist(&[(1, 0, 9)])))
            .execute_total(&db);
        assert_eq!(db.state.lookup("t").unwrap().versions().len(), 2);
    }

    #[test]
    fn historical_relation_replaces() {
        let db = Command::define_relation("h", RelationType::Historical)
            .execute_total(&Database::empty());
        let db = Command::modify_state("h", Expr::historical_const(hist(&[(1, 0, 5)])))
            .execute_total(&db);
        let db = Command::modify_state("h", Expr::historical_const(hist(&[(2, 0, 5)])))
            .execute_total(&db);
        assert_eq!(db.state.lookup("h").unwrap().versions().len(), 1);
    }

    #[test]
    fn delete_relation_unbinds() {
        let db =
            Command::define_relation("r", RelationType::Snapshot).execute_total(&Database::empty());
        let (db2, out) = Command::delete_relation("r").execute(&db).unwrap();
        assert_eq!(out, CommandOutcome::Deleted);
        assert!(!db2.state.is_defined("r"));
        assert_eq!(db2.tx, TransactionNumber(2));
        // The identifier is reusable afterwards.
        assert!(Command::define_relation("r", RelationType::Rollback)
            .execute(&db2)
            .is_ok());
    }

    #[test]
    fn display_reports_without_changing_database() {
        let db =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        let db = Command::modify_state("r", Expr::snapshot_const(snap(&[7]))).execute_total(&db);
        let (db2, out) = Command::display(Expr::current("r")).execute(&db).unwrap();
        assert_eq!(db2, db);
        match out {
            CommandOutcome::Displayed(s) => {
                assert_eq!(s.into_snapshot().unwrap(), snap(&[7]))
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn failed_expression_leaves_database_unchanged() {
        let db =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        // Project a non-existent attribute: E is partial, C is total.
        let c = Command::modify_state(
            "r",
            Expr::snapshot_const(snap(&[1])).project(vec!["ghost".into()]),
        );
        assert!(c.execute(&db).is_err());
        assert_eq!(c.execute_total(&db), db);
        assert_eq!(db.tx, TransactionNumber(1));
    }

    #[test]
    fn append_delete_replace_via_modify_state() {
        // "the modify_state command effectively performs append, delete,
        // and replace operations" — exercise each shape.
        let db =
            Command::define_relation("r", RelationType::Rollback).execute_total(&Database::empty());
        let db = Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2]))).execute_total(&db);

        // Append: previous ∪ {3}
        let db = Command::modify_state(
            "r",
            Expr::current("r").union(Expr::snapshot_const(snap(&[3]))),
        )
        .execute_total(&db);
        assert_eq!(
            Expr::current("r")
                .eval(&db)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[1, 2, 3])
        );

        // Delete: previous − {2}
        let db = Command::modify_state(
            "r",
            Expr::current("r").difference(Expr::snapshot_const(snap(&[2]))),
        )
        .execute_total(&db);
        assert_eq!(
            Expr::current("r")
                .eval(&db)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[1, 3])
        );

        // Replace: (previous − {3}) ∪ {4}
        let db = Command::modify_state(
            "r",
            Expr::current("r")
                .difference(Expr::snapshot_const(snap(&[3])))
                .union(Expr::snapshot_const(snap(&[4]))),
        )
        .execute_total(&db);
        assert_eq!(
            Expr::current("r")
                .eval(&db)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[1, 4])
        );

        // And every intermediate state is still reachable by rollback.
        let r = db.state.lookup("r").unwrap();
        assert_eq!(r.versions().len(), 4);
    }
}
