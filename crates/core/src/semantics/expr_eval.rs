//! The semantic function **E** (§3.4, §4).
//!
//! ```text
//! E : EXPRESSION → [DATABASE → [STATE]]
//! ```
//!
//! "The result of evaluating an expression on a specific database is a
//! \[snapshot or historical\] state. Note that evaluation of an expression
//! on a specific database does not change that database." Accordingly the
//! evaluator takes `&Database` and returns a fresh [`StateValue`].

use txtime_exec::{ExecPool, OpKind};
use txtime_historical::HistoricalState;
use txtime_snapshot::{Predicate, SnapshotState};

use crate::error::EvalError;
use crate::semantics::aux::find_state;
use crate::semantics::database::Database;
use crate::semantics::domains::{Relation, RelationType, StateValue};
use crate::syntax::expr::{Expr, TxSpec};

/// A selection/projection pair pushed down into rollback resolution.
///
/// When **E** meets `σ_F(ρ(I, N))`, `π_X(ρ(I, N))`, or
/// `π_X(σ_F(ρ(I, N)))` (and the ρ̂ counterparts), the operators can run
/// *during* resolution instead of on a fully materialized state — a
/// storage engine that reconstructs versions tuple-by-tuple never has to
/// build the tuples the filter would discard. The filter carries borrowed
/// pieces of the expression; [`RollbackFilter::apply`] applies them with
/// exactly the operators — and exactly the errors — the un-pushed
/// evaluation would have used.
#[derive(Debug, Clone, Copy)]
pub struct RollbackFilter<'a> {
    /// The selection predicate `F`, applied first (it is the innermost
    /// wrapper in the canonical `π_X(σ_F(·))` shape).
    pub predicate: Option<&'a Predicate>,
    /// The projection attribute list `X`, applied after selection.
    pub project: Option<&'a [String]>,
}

impl<'a> RollbackFilter<'a> {
    /// A filter that passes the state through unchanged.
    pub fn none() -> RollbackFilter<'a> {
        RollbackFilter {
            predicate: None,
            project: None,
        }
    }

    /// Whether the filter does anything at all.
    pub fn is_empty(&self) -> bool {
        self.predicate.is_none() && self.project.is_none()
    }

    /// Applies the filter to a resolved state: σ then π, dispatching to
    /// the snapshot or historical operators to match the wrapping
    /// expression (`historical` is the same flag that was passed to
    /// [`StateSource::resolve_rollback`]).
    ///
    /// Error behavior is identical to evaluating the un-pushed
    /// expression: a state of the wrong kind is diagnosed with the same
    /// `StateKindMismatch` (named after the innermost wrapping operator,
    /// which evaluates first), and predicate/attribute errors surface
    /// unchanged from the same operator implementations.
    pub fn apply(&self, value: StateValue, historical: bool) -> Result<StateValue, EvalError> {
        match (value, historical) {
            (StateValue::Snapshot(s), false) => {
                let s = match self.predicate {
                    Some(p) => s.select(p)?,
                    None => s,
                };
                let s = match self.project {
                    Some(attrs) => s.project(attrs)?,
                    None => s,
                };
                Ok(StateValue::Snapshot(s))
            }
            (StateValue::Historical(h), true) => {
                let h = match self.predicate {
                    Some(p) => h.hselect(p)?,
                    None => h,
                };
                let h = match self.project {
                    Some(attrs) => h.hproject(attrs)?,
                    None => h,
                };
                Ok(StateValue::Historical(h))
            }
            (value, historical) => {
                if self.is_empty() {
                    return Ok(value);
                }
                // The innermost wrapper evaluates first in the un-pushed
                // expression, so its name carries the diagnostic.
                let operator = match (self.predicate.is_some(), historical) {
                    (true, false) => "select",
                    (false, false) => "project",
                    (true, true) => "hselect",
                    (false, true) => "hproject",
                };
                Err(EvalError::StateKindMismatch {
                    operator,
                    expected_historical: historical,
                })
            }
        }
    }
}

/// Anything that can answer rollback lookups — the single point where
/// expression evaluation touches stored data.
///
/// The reference semantics implements this for [`Database`] via FINDSTATE;
/// the efficient engines in `txtime-storage` implement it over their own
/// representations. Everything else in **E** — the operators — is shared,
/// which is exactly what makes "demonstrating the equivalence of their
/// semantics with the simple semantics presented here" (§5) a matter of
/// testing this one method.
pub trait StateSource {
    /// Resolves `ρ(ident, spec)` (`historical = false`) or
    /// `ρ̂(ident, spec)` (`historical = true`).
    fn resolve_rollback(
        &self,
        ident: &str,
        spec: TxSpec,
        historical: bool,
    ) -> Result<StateValue, EvalError>;

    /// Resolves a rollback with a selection/projection pushed into it.
    ///
    /// The provided implementation resolves and then applies the filter,
    /// which is *definitionally* what the un-pushed expression computes —
    /// so the reference [`Database`] semantics is untouched by pushdown.
    /// Storage engines override this to filter while reconstructing.
    fn resolve_rollback_filtered(
        &self,
        ident: &str,
        spec: TxSpec,
        historical: bool,
        filter: &RollbackFilter<'_>,
    ) -> Result<StateValue, EvalError> {
        filter.apply(self.resolve_rollback(ident, spec, historical)?, historical)
    }
}

impl StateSource for Database {
    fn resolve_rollback(
        &self,
        ident: &str,
        spec: TxSpec,
        historical: bool,
    ) -> Result<StateValue, EvalError> {
        rollback(self, ident, spec, historical)
    }
}

impl Expr {
    /// Evaluates the expression against `db` (the denotation
    /// `E⟦self⟧ db`).
    pub fn eval(&self, db: &Database) -> Result<StateValue, EvalError> {
        self.eval_with(db)
    }

    /// Evaluates against any [`StateSource`].
    pub fn eval_with(&self, db: &impl StateSource) -> Result<StateValue, EvalError> {
        match self {
            Expr::SnapshotConst(s) => Ok(StateValue::Snapshot(s.clone())),
            Expr::HistoricalConst(h) => Ok(StateValue::Historical(h.clone())),

            Expr::Union(a, b) => {
                let (l, r) = (a.eval_snapshot(db, "union")?, b.eval_snapshot(db, "union")?);
                Ok(StateValue::Snapshot(l.union(&r)?))
            }
            Expr::Difference(a, b) => {
                let (l, r) = (a.eval_snapshot(db, "minus")?, b.eval_snapshot(db, "minus")?);
                Ok(StateValue::Snapshot(l.difference(&r)?))
            }
            Expr::Product(a, b) => {
                let (l, r) = (a.eval_snapshot(db, "times")?, b.eval_snapshot(db, "times")?);
                Ok(StateValue::Snapshot(l.product(&r)?))
            }
            Expr::Project(attrs, e) => match &**e {
                // π_X(ρ(I, N)) and π_X(σ_F(ρ(I, N))): push the operators
                // into rollback resolution.
                Expr::Rollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: None,
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, false, &filter)
                }
                Expr::Select(p, inner) if matches!(&**inner, Expr::Rollback(..)) => {
                    let Expr::Rollback(ident, spec) = &**inner else {
                        unreachable!("guard matched Rollback");
                    };
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, false, &filter)
                }
                _ => {
                    let s = e.eval_snapshot(db, "project")?;
                    Ok(StateValue::Snapshot(s.project(attrs)?))
                }
            },
            Expr::Select(p, e) => match &**e {
                // σ_F(ρ(I, N)): push the selection into resolution.
                Expr::Rollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: None,
                    };
                    db.resolve_rollback_filtered(ident, *spec, false, &filter)
                }
                _ => {
                    let s = e.eval_snapshot(db, "select")?;
                    Ok(StateValue::Snapshot(s.select(p)?))
                }
            },
            Expr::Rollback(ident, spec) => db.resolve_rollback(ident, *spec, false),

            Expr::HUnion(a, b) => {
                let (l, r) = (
                    a.eval_historical(db, "hunion")?,
                    b.eval_historical(db, "hunion")?,
                );
                Ok(StateValue::Historical(l.hunion(&r)?))
            }
            Expr::HDifference(a, b) => {
                let (l, r) = (
                    a.eval_historical(db, "hminus")?,
                    b.eval_historical(db, "hminus")?,
                );
                Ok(StateValue::Historical(l.hdifference(&r)?))
            }
            Expr::HProduct(a, b) => {
                let (l, r) = (
                    a.eval_historical(db, "htimes")?,
                    b.eval_historical(db, "htimes")?,
                );
                Ok(StateValue::Historical(l.hproduct(&r)?))
            }
            Expr::HProject(attrs, e) => match &**e {
                // π̂_X(ρ̂(I, N)) and π̂_X(σ̂_F(ρ̂(I, N))): the historical
                // pushdown shapes.
                Expr::HRollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: None,
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, true, &filter)
                }
                Expr::HSelect(p, inner) if matches!(&**inner, Expr::HRollback(..)) => {
                    let Expr::HRollback(ident, spec) = &**inner else {
                        unreachable!("guard matched HRollback");
                    };
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, true, &filter)
                }
                _ => {
                    let h = e.eval_historical(db, "hproject")?;
                    Ok(StateValue::Historical(h.hproject(attrs)?))
                }
            },
            Expr::HSelect(p, e) => match &**e {
                // σ̂_F(ρ̂(I, N)): push the selection into resolution.
                Expr::HRollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: None,
                    };
                    db.resolve_rollback_filtered(ident, *spec, true, &filter)
                }
                _ => {
                    let h = e.eval_historical(db, "hselect")?;
                    Ok(StateValue::Historical(h.hselect(p)?))
                }
            },
            Expr::Delta(g, v, e) => {
                let h = e.eval_historical(db, "delta")?;
                Ok(StateValue::Historical(h.delta(g, v)?))
            }
            Expr::HRollback(ident, spec) => db.resolve_rollback(ident, *spec, true),

            Expr::Join(spec, a, b) => {
                let (l, r) = (a.eval_snapshot(db, "join")?, b.eval_snapshot(db, "join")?);
                Ok(StateValue::Snapshot(l.equi_join(&r, spec)?))
            }
            Expr::HJoin(spec, a, b) => {
                let (l, r) = (
                    a.eval_historical(db, "hjoin")?,
                    b.eval_historical(db, "hjoin")?,
                );
                Ok(StateValue::Historical(l.hequi_join(&r, spec)?))
            }
        }
    }

    /// Evaluates against any [`StateSource`] with work scheduled on an
    /// [`ExecPool`] — the parallel twin of [`Expr::eval_with`].
    ///
    /// Three things run concurrently: the two subtrees of every binary
    /// operator ([`ExecPool::join`]), and the partitioned operator
    /// kernels (`*_par` in `txtime-snapshot`/`txtime-historical`). The
    /// result — value *and* error — is identical to the sequential
    /// evaluation: chunk merges preserve the canonical state order, and
    /// the left subtree's result is always inspected before the right's,
    /// so error selection matches left-to-right evaluation. A one-thread
    /// pool runs everything inline. The parallel-determinism property
    /// tests in `txtime-storage` pin this equivalence on every backend.
    pub fn eval_with_pool<S: StateSource + Sync>(
        &self,
        db: &S,
        pool: &ExecPool,
    ) -> Result<StateValue, EvalError> {
        match self {
            Expr::SnapshotConst(s) => Ok(StateValue::Snapshot(s.clone())),
            Expr::HistoricalConst(h) => Ok(StateValue::Historical(h.clone())),

            Expr::Union(a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_snapshot_pool(db, pool, "union"),
                    || b.eval_snapshot_pool(db, pool, "union"),
                );
                Ok(StateValue::Snapshot(l?.union_par(&r?, pool)?))
            }
            Expr::Difference(a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_snapshot_pool(db, pool, "minus"),
                    || b.eval_snapshot_pool(db, pool, "minus"),
                );
                Ok(StateValue::Snapshot(l?.difference_par(&r?, pool)?))
            }
            Expr::Product(a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_snapshot_pool(db, pool, "times"),
                    || b.eval_snapshot_pool(db, pool, "times"),
                );
                Ok(StateValue::Snapshot(l?.product_par(&r?, pool)?))
            }
            Expr::Project(attrs, e) => match &**e {
                // The pushdown shapes resolve exactly as in the
                // sequential evaluator — the store does the filtering.
                Expr::Rollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: None,
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, false, &filter)
                }
                Expr::Select(p, inner) if matches!(&**inner, Expr::Rollback(..)) => {
                    let Expr::Rollback(ident, spec) = &**inner else {
                        unreachable!("guard matched Rollback");
                    };
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, false, &filter)
                }
                _ => {
                    let s = e.eval_snapshot_pool(db, pool, "project")?;
                    Ok(StateValue::Snapshot(s.project_par(attrs, pool)?))
                }
            },
            Expr::Select(p, e) => match &**e {
                Expr::Rollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: None,
                    };
                    db.resolve_rollback_filtered(ident, *spec, false, &filter)
                }
                _ => {
                    let s = e.eval_snapshot_pool(db, pool, "select")?;
                    Ok(StateValue::Snapshot(s.select_par(p, pool)?))
                }
            },
            Expr::Rollback(ident, spec) => db.resolve_rollback(ident, *spec, false),

            Expr::HUnion(a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_historical_pool(db, pool, "hunion"),
                    || b.eval_historical_pool(db, pool, "hunion"),
                );
                Ok(StateValue::Historical(l?.hunion_par(&r?, pool)?))
            }
            Expr::HDifference(a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_historical_pool(db, pool, "hminus"),
                    || b.eval_historical_pool(db, pool, "hminus"),
                );
                Ok(StateValue::Historical(l?.hdifference_par(&r?, pool)?))
            }
            Expr::HProduct(a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_historical_pool(db, pool, "htimes"),
                    || b.eval_historical_pool(db, pool, "htimes"),
                );
                Ok(StateValue::Historical(l?.hproduct_par(&r?, pool)?))
            }
            Expr::HProject(attrs, e) => match &**e {
                Expr::HRollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: None,
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, true, &filter)
                }
                Expr::HSelect(p, inner) if matches!(&**inner, Expr::HRollback(..)) => {
                    let Expr::HRollback(ident, spec) = &**inner else {
                        unreachable!("guard matched HRollback");
                    };
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: Some(attrs),
                    };
                    db.resolve_rollback_filtered(ident, *spec, true, &filter)
                }
                _ => {
                    let h = e.eval_historical_pool(db, pool, "hproject")?;
                    Ok(StateValue::Historical(h.hproject_par(attrs, pool)?))
                }
            },
            Expr::HSelect(p, e) => match &**e {
                Expr::HRollback(ident, spec) => {
                    let filter = RollbackFilter {
                        predicate: Some(p),
                        project: None,
                    };
                    db.resolve_rollback_filtered(ident, *spec, true, &filter)
                }
                _ => {
                    let h = e.eval_historical_pool(db, pool, "hselect")?;
                    Ok(StateValue::Historical(h.hselect_par(p, pool)?))
                }
            },
            Expr::Delta(g, v, e) => {
                // δ_{G,V} rewrites valid-time components per entry; it
                // stays sequential (subtree parallelism still applies).
                let h = e.eval_historical_pool(db, pool, "delta")?;
                Ok(StateValue::Historical(h.delta(g, v)?))
            }
            Expr::HRollback(ident, spec) => db.resolve_rollback(ident, *spec, true),

            Expr::Join(spec, a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_snapshot_pool(db, pool, "join"),
                    || b.eval_snapshot_pool(db, pool, "join"),
                );
                Ok(StateValue::Snapshot(l?.equi_join_par(&r?, spec, pool)?))
            }
            Expr::HJoin(spec, a, b) => {
                let (l, r) = pool.join(
                    OpKind::Subtree,
                    || a.eval_historical_pool(db, pool, "hjoin"),
                    || b.eval_historical_pool(db, pool, "hjoin"),
                );
                Ok(StateValue::Historical(l?.hequi_join_par(&r?, spec, pool)?))
            }
        }
    }

    /// [`Expr::eval_snapshot`] through the pool-scheduled evaluator.
    fn eval_snapshot_pool<S: StateSource + Sync>(
        &self,
        db: &S,
        pool: &ExecPool,
        operator: &'static str,
    ) -> Result<SnapshotState, EvalError> {
        self.eval_with_pool(db, pool)?
            .into_snapshot()
            .ok_or(EvalError::StateKindMismatch {
                operator,
                expected_historical: false,
            })
    }

    /// [`Expr::eval_historical`] through the pool-scheduled evaluator.
    fn eval_historical_pool<S: StateSource + Sync>(
        &self,
        db: &S,
        pool: &ExecPool,
        operator: &'static str,
    ) -> Result<HistoricalState, EvalError> {
        self.eval_with_pool(db, pool)?
            .into_historical()
            .ok_or(EvalError::StateKindMismatch {
                operator,
                expected_historical: true,
            })
    }

    /// Evaluates, requiring a snapshot state.
    pub fn eval_snapshot(
        &self,
        db: &impl StateSource,
        operator: &'static str,
    ) -> Result<SnapshotState, EvalError> {
        self.eval_with(db)?
            .into_snapshot()
            .ok_or(EvalError::StateKindMismatch {
                operator,
                expected_historical: false,
            })
    }

    /// Evaluates, requiring an historical state.
    pub fn eval_historical(
        &self,
        db: &impl StateSource,
        operator: &'static str,
    ) -> Result<HistoricalState, EvalError> {
        self.eval_with(db)?
            .into_historical()
            .ok_or(EvalError::StateKindMismatch {
                operator,
                expected_historical: true,
            })
    }
}

/// The denotations of ρ(I, N) and ρ̂(I, N):
///
/// ```text
/// E⟦ρ(I, N)⟧ d ≜ if N = ∞ then FINDSTATE(r, n) else FINDSTATE(r, N⟦N⟧)
/// ```
///
/// where `d = (b, n)` and `r = b(I)`. Type rules (§3.1/§4):
///
/// * `ρ(I, ∞)` — `I` may be snapshot or rollback;
/// * `ρ(I, N)`, `N ≠ ∞` — `I` must be rollback ("The rollback operator
///   cannot retrieve a past state of a snapshot relation");
/// * `ρ̂` mirrors this for historical/temporal relations.
///
/// When FINDSTATE finds no element (the paper's "empty set" result) we
/// return an empty state with the relation's earliest known scheme; if the
/// relation has no states at all there is no scheme to give ∅ and we
/// diagnose `EmptyRelation`.
fn rollback(
    db: &Database,
    ident: &str,
    spec: TxSpec,
    historical: bool,
) -> Result<StateValue, EvalError> {
    let relation = db
        .state
        .lookup(ident)
        .ok_or_else(|| EvalError::UndefinedRelation(ident.to_string()))?;

    check_rollback_type(relation, ident, spec, historical)?;

    let tx = match spec {
        TxSpec::Current => db.tx,
        TxSpec::At(n) => n,
    };
    match find_state(relation, tx) {
        Some(state) => Ok(state.clone()),
        None => empty_like_first_version(relation, ident),
    }
}

fn check_rollback_type(
    relation: &Relation,
    ident: &str,
    spec: TxSpec,
    historical: bool,
) -> Result<(), EvalError> {
    let rtype = relation.rtype();
    if historical != rtype.holds_historical() {
        return Err(EvalError::RollbackTypeMismatch {
            relation: ident.to_string(),
            actual: rtype,
            historical,
        });
    }
    if matches!(spec, TxSpec::At(_)) && !rtype.keeps_history() {
        // ρ(I, N) with N ≠ ∞ on a snapshot relation (or ρ̂ on an
        // historical relation) is illegal.
        return if rtype == RelationType::Snapshot {
            Err(EvalError::RollbackOnSnapshot(ident.to_string()))
        } else {
            Err(EvalError::RollbackTypeMismatch {
                relation: ident.to_string(),
                actual: rtype,
                historical,
            })
        };
    }
    Ok(())
}

fn empty_like_first_version(relation: &Relation, ident: &str) -> Result<StateValue, EvalError> {
    match relation.versions().first() {
        Some(v) => Ok(v.state.empty_like()),
        // A defined relation with an empty sequence: even ∅ needs a
        // scheme in a typed implementation.
        None => Err(EvalError::EmptyRelation(ident.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::domains::TransactionNumber;
    use crate::syntax::command::Command;
    use crate::syntax::sentence::Sentence;
    use txtime_historical::TemporalElement;
    use txtime_snapshot::{DomainType, Predicate, Schema, Tuple, Value};

    fn schema() -> Schema {
        Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap()
    }

    fn snap(rows: &[(&str, i64)]) -> SnapshotState {
        SnapshotState::from_rows(
            schema(),
            rows.iter()
                .map(|&(n, s)| vec![Value::str(n), Value::Int(s)]),
        )
        .unwrap()
    }

    fn hist(rows: &[(&str, i64, u32, u32)]) -> HistoricalState {
        HistoricalState::new(
            schema(),
            rows.iter().map(|&(n, s, f, t)| {
                (
                    Tuple::new(vec![Value::str(n), Value::Int(s)]),
                    TemporalElement::period(f, t),
                )
            }),
        )
        .unwrap()
    }

    /// A database: rollback `emp` with three versions (tx 2, 3, 4) and a
    /// snapshot `cur` with one.
    fn db() -> Database {
        Sentence::new(vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::modify_state("emp", Expr::snapshot_const(snap(&[("alice", 100)]))),
            Command::modify_state(
                "emp",
                Expr::snapshot_const(snap(&[("alice", 100), ("bob", 200)])),
            ),
            Command::modify_state("emp", Expr::snapshot_const(snap(&[("bob", 250)]))),
            Command::define_relation("cur", RelationType::Snapshot),
            Command::modify_state("cur", Expr::snapshot_const(snap(&[("zoe", 1)]))),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    fn tdb() -> Database {
        Sentence::new(vec![
            Command::define_relation("hemp", RelationType::Temporal),
            Command::modify_state(
                "hemp",
                Expr::historical_const(hist(&[("alice", 100, 0, 10)])),
            ),
            Command::modify_state(
                "hemp",
                Expr::historical_const(hist(&[("alice", 100, 0, 10), ("bob", 200, 5, 20)])),
            ),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    #[test]
    fn constants_evaluate_to_themselves() {
        let s = snap(&[("a", 1)]);
        assert_eq!(
            Expr::snapshot_const(s.clone())
                .eval(&Database::empty())
                .unwrap(),
            StateValue::Snapshot(s)
        );
    }

    #[test]
    fn evaluation_does_not_change_database() {
        let d = db();
        let before = d.clone();
        let _ = Expr::current("emp").eval(&d).unwrap();
        let _ = Expr::rollback("emp", TxSpec::At(TransactionNumber(2))).eval(&d);
        assert_eq!(d, before);
    }

    #[test]
    fn rollback_current_returns_latest() {
        let s = Expr::current("emp").eval(&db()).unwrap();
        assert_eq!(s.into_snapshot().unwrap(), snap(&[("bob", 250)]));
    }

    #[test]
    fn rollback_interpolates() {
        let d = db();
        let at2 = Expr::rollback("emp", TxSpec::At(TransactionNumber(2)))
            .eval(&d)
            .unwrap();
        assert_eq!(at2.into_snapshot().unwrap(), snap(&[("alice", 100)]));
        let at3 = Expr::rollback("emp", TxSpec::At(TransactionNumber(3)))
            .eval(&d)
            .unwrap();
        assert_eq!(
            at3.into_snapshot().unwrap(),
            snap(&[("alice", 100), ("bob", 200)])
        );
    }

    #[test]
    fn rollback_before_first_version_is_empty_state() {
        let d = db();
        let s = Expr::rollback("emp", TxSpec::At(TransactionNumber(1)))
            .eval(&d)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert!(s.is_empty());
        assert_eq!(s.schema(), &schema());
    }

    #[test]
    fn rollback_on_snapshot_with_past_tx_is_illegal() {
        let d = db();
        assert!(matches!(
            Expr::rollback("cur", TxSpec::At(TransactionNumber(1))).eval(&d),
            Err(EvalError::RollbackOnSnapshot(_))
        ));
        // But ∞ is fine.
        assert!(Expr::current("cur").eval(&d).is_ok());
    }

    #[test]
    fn rollback_on_undefined_relation() {
        assert!(matches!(
            Expr::current("ghost").eval(&Database::empty()),
            Err(EvalError::UndefinedRelation(_))
        ));
    }

    #[test]
    fn rho_requires_snapshot_family() {
        let d = tdb();
        assert!(matches!(
            Expr::current("hemp").eval(&d),
            Err(EvalError::RollbackTypeMismatch { .. })
        ));
    }

    #[test]
    fn hrho_requires_historical_family() {
        let d = db();
        assert!(matches!(
            Expr::hcurrent("emp").eval(&d),
            Err(EvalError::RollbackTypeMismatch { .. })
        ));
    }

    #[test]
    fn hrollback_retrieves_past_historical_state() {
        let d = tdb();
        let h1 = Expr::hrollback("hemp", TxSpec::At(TransactionNumber(2)))
            .eval(&d)
            .unwrap()
            .into_historical()
            .unwrap();
        assert_eq!(h1, hist(&[("alice", 100, 0, 10)]));
        let h2 = Expr::hcurrent("hemp")
            .eval(&d)
            .unwrap()
            .into_historical()
            .unwrap();
        assert_eq!(h2.len(), 2);
    }

    #[test]
    fn algebra_over_rollback_results() {
        let d = db();
        // π_name(σ_{sal>150}(ρ(emp, 3)))
        let e = Expr::rollback("emp", TxSpec::At(TransactionNumber(3)))
            .select(Predicate::gt_const("sal", Value::Int(150)))
            .project(vec!["name".into()]);
        let s = e.eval(&d).unwrap().into_snapshot().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap().get(0), &Value::str("bob"));
    }

    #[test]
    fn union_of_two_rollback_times() {
        let d = db();
        let e = Expr::rollback("emp", TxSpec::At(TransactionNumber(2))).union(Expr::current("emp"));
        let s = e.eval(&d).unwrap().into_snapshot().unwrap();
        assert_eq!(s, snap(&[("alice", 100), ("bob", 250)]));
    }

    #[test]
    fn kind_mismatch_is_diagnosed() {
        let d = tdb();
        // Snapshot union over an historical operand.
        let e = Expr::hcurrent("hemp").union(Expr::hcurrent("hemp"));
        assert!(matches!(
            e.eval(&d),
            Err(EvalError::StateKindMismatch {
                operator: "union",
                ..
            })
        ));
    }

    #[test]
    fn empty_relation_has_no_scheme_for_rollback() {
        let d = Sentence::new(vec![Command::define_relation(
            "fresh",
            RelationType::Rollback,
        )])
        .unwrap()
        .eval()
        .unwrap();
        assert!(matches!(
            Expr::current("fresh").eval(&d),
            Err(EvalError::EmptyRelation(_))
        ));
    }
}
