//! Random generation of command sequences.
//!
//! The differential tests in `txtime-storage` (engine ≡ reference
//! semantics) and `txtime-txn` (concurrent ≡ serial) replay randomly
//! generated sentences; the rollback benchmarks (E2–E4) use the same
//! generator to build version histories with controlled churn.

use txtime_snapshot::rng::Rng;
use txtime_snapshot::rng::SliceRandom;

use txtime_snapshot::generate::{mutate_state, random_state, GenConfig};
use txtime_snapshot::{Schema, SnapshotState};

use crate::semantics::database::Database;
use crate::semantics::domains::RelationType;
use crate::syntax::command::Command;
use crate::syntax::expr::Expr;

/// Parameters for random sentence generation.
#[derive(Debug, Clone)]
pub struct CmdGenConfig {
    /// Value/state generation parameters.
    pub values: GenConfig,
    /// Relation names available to the generator.
    pub relations: Vec<String>,
    /// Fraction of each state mutated by a modify_state step.
    pub churn: f64,
}

impl Default for CmdGenConfig {
    fn default() -> CmdGenConfig {
        CmdGenConfig {
            values: GenConfig::default(),
            relations: vec!["r0".into(), "r1".into(), "r2".into()],
            churn: 0.3,
        }
    }
}

/// Generates a random command sequence of length `len` over rollback
/// relations sharing `schema`.
///
/// The sequence starts by defining every relation, then issues
/// `modify_state` commands whose new state is a controlled mutation of the
/// relation's previous state (or an initial random state). The result is
/// always a *valid* sentence body: replaying it against the reference
/// semantics never errors.
pub fn random_commands(
    rng: &mut impl Rng,
    schema: &Schema,
    cfg: &CmdGenConfig,
    len: usize,
) -> Vec<Command> {
    let mut commands: Vec<Command> = cfg
        .relations
        .iter()
        .map(|r| Command::define_relation(r.clone(), RelationType::Rollback))
        .collect();
    // Track each relation's current state so mutations stay incremental.
    let mut current: Vec<Option<SnapshotState>> = vec![None; cfg.relations.len()];
    for _ in 0..len {
        let idx = rng.gen_range(0..cfg.relations.len());
        let next = match &current[idx] {
            Some(s) => mutate_state(rng, s, &cfg.values, cfg.churn),
            None => random_state(rng, schema, &cfg.values),
        };
        commands.push(Command::modify_state(
            cfg.relations[idx].clone(),
            Expr::snapshot_const(next.clone()),
        ));
        current[idx] = Some(next);
    }
    commands
}

/// Builds a rollback history for a single relation: `versions` successive
/// states, each mutating `fraction` of the previous. Returns the resulting
/// database (relation name `"r"`). Used by experiments E2/E3.
pub fn rollback_history(
    rng: &mut impl Rng,
    schema: &Schema,
    cfg: &GenConfig,
    versions: usize,
    fraction: f64,
) -> Database {
    let mut db = Command::define_relation("r", RelationType::Rollback)
        .execute(&Database::empty())
        .expect("fresh database")
        .0;
    let mut state = random_state(rng, schema, cfg);
    for _ in 0..versions {
        db = Command::modify_state("r", Expr::snapshot_const(state.clone()))
            .execute(&db)
            .expect("valid modify_state")
            .0;
        state = mutate_state(rng, &state, cfg, fraction);
    }
    db
}

/// Picks a random defined relation name from a configuration.
pub fn random_relation<'a>(rng: &mut impl Rng, cfg: &'a CmdGenConfig) -> &'a str {
    cfg.relations
        .choose(rng)
        .expect("at least one relation configured")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::sentence::Sentence;
    use txtime_snapshot::generate::random_schema;
    use txtime_snapshot::rng::rngs::StdRng;
    use txtime_snapshot::rng::SeedableRng;

    #[test]
    fn generated_sentences_replay_cleanly() {
        let mut rng = StdRng::seed_from_u64(99);
        let schema = random_schema(&mut rng, 3);
        let cfg = CmdGenConfig::default();
        for _ in 0..10 {
            let cmds = random_commands(&mut rng, &schema, &cfg, 20);
            let s = Sentence::new(cmds).unwrap();
            let db = s.eval().expect("generated sentence is valid");
            assert!(db.tx.0 >= cfg.relations.len() as u64);
        }
    }

    #[test]
    fn rollback_history_has_requested_depth() {
        let mut rng = StdRng::seed_from_u64(3);
        let schema = random_schema(&mut rng, 2);
        let db = rollback_history(&mut rng, &schema, &GenConfig::default(), 25, 0.2);
        assert_eq!(db.state.lookup("r").unwrap().versions().len(), 25);
    }
}
