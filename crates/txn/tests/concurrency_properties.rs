//! Property tests: random concurrent workloads are serially equivalent.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_core::{Command, Database, Expr, RelationType, Sentence};
use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};
use txtime_txn::{check_serial_equivalence, ConcurrentManager, Transaction};

fn snap(vals: &[i64]) -> SnapshotState {
    let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
    SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
}

/// An initial database with three shared rollback relations.
fn initial() -> Database {
    Sentence::new(vec![
        Command::define_relation("a", RelationType::Rollback),
        Command::modify_state("a", Expr::snapshot_const(snap(&[0]))),
        Command::define_relation("b", RelationType::Rollback),
        Command::modify_state("b", Expr::snapshot_const(snap(&[0]))),
        Command::define_relation("c", RelationType::Rollback),
        Command::modify_state("c", Expr::snapshot_const(snap(&[0]))),
    ])
    .unwrap()
    .eval()
    .unwrap()
}

/// Random transactions over the shared relations: appends, deletes,
/// cross-relation copies — all deterministic commands, so serial replay
/// is a valid oracle.
fn random_transactions(seed: u64, count: usize) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rels = ["a", "b", "c"];
    (1..=count as u64)
        .map(|id| {
            let n_cmds = rng.gen_range(1..=3);
            let commands = (0..n_cmds)
                .map(|_| {
                    let target = rels[rng.gen_range(0..rels.len())];
                    match rng.gen_range(0..3) {
                        // append a distinct value
                        0 => Command::modify_state(
                            target,
                            Expr::current(target)
                                .union(Expr::snapshot_const(snap(&[rng.gen_range(0..100)]))),
                        ),
                        // remove a value
                        1 => Command::modify_state(
                            target,
                            Expr::current(target)
                                .difference(Expr::snapshot_const(snap(&[rng.gen_range(0..100)]))),
                        ),
                        // copy union of two relations
                        _ => {
                            let src = rels[rng.gen_range(0..rels.len())];
                            Command::modify_state(
                                target,
                                Expr::current(target).union(Expr::current(src)),
                            )
                        }
                    }
                })
                .collect();
            Transaction::new(id, commands)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_equals_serial_in_commit_order(
        seed in any::<u64>(),
        count in 2usize..20,
        threads in 1usize..6,
    ) {
        let init = initial();
        let txns = random_transactions(seed, count);
        let report = ConcurrentManager::new().run_from(init.clone(), txns.clone(), threads);
        prop_assert_eq!(report.commits.len(), count, "all transactions commit");
        check_serial_equivalence(&init, &txns, &report.commits, &report.database)
            .map_err(TestCaseError::fail)?;

        // Commit-time transaction numbers strictly increase.
        let txs: Vec<u64> = report.commits.iter().map(|c| c.commit_tx.0).collect();
        prop_assert!(txs.windows(2).all(|w| w[0] < w[1]));

        // Every relation's version sequence is strictly increasing too.
        for (_, rel) in report.database.state.iter() {
            let vs: Vec<u64> = rel.versions().iter().map(|v| v.tx.0).collect();
            prop_assert!(vs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn single_thread_run_matches_submission_order(seed in any::<u64>(), count in 2usize..12) {
        // With one worker and a FIFO queue, commit order is submission
        // order, so the result must equal the plain serial executor.
        let init = initial();
        let txns = random_transactions(seed, count);
        let report = ConcurrentManager::new().run_from(init.clone(), txns.clone(), 1);
        let serial = txtime_txn::history::run_serial(&init, &txns).unwrap();
        prop_assert_eq!(report.database, serial);
    }
}
