//! Transactions: atomic sequences of commands.

use std::collections::BTreeSet;

use txtime_core::Command;

/// An atomic unit of work: one or more commands that commit together or
/// not at all.
///
/// The paper's base semantics increments the transaction number once per
/// command; grouping commands into a transaction does not change that —
/// each command inside still receives its own commit-time number — it
/// adds atomicity (all-or-nothing installation) and isolation (the
/// concurrent manager validates the whole group against one snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Client-assigned identifier (used in reports and commit records).
    pub id: u64,
    /// The commands, executed in order.
    pub commands: Vec<Command>,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(id: u64, commands: Vec<Command>) -> Transaction {
        Transaction { id, commands }
    }

    /// The relations this transaction reads (via ρ/ρ̂ in expressions).
    pub fn read_set(&self) -> BTreeSet<String> {
        self.commands
            .iter()
            .flat_map(|c| c.read_set().into_iter().map(str::to_string))
            .collect()
    }

    /// The relations this transaction writes (defines, modifies, deletes,
    /// or evolves).
    pub fn write_set(&self) -> BTreeSet<String> {
        self.commands
            .iter()
            .filter_map(|c| c.write_target().map(str::to_string))
            .collect()
    }

    /// Whether the transaction conflicts with a set of relations written
    /// by others: true if its read or write set intersects them.
    pub fn conflicts_with(&self, written: &BTreeSet<String>) -> bool {
        self.read_set().iter().any(|r| written.contains(r))
            || self.write_set().iter().any(|w| written.contains(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Expr, RelationType};

    #[test]
    fn read_and_write_sets() {
        let t = Transaction::new(
            1,
            vec![
                Command::define_relation("a", RelationType::Rollback),
                Command::modify_state("a", Expr::current("b").union(Expr::current("c"))),
                Command::display(Expr::current("d")),
            ],
        );
        let reads = t.read_set();
        assert!(reads.contains("b") && reads.contains("c") && reads.contains("d"));
        assert!(!reads.contains("a"));
        let writes = t.write_set();
        assert_eq!(writes.len(), 1);
        assert!(writes.contains("a"));
    }

    #[test]
    fn conflict_detection() {
        let t = Transaction::new(1, vec![Command::modify_state("a", Expr::current("b"))]);
        let mut written = BTreeSet::new();
        assert!(!t.conflicts_with(&written));
        written.insert("b".to_string()); // read-write conflict
        assert!(t.conflicts_with(&written));
        let mut written2 = BTreeSet::new();
        written2.insert("a".to_string()); // write-write conflict
        assert!(t.conflicts_with(&written2));
    }
}
