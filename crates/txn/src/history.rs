//! Commit histories and the serial-equivalence checker.

use std::collections::BTreeSet;

use txtime_core::{CoreError, Database, TransactionNumber};

use crate::transaction::Transaction;

/// One committed transaction, as recorded by the concurrent manager.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// The client's transaction id.
    pub id: u64,
    /// 0-based position in the commit order.
    pub commit_serial: u64,
    /// The database clock immediately after this commit.
    pub commit_tx: TransactionNumber,
    /// The relations the transaction wrote.
    pub write_set: BTreeSet<String>,
}

/// Checks the §3.2 requirement: the concurrent run's final database must
/// equal the *serial* execution of its committed transactions in commit
/// order, starting from the same initial database.
///
/// Returns the serial replay's final database on success, or a
/// description of the divergence.
pub fn check_serial_equivalence(
    initial: &Database,
    transactions: &[Transaction],
    commits: &[CommitRecord],
    concurrent_result: &Database,
) -> Result<Database, String> {
    let mut db = initial.clone();
    for record in commits {
        let txn = transactions
            .iter()
            .find(|t| t.id == record.id)
            .ok_or_else(|| format!("commit record for unknown transaction {}", record.id))?;
        for cmd in &txn.commands {
            match cmd.execute(&db) {
                Ok((next, _)) => db = next,
                Err(e) => {
                    return Err(format!(
                        "serial replay of committed transaction {} failed: {e}",
                        record.id
                    ))
                }
            }
        }
        if db.tx != record.commit_tx {
            return Err(format!(
                "after transaction {}: serial clock {} != recorded commit clock {}",
                record.id, db.tx, record.commit_tx
            ));
        }
    }
    if &db == concurrent_result {
        Ok(db)
    } else {
        Err("concurrent final database differs from serial replay in commit order".into())
    }
}

/// The §3.2 monotonicity requirement on commit timestamps as a
/// standalone check: every committed transaction's number must strictly
/// exceed its predecessor's. The server's group-commit stage asserts
/// this over each batch's acked clocks, and the crash-recovery tests
/// assert it over the clocks a journal replay reconstructs.
pub fn is_monotone(commit_txs: &[TransactionNumber]) -> bool {
    commit_txs.windows(2).all(|w| w[0] < w[1])
}

/// Serially executes transactions in the given order (the trivial
/// baseline executor for experiment E8).
pub fn run_serial(
    initial: &Database,
    transactions: &[Transaction],
) -> Result<Database, (u64, CoreError)> {
    let mut db = initial.clone();
    for txn in transactions {
        let mut working = db.clone();
        let mut ok = true;
        for cmd in &txn.commands {
            match cmd.execute(&working) {
                Ok((next, _)) => working = next,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            db = working;
        }
        // Failed transactions are skipped (atomic abort), matching the
        // concurrent manager's failure handling.
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrentManager;
    use txtime_core::{Command, Expr, RelationType, Sentence};
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn initial() -> Database {
        Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[0]))),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    #[test]
    fn concurrent_run_is_serially_equivalent() {
        let txns: Vec<Transaction> = (1..=10)
            .map(|i| {
                Transaction::new(
                    i,
                    vec![Command::modify_state(
                        "r",
                        Expr::current("r").union(Expr::snapshot_const(snap(&[i as i64]))),
                    )],
                )
            })
            .collect();
        let init = initial();
        let report = ConcurrentManager::new().run_from(init.clone(), txns.clone(), 4);
        check_serial_equivalence(&init, &txns, &report.commits, &report.database)
            .expect("concurrent run must be serially equivalent");
    }

    #[test]
    fn monotone_commit_clocks() {
        let t = |n| TransactionNumber(n);
        assert!(is_monotone(&[]));
        assert!(is_monotone(&[t(3)]));
        assert!(is_monotone(&[t(1), t(2), t(5)]));
        assert!(!is_monotone(&[t(1), t(1)]));
        assert!(!is_monotone(&[t(2), t(1)]));
    }

    #[test]
    fn checker_rejects_wrong_result() {
        let txns = vec![Transaction::new(
            1,
            vec![Command::modify_state(
                "r",
                Expr::current("r").union(Expr::snapshot_const(snap(&[7]))),
            )],
        )];
        let init = initial();
        let report = ConcurrentManager::new().run_from(init.clone(), txns.clone(), 1);
        // Tamper: claim a different final database.
        let err = check_serial_equivalence(&init, &txns, &report.commits, &init);
        assert!(err.is_err());
    }
}
