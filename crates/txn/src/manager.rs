//! The serial transaction manager: atomicity over the reference
//! semantics.

use std::sync::Mutex;

use txtime_core::{
    CommandOutcome, CoreError, Database, EvalError, Expr, StateValue, TransactionNumber,
};

use crate::transaction::Transaction;

/// What a committed transaction reports back.
#[derive(Debug, Clone)]
pub struct TxnReceipt {
    /// The client's transaction id.
    pub id: u64,
    /// Commit-time transaction numbers consumed by the commands, in
    /// order (one per mutating command).
    pub first_tx: TransactionNumber,
    /// The database clock after commit.
    pub last_tx: TransactionNumber,
    /// Per-command outcomes.
    pub outcomes: Vec<CommandOutcome>,
}

/// A thread-safe transaction manager over the reference database.
///
/// Because [`Database`] is persistent (cloning shares structure), a
/// transaction executes against a working copy; commit atomically swaps
/// the copy in, abort simply drops it. The mutex serializes commits, so
/// commit-time transaction numbers are monotonically increasing across
/// all clients — the paper's required semantics.
pub struct TransactionManager {
    db: Mutex<Database>,
}

impl TransactionManager {
    /// A manager over the empty database (the start of every sentence).
    pub fn new() -> TransactionManager {
        TransactionManager {
            db: Mutex::new(Database::empty()),
        }
    }

    /// A manager over an existing database.
    pub fn with_database(db: Database) -> TransactionManager {
        TransactionManager { db: Mutex::new(db) }
    }

    /// Executes `txn` atomically: if every command succeeds the effects
    /// install and a receipt returns; if any command fails the database
    /// is untouched and the error returns.
    pub fn submit(&self, txn: &Transaction) -> Result<TxnReceipt, CoreError> {
        let mut guard = self.db.lock().expect("manager lock");
        let mut working = guard.clone();
        let first_tx = working.tx.next();
        let mut outcomes = Vec::with_capacity(txn.commands.len());
        for cmd in &txn.commands {
            let (next, outcome) = cmd.execute(&working)?;
            working = next;
            outcomes.push(outcome);
        }
        let last_tx = working.tx;
        *guard = working;
        Ok(TxnReceipt {
            id: txn.id,
            first_tx,
            last_tx,
            outcomes,
        })
    }

    /// Evaluates a read-only query against the current database.
    pub fn query(&self, expr: &Expr) -> Result<StateValue, EvalError> {
        expr.eval(&self.db.lock().expect("manager lock"))
    }

    /// A snapshot of the current database.
    pub fn snapshot(&self) -> Database {
        self.db.lock().expect("manager lock").clone()
    }
}

impl Default for TransactionManager {
    fn default() -> TransactionManager {
        TransactionManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, RelationType};
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn successful_transaction_commits_all_commands() {
        let mgr = TransactionManager::new();
        let receipt = mgr
            .submit(&Transaction::new(
                1,
                vec![
                    Command::define_relation("r", RelationType::Rollback),
                    Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
                    Command::modify_state("r", Expr::snapshot_const(snap(&[1, 2]))),
                ],
            ))
            .unwrap();
        assert_eq!(receipt.first_tx, TransactionNumber(1));
        assert_eq!(receipt.last_tx, TransactionNumber(3));
        assert_eq!(
            mgr.query(&Expr::current("r"))
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[1, 2])
        );
    }

    #[test]
    fn failing_transaction_aborts_atomically() {
        let mgr = TransactionManager::new();
        mgr.submit(&Transaction::new(
            1,
            vec![Command::define_relation("r", RelationType::Rollback)],
        ))
        .unwrap();
        let before = mgr.snapshot();
        // Second command fails → first must not be visible either.
        let err = mgr.submit(&Transaction::new(
            2,
            vec![
                Command::modify_state("r", Expr::snapshot_const(snap(&[1]))),
                Command::modify_state("ghost", Expr::current("ghost")),
            ],
        ));
        assert!(err.is_err());
        assert_eq!(mgr.snapshot(), before);
        // No transaction numbers were consumed by the aborted work.
        assert_eq!(mgr.snapshot().tx, TransactionNumber(1));
    }

    #[test]
    fn receipts_expose_commit_clock_progression() {
        let mgr = TransactionManager::new();
        let r1 = mgr
            .submit(&Transaction::new(
                1,
                vec![Command::define_relation("a", RelationType::Snapshot)],
            ))
            .unwrap();
        let r2 = mgr
            .submit(&Transaction::new(
                2,
                vec![Command::define_relation("b", RelationType::Snapshot)],
            ))
            .unwrap();
        assert!(r1.last_tx < r2.first_tx || r1.last_tx.next() == r2.first_tx);
        assert_eq!(r2.last_tx, TransactionNumber(2));
    }
}
