//! The optimistic concurrent front-end.
//!
//! Worker threads execute transactions against database *snapshots* and
//! validate at commit time. Validation is backward: a transaction may
//! commit only if no relation in its read or write set was written by a
//! transaction that committed after its snapshot was taken. On conflict
//! it restarts with a fresh snapshot (bounded retries), echoing the
//! restart discipline of the timestamp-ordering schemes the paper cites
//! \[Rosenkrantz et al. 1978; Stearns et al. 1976\].
//!
//! Commits are installed under a mutex, so the commit sequence — and with
//! it the assignment of transaction numbers — is a single monotonically
//! increasing order, which is exactly the condition §3.2 places on
//! concurrent implementations.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use std::collections::VecDeque;
use std::sync::Mutex;

use txtime_core::{CoreError, Database};

use crate::history::CommitRecord;
use crate::transaction::Transaction;

/// State shared between workers.
struct Shared {
    /// The committed database plus the log of (commit serial, write set).
    committed: Mutex<CommitState>,
    /// Transactions awaiting execution.
    queue: Mutex<VecDeque<Transaction>>,
    /// Total restarts across the run (reporting).
    restarts: AtomicUsize,
}

struct CommitState {
    db: Database,
    /// One entry per committed transaction, in commit order.
    log: Vec<CommitRecord>,
}

/// The outcome of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// The final database.
    pub database: Database,
    /// Commit records in commit order.
    pub commits: Vec<CommitRecord>,
    /// Transactions that aborted with an execution error (id, error).
    pub failures: Vec<(u64, CoreError)>,
    /// Number of validation-conflict restarts that occurred.
    pub restarts: usize,
}

/// Runs `transactions` on `threads` worker threads with optimistic
/// validation; returns when the queue drains.
pub struct ConcurrentManager {
    /// Maximum restarts per transaction before it is executed while
    /// holding the commit lock (guaranteed progress).
    pub max_restarts: usize,
}

impl Default for ConcurrentManager {
    fn default() -> ConcurrentManager {
        ConcurrentManager { max_restarts: 32 }
    }
}

impl ConcurrentManager {
    /// A manager with default restart bounds.
    pub fn new() -> ConcurrentManager {
        ConcurrentManager::default()
    }

    /// Executes the batch from the empty database.
    pub fn run(&self, transactions: Vec<Transaction>, threads: usize) -> ConcurrentReport {
        self.run_from(Database::empty(), transactions, threads)
    }

    /// Executes the batch from an existing database.
    pub fn run_from(
        &self,
        initial: Database,
        transactions: Vec<Transaction>,
        threads: usize,
    ) -> ConcurrentReport {
        let shared = Arc::new(Shared {
            committed: Mutex::new(CommitState {
                db: initial,
                log: Vec::new(),
            }),
            queue: Mutex::new(VecDeque::new()),
            restarts: AtomicUsize::new(0),
        });
        shared
            .queue
            .lock()
            .expect("queue lock")
            .extend(transactions);

        let failures = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                let shared = Arc::clone(&shared);
                let failures = &failures;
                let max_restarts = self.max_restarts;
                scope.spawn(move || {
                    while let Some(txn) = {
                        let mut q = shared.queue.lock().expect("queue lock");
                        q.pop_front()
                    } {
                        match execute_with_validation(&shared, &txn, max_restarts) {
                            Ok(()) => {}
                            Err(e) => failures.lock().expect("failures lock").push((txn.id, e)),
                        }
                    }
                });
            }
        });

        let state = shared.committed.lock().expect("commit lock");
        ConcurrentReport {
            database: state.db.clone(),
            commits: state.log.clone(),
            failures: failures.into_inner().expect("failures lock"),
            restarts: shared.restarts.load(Ordering::Relaxed),
        }
    }
}

fn execute_with_validation(
    shared: &Shared,
    txn: &Transaction,
    max_restarts: usize,
) -> Result<(), CoreError> {
    for _attempt in 0..max_restarts {
        // Take a snapshot and remember how many commits it reflects.
        let (snapshot, snapshot_commits) = {
            let state = shared.committed.lock().expect("commit lock");
            (state.db.clone(), state.log.len())
        };

        // Execute optimistically, off the lock.
        let mut working = snapshot;
        for cmd in &txn.commands {
            let (next, _) = cmd.execute(&working)?;
            working = next;
        }

        // Validate and commit under the lock.
        let mut state = shared.committed.lock().expect("commit lock");
        let conflicting: BTreeSet<String> = state.log[snapshot_commits..]
            .iter()
            .flat_map(|r| r.write_set.iter().cloned())
            .collect();
        if txn.conflicts_with(&conflicting) {
            drop(state);
            shared.restarts.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // Replay against the *committed* database (other transactions may
        // have committed on non-conflicting relations since the snapshot;
        // effects must compose with theirs, and transaction numbers must
        // come from the single committed clock).
        let mut replayed = state.db.clone();
        for cmd in &txn.commands {
            let (next, _) = cmd.execute(&replayed)?;
            replayed = next;
        }
        state.db = replayed;
        let record = CommitRecord {
            id: txn.id,
            commit_serial: state.log.len() as u64,
            commit_tx: state.db.tx,
            write_set: txn.write_set(),
        };
        state.log.push(record);
        return Ok(());
    }

    // Fallback for livelocked transactions: execute while holding the
    // lock — trivially serial.
    let mut state = shared.committed.lock().expect("commit lock");
    let mut working = state.db.clone();
    for cmd in &txn.commands {
        let (next, _) = cmd.execute(&working)?;
        working = next;
    }
    state.db = working;
    let record = CommitRecord {
        id: txn.id,
        commit_serial: state.log.len() as u64,
        commit_tx: state.db.tx,
        write_set: txn.write_set(),
    };
    state.log.push(record);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, Expr, RelationType};
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn setup() -> Database {
        use txtime_core::Sentence;
        Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(snap(&[0]))),
        ])
        .unwrap()
        .eval()
        .unwrap()
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let txns: Vec<Transaction> = (0..16)
            .map(|i| {
                Transaction::new(
                    i,
                    vec![
                        Command::define_relation(format!("r{i}"), RelationType::Rollback),
                        Command::modify_state(
                            format!("r{i}"),
                            Expr::snapshot_const(snap(&[i as i64])),
                        ),
                    ],
                )
            })
            .collect();
        let report = ConcurrentManager::new().run(txns, 4);
        assert_eq!(report.commits.len(), 16);
        assert!(report.failures.is_empty());
        assert_eq!(report.database.state.len(), 16);
    }

    #[test]
    fn conflicting_appenders_serialize_correctly() {
        // 8 transactions each append one tuple to the same relation; the
        // final state must contain all 8 regardless of interleaving.
        let txns: Vec<Transaction> = (1..=8)
            .map(|i| {
                Transaction::new(
                    i,
                    vec![Command::modify_state(
                        "r",
                        Expr::current("r").union(Expr::snapshot_const(snap(&[i as i64]))),
                    )],
                )
            })
            .collect();
        let report = ConcurrentManager::new().run_from(setup(), txns, 4);
        assert_eq!(report.commits.len(), 8);
        let cur = Expr::current("r")
            .eval(&report.database)
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert_eq!(cur, snap(&[0, 1, 2, 3, 4, 5, 6, 7, 8]));
        // And every intermediate version is on record: 1 initial + 8.
        assert_eq!(
            report.database.state.lookup("r").unwrap().versions().len(),
            9
        );
    }

    #[test]
    fn commit_transaction_numbers_strictly_increase() {
        let txns: Vec<Transaction> = (1..=12)
            .map(|i| {
                Transaction::new(
                    i,
                    vec![Command::modify_state(
                        "r",
                        Expr::current("r").union(Expr::snapshot_const(snap(&[i as i64]))),
                    )],
                )
            })
            .collect();
        let report = ConcurrentManager::new().run_from(setup(), txns, 4);
        let txs: Vec<u64> = report.commits.iter().map(|c| c.commit_tx.0).collect();
        assert!(txs.windows(2).all(|w| w[0] < w[1]), "commit txs: {txs:?}");
    }

    #[test]
    fn erroring_transactions_fail_without_side_effects() {
        let txns = vec![
            Transaction::new(
                1,
                vec![Command::modify_state("ghost", Expr::current("ghost"))],
            ),
            Transaction::new(
                2,
                vec![Command::modify_state(
                    "r",
                    Expr::current("r").union(Expr::snapshot_const(snap(&[5]))),
                )],
            ),
        ];
        let report = ConcurrentManager::new().run_from(setup(), txns, 2);
        assert_eq!(report.commits.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].0, 1);
    }
}
