#![warn(missing_docs)]

//! Transactions and concurrency control for the txtime language.
//!
//! The paper fixes the *semantics* of transactions, not their mechanism:
//! "We assume that database modifications occur sequentially and that a
//! transaction's time-stamp as represented by its transaction number is
//! the commit time for the transaction … Implementations may also permit
//! concurrent transactions, again as long as the semantics of sequential
//! update with a monotonically increasing transaction time is preserved"
//! (§3.2).
//!
//! This crate supplies both halves of that sentence:
//!
//! * [`Transaction`] and [`TransactionManager`] — atomic multi-command
//!   transactions over the reference [`txtime_core::Database`]. The
//!   persistent (structure-sharing) representation makes abort free: a
//!   transaction executes against a working copy and either installs it
//!   or drops it.
//! * [`ConcurrentManager`] — an optimistic, validation-based concurrent
//!   front-end (in the family of the timestamp-ordering schemes the paper
//!   cites: Bernstein et al., Reed, Rosenkrantz et al.). Worker threads
//!   execute transactions against database snapshots and validate at
//!   commit: if a relation in the transaction's read or write set was
//!   written since the snapshot was taken, the transaction restarts.
//!   Commit installs effects under a mutex, so commit timestamps are
//!   assigned in a single monotonically increasing sequence.
//! * [`history::check_serial_equivalence`] — the checker that makes the
//!   quoted requirement executable: the concurrent run's final database
//!   must equal the serial replay of its committed transactions in commit
//!   order.

pub mod concurrent;
pub mod history;
pub mod manager;
pub mod transaction;

pub use concurrent::{ConcurrentManager, ConcurrentReport};
pub use history::{check_serial_equivalence, is_monotone, CommitRecord};
pub use manager::{TransactionManager, TxnReceipt};
pub use transaction::Transaction;
