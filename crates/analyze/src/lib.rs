#![warn(missing_docs)]
//! Static analysis for transaction-time algebra sentences.
//!
//! The paper's FINDTYPE gives every legal expression a relation type;
//! this crate is its static counterpart plus the judgments that make a
//! sentence *legal* in the first place. Because a sentence always
//! evaluates from the empty database, the checker can replay it exactly:
//! it knows, per command, the transaction clock, every relation's type,
//! and (through constant-rooted schema inference) the scheme of every
//! version a relation will ever hold. That is enough to decide, before
//! evaluation, whether any dynamic type error can occur — including the
//! FINDSTATE boundary cases around ∅.
//!
//! The pieces:
//!
//! * [`Catalog`]/[`RelationFacts`] — the transaction-indexed static
//!   database state, with a static FINDSTATE ([`RelationFacts::find_state`]).
//! * [`infer_expr`]/[`ExprFacts`] — expression typing: snapshot vs
//!   historical kind plus scheme, reporting `E001`–`E010`.
//! * [`Checker`]/[`check_sentence`] — command- and sentence-level
//!   well-formedness, reporting `E020`–`E023`.
//! * [`Diagnostic`]/[`ErrorCode`] — structured findings with stable
//!   codes and source spans (threaded from the parser).
//! * [`SentenceExt`] — checked evaluation (`run`), with
//!   `run_unchecked` as the opt-out.
//! * [`SchemaCatalog`]/[`infer_schema`] — flat database-snapshot schema
//!   inference, shared with the optimizer.
//! * [`interner`] — the hash-consed [`ExprId`] DAG (shared with the
//!   optimizer's view memo).
//! * [`stats`] — the abstract domains ([`CardInterval`], [`ValueRange`])
//!   and the [`StatsCatalog`] of per-relation, per-version statistics.
//! * [`lint`] — `txtime-lint`: abstract interpretation over the DAG plus
//!   flow-sensitive dead-command analysis, reporting `W001`–`W022` as
//!   non-fatal [`Warning`]s.

pub mod catalog;
pub mod check;
pub mod diagnostic;
pub mod infer;
pub mod interner;
pub mod lint;
pub mod run;
pub mod schema_infer;
pub mod stats;

pub use catalog::{Catalog, RelationFacts, StaticState};
pub use check::{check_command, check_expr, check_sentence, Checker};
pub use diagnostic::{Diagnostic, ErrorCode, WarnCode, Warning};
pub use infer::{infer_expr, ExprFacts, StaticKind};
pub use interner::{ExprId, ExprInterner, ExprNode, NodeOp};
pub use lint::{
    analyze_expr, claim_target, lint_sentence, Claim, ClaimKind, ExprAbstract, ExprAnalysis,
    LintReport, Linter,
};
pub use run::{RunError, SentenceExt};
pub use schema_infer::{infer_schema, SchemaCatalog};
pub use stats::{
    Bound, CardInterval, ColumnStats, RelStats, StatsCatalog, ValueRange, VersionStats, MCV_SAMPLE,
};
