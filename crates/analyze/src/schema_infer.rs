//! Static schema inference for expressions.
//!
//! This module serves two consumers. The optimizer's rewrites (selection
//! pushdown through ×, empty-state synthesis) need to know which
//! attributes an expression produces relative to a *database snapshot*;
//! the [checker](crate::check) needs the same operator-level schema
//! arithmetic relative to its own transaction-indexed
//! [`Catalog`](crate::Catalog). The flat [`SchemaCatalog`] and
//! [`infer_schema`] below are the database-snapshot form, migrated here
//! from `txtime-optimizer` so both analyses share one implementation.

use std::collections::BTreeMap;

use txtime_core::{Database, Expr, StateValue};
use txtime_snapshot::Schema;

/// A name → scheme mapping used during optimization.
///
/// The catalog reflects the relation schemes at optimization time; if a
/// rollback target's scheme varies across versions (scheme evolution),
/// lookups conservatively return `None` and scheme-sensitive rewrites are
/// skipped for that subtree.
#[derive(Debug, Clone, Default)]
pub struct SchemaCatalog {
    schemas: BTreeMap<String, Schema>,
}

impl SchemaCatalog {
    /// An empty catalog: only constant subtrees get schemas.
    pub fn new() -> SchemaCatalog {
        SchemaCatalog::default()
    }

    /// Registers the scheme of a relation.
    pub fn insert(&mut self, name: impl Into<String>, schema: Schema) {
        self.schemas.insert(name.into(), schema);
    }

    /// Builds a catalog from a database, using each relation's current
    /// scheme — but only when *every* stored version agrees on it, so
    /// that scheme-sensitive rewrites stay sound for rollbacks into the
    /// past.
    pub fn from_database(db: &Database) -> SchemaCatalog {
        let mut cat = SchemaCatalog::new();
        for (name, rel) in db.state.iter() {
            let mut schemas = rel.versions().iter().map(|v| match &v.state {
                StateValue::Snapshot(s) => s.schema(),
                StateValue::Historical(h) => h.schema(),
            });
            if let Some(first) = schemas.next() {
                if schemas.all(|s| s == first) {
                    cat.insert(name.clone(), first.clone());
                }
            }
        }
        cat
    }

    /// Looks up a relation's scheme.
    pub fn get(&self, name: &str) -> Option<&Schema> {
        self.schemas.get(name)
    }
}

/// Infers the scheme of `expr`'s result, if statically determinable.
pub fn infer_schema(expr: &Expr, catalog: &SchemaCatalog) -> Option<Schema> {
    match expr {
        Expr::SnapshotConst(s) => Some(s.schema().clone()),
        Expr::HistoricalConst(h) => Some(h.schema().clone()),
        Expr::Rollback(i, _) | Expr::HRollback(i, _) => catalog.get(i).cloned(),
        Expr::Union(a, b)
        | Expr::Difference(a, b)
        | Expr::HUnion(a, b)
        | Expr::HDifference(a, b) => {
            let sa = infer_schema(a, catalog)?;
            let sb = infer_schema(b, catalog)?;
            (sa == sb).then_some(sa)
        }
        Expr::Product(a, b) | Expr::HProduct(a, b) | Expr::Join(_, a, b) | Expr::HJoin(_, a, b) => {
            let sa = infer_schema(a, catalog)?;
            let sb = infer_schema(b, catalog)?;
            sa.product(&sb).ok()
        }
        Expr::Project(attrs, e) | Expr::HProject(attrs, e) => {
            let s = infer_schema(e, catalog)?;
            s.project(attrs).ok().map(|(schema, _)| schema)
        }
        Expr::Select(_, e) | Expr::HSelect(_, e) | Expr::Delta(_, _, e) => infer_schema(e, catalog),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, RelationType, Sentence};
    use txtime_snapshot::{DomainType, Predicate, SnapshotState, Value};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|&n| (n, DomainType::Int))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn constants_and_operators() {
        let cat = SchemaCatalog::new();
        let a = Expr::snapshot_const(SnapshotState::empty(schema(&["x"])));
        let b = Expr::snapshot_const(SnapshotState::empty(schema(&["y"])));
        assert_eq!(infer_schema(&a, &cat), Some(schema(&["x"])));
        assert_eq!(
            infer_schema(&a.clone().product(b), &cat),
            Some(schema(&["x", "y"]))
        );
        assert_eq!(
            infer_schema(&a.clone().union(a.clone()), &cat),
            Some(schema(&["x"]))
        );
        assert_eq!(
            infer_schema(&a.clone().select(Predicate::True), &cat),
            Some(schema(&["x"]))
        );
        assert_eq!(
            infer_schema(&a.project(vec!["x".into()]), &cat),
            Some(schema(&["x"]))
        );
    }

    #[test]
    fn incompatible_union_is_unknowable() {
        let cat = SchemaCatalog::new();
        let a = Expr::snapshot_const(SnapshotState::empty(schema(&["x"])));
        let b = Expr::snapshot_const(SnapshotState::empty(schema(&["y"])));
        assert_eq!(infer_schema(&a.union(b), &cat), None);
    }

    #[test]
    fn rollback_resolves_through_catalog() {
        let mut cat = SchemaCatalog::new();
        assert_eq!(infer_schema(&Expr::current("emp"), &cat), None);
        cat.insert("emp", schema(&["sal"]));
        assert_eq!(
            infer_schema(&Expr::current("emp"), &cat),
            Some(schema(&["sal"]))
        );
    }

    #[test]
    fn catalog_from_database_skips_evolved_relations() {
        let s1 = SnapshotState::from_rows(schema(&["x"]), vec![vec![Value::Int(1)]]).unwrap();
        let db = Sentence::new(vec![
            Command::define_relation("stable", RelationType::Rollback),
            Command::modify_state("stable", Expr::snapshot_const(s1.clone())),
            Command::modify_state("stable", Expr::snapshot_const(s1.clone())),
            Command::define_relation("evolving", RelationType::Rollback),
            Command::modify_state("evolving", Expr::snapshot_const(s1.clone())),
            Command::modify_state(
                "evolving",
                Expr::snapshot_const(
                    SnapshotState::from_rows(schema(&["y"]), vec![vec![Value::Int(2)]]).unwrap(),
                ),
            ),
        ])
        .unwrap()
        .eval()
        .unwrap();
        let cat = SchemaCatalog::from_database(&db);
        assert!(cat.get("stable").is_some());
        assert!(cat.get("evolving").is_none());
    }
}
