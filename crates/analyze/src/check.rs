//! Command- and sentence-level well-formedness checking.
//!
//! The checker replays a sentence against a static [`Catalog`] the same
//! way **P** replays it against the empty database: command by command,
//! advancing the transaction clock for every command that would commit.
//! A command that reports diagnostics is treated as the no-op the paper's
//! total semantics makes it, so later commands are still checked against
//! a consistent state and one mistake yields one report, not a cascade.

use txtime_core::{Command, CommandSpans, Expr, ExprSpans, Sentence, SentenceSpans, Span, TxSpec};
use txtime_snapshot::{Attribute, Schema};

use crate::catalog::Catalog;
use crate::diagnostic::{Diagnostic, ErrorCode};
use crate::infer::{infer_expr, ExprFacts, StaticKind};

/// A stateful checker: the static database state plus the rules.
///
/// Use [`check_sentence`] for the common whole-sentence case; construct a
/// `Checker` directly for incremental use (the REPL checks each command
/// against the state so far, committing only the ones the engine
/// actually executed).
#[derive(Debug, Clone, Default)]
pub struct Checker {
    catalog: Catalog,
}

impl Checker {
    /// A checker at the empty database — where every sentence starts.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker resuming from an existing database.
    pub fn from_database(db: &txtime_core::Database) -> Checker {
        Checker {
            catalog: Catalog::from_database(db),
        }
    }

    /// The static state accumulated so far.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Checks one command against the current state without committing
    /// it.
    pub fn check(&self, command: &Command, spans: Option<&CommandSpans>) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        self.check_into(command, spans, &mut diags);
        diags
    }

    /// Records a command's effect on the static state. Call only for
    /// commands that (will) actually execute; the scheme recorded for a
    /// new version is best-effort and may be unknown.
    pub fn commit(&mut self, command: &Command) {
        match command {
            Command::DefineRelation(ident, rtype) => {
                self.catalog.define(ident.clone(), *rtype);
                self.catalog.tx = self.catalog.tx.next();
            }
            Command::ModifyState(ident, expr) => {
                let schema = self.expr_schema(expr);
                let tx = self.catalog.tx.next();
                if let Some(facts) = self.catalog.get_mut(ident) {
                    facts.push_version(tx, schema);
                }
                self.catalog.tx = tx;
            }
            Command::DeleteRelation(ident) => {
                self.catalog.undefine(ident);
                self.catalog.tx = self.catalog.tx.next();
            }
            Command::EvolveScheme(ident, change) => {
                let schema = self
                    .catalog
                    .get(ident)
                    .and_then(|f| f.current_schema())
                    .and_then(|s| evolved_schema(s, change).ok());
                let tx = self.catalog.tx.next();
                if let Some(facts) = self.catalog.get_mut(ident) {
                    facts.push_version(tx, schema);
                }
                self.catalog.tx = tx;
            }
            // display(E) queries without changing the database — the
            // clock does not advance.
            Command::Display(_) => {}
        }
    }

    /// Checks a command and, when it is clean, commits it. Returns the
    /// diagnostics (empty on success).
    pub fn check_and_commit(
        &mut self,
        command: &Command,
        spans: Option<&CommandSpans>,
    ) -> Vec<Diagnostic> {
        let diags = self.check(command, spans);
        if diags.is_empty() {
            self.commit(command);
        }
        diags
    }

    fn expr_schema(&self, expr: &Expr) -> Option<Schema> {
        let mut sink = Vec::new();
        infer_expr(expr, &self.catalog, None, &mut sink).schema
    }

    fn check_into(
        &self,
        command: &Command,
        spans: Option<&CommandSpans>,
        diags: &mut Vec<Diagnostic>,
    ) {
        let head = spans.map_or_else(Span::unknown, |s| s.head);
        let expr_spans = spans.and_then(|s| s.expr.as_ref());
        match command {
            Command::DefineRelation(ident, _) => {
                if self.catalog.is_defined(ident) {
                    diags.push(
                        Diagnostic::new(
                            ErrorCode::AlreadyDefined,
                            head,
                            format!("relation {ident:?} is already defined"),
                        )
                        .with_help("delete_relation it first, or pick a different identifier"),
                    );
                }
            }
            Command::ModifyState(ident, expr) => {
                let facts = infer_expr(expr, &self.catalog, expr_spans, diags);
                match self.catalog.get(ident) {
                    None => diags.push(undefined(ident, command, head)),
                    Some(rel) => {
                        let held = StaticKind::of_relation(rel.rtype);
                        if facts.kind != held {
                            diags.push(
                                Diagnostic::new(
                                    ErrorCode::StateKindMismatch,
                                    head,
                                    format!(
                                        "expression produces {} but relation {ident:?} of type {} holds {}",
                                        facts.kind.describe(),
                                        rel.rtype,
                                        held.describe(),
                                    ),
                                )
                                .with_help(
                                    "match the expression to the relation's declared type",
                                ),
                            );
                        }
                    }
                }
            }
            Command::DeleteRelation(ident) => {
                if !self.catalog.is_defined(ident) {
                    diags.push(undefined(ident, command, head));
                }
            }
            Command::EvolveScheme(ident, change) => match self.catalog.get(ident) {
                None => diags.push(undefined(ident, command, head)),
                Some(rel) => {
                    if !rel.has_states() {
                        diags.push(
                            Diagnostic::new(
                                ErrorCode::InvalidSchemeChange,
                                head,
                                format!("relation {ident:?} has no state to evolve"),
                            )
                            .with_help(format!("modify_state({ident}, ...) must come first")),
                        );
                    } else if let Some(schema) = rel.current_schema() {
                        if let Err(msg) = evolved_schema(schema, change) {
                            diags.push(
                                Diagnostic::new(
                                    ErrorCode::InvalidSchemeChange,
                                    head,
                                    format!("cannot apply `{change}` to {ident:?}: {msg}"),
                                )
                                .with_help(format!("the current scheme is {schema}")),
                            );
                        }
                    }
                }
            },
            Command::Display(expr) => {
                infer_expr(expr, &self.catalog, expr_spans, diags);
            }
        }
    }
}

fn undefined(ident: &str, command: &Command, span: Span) -> Diagnostic {
    Diagnostic::new(
        ErrorCode::CommandOnUndefined,
        span,
        format!("`{}` on undefined relation {ident:?}", command.keyword()),
    )
    .with_help(format!("define it first: define_relation({ident}, ...)"))
}

/// The scheme an `evolve_scheme` change produces, or why it cannot apply
/// — the static mirror of `SchemeChange::apply_snapshot`/`apply_historical`,
/// which only ever fail on scheme-level (never tuple-level) conditions.
fn evolved_schema(schema: &Schema, change: &txtime_core::SchemeChange) -> Result<Schema, String> {
    use txtime_core::SchemeChange;
    match change {
        SchemeChange::AddAttribute {
            name,
            domain,
            default,
        } => {
            if default.domain() != *domain {
                return Err(format!("default value {default} is not in domain {domain}"));
            }
            let mut attrs = schema.attributes().to_vec();
            attrs.push(Attribute::new(name, *domain));
            Schema::from_attributes(attrs).map_err(|e| e.to_string())
        }
        SchemeChange::DropAttribute(name) => {
            if !schema.contains(name) {
                return Err(format!("no attribute named {name:?}"));
            }
            if schema.arity() == 1 {
                return Err("cannot drop the last attribute".to_string());
            }
            let keep: Vec<String> = schema
                .attributes()
                .iter()
                .filter(|a| &*a.name != name.as_str())
                .map(|a| a.name.to_string())
                .collect();
            schema
                .project(&keep)
                .map(|(s, _)| s)
                .map_err(|e| e.to_string())
        }
        SchemeChange::RenameAttribute { from, to } => {
            schema.rename(from, to).map_err(|e| e.to_string())
        }
    }
}

/// Checks a whole sentence from the empty database, returning every
/// diagnostic in source order. An empty result means the checker accepts
/// the sentence.
pub fn check_sentence(sentence: &Sentence, spans: Option<&SentenceSpans>) -> Vec<Diagnostic> {
    let mut checker = Checker::new();
    let mut diags = Vec::new();
    for (i, command) in sentence.commands().iter().enumerate() {
        let cspans = spans.and_then(|s| s.commands.get(i));
        let found = checker.check_and_commit(command, cspans);
        diags.extend(found);
    }
    diags
}

/// Checks one command against an explicit catalog (stateless form).
pub fn check_command(
    command: &Command,
    catalog: &Catalog,
    spans: Option<&CommandSpans>,
) -> Vec<Diagnostic> {
    Checker {
        catalog: catalog.clone(),
    }
    .check(command, spans)
}

/// Checks one expression against an explicit catalog, returning its
/// inferred facts and any diagnostics.
pub fn check_expr(
    expr: &Expr,
    catalog: &Catalog,
    spans: Option<&ExprSpans>,
) -> (ExprFacts, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let facts = infer_expr(expr, catalog, spans, &mut diags);
    (facts, diags)
}

/// Resolves the transaction number a rollback leaf will read under the
/// catalog's clock — exposed for tools that explain query plans.
pub fn resolve_rollback_tx(catalog: &Catalog, spec: TxSpec) -> txtime_core::TransactionNumber {
    catalog.resolve_tx(spec)
}
