//! The statistics catalog: per-relation, per-version cardinality
//! intervals and attribute value ranges.
//!
//! Two producers fill a [`StatsCatalog`]:
//!
//! * The **linter** maintains one *statically*, replaying a sentence the
//!   same way [`Catalog`](crate::Catalog) does: every `modify_state`
//!   records the abstract facts of its expression (a [`CardInterval`]
//!   plus per-attribute [`ValueRange`]s), every `evolve_scheme`
//!   transforms them, and FINDSTATE over the version list resolves what
//!   a rollback leaf can yield.
//! * The **storage engine** harvests one from data it already holds:
//!   sorted-run lengths give *exact* cardinalities (degenerate
//!   intervals), per-relation interner pools give string-domain
//!   cardinalities, and `space_bytes` summarizes the delta chains.
//!
//! Both feed the same consumers — the abstract interpreter in
//! [`lint`](crate::lint) and the optimizer's cost model — under one
//! soundness contract: **every interval contains the true value**. A
//! static interval contains the cardinality every execution produces; an
//! engine-harvested interval is the cardinality the store produced. The
//! differential proptests in the workspace root hold the static path to
//! this contract against all four backends.

use std::collections::BTreeMap;

use txtime_core::TransactionNumber;
use txtime_snapshot::Value;

/// A sound interval of cardinalities: the true cardinality `n` of the
/// abstracted state satisfies `lo ≤ n` and, when `hi` is known,
/// `n ≤ hi`. `hi = None` means "unbounded above" (nothing is known).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardInterval {
    /// Lower bound (inclusive).
    pub lo: u64,
    /// Upper bound (inclusive), or `None` when no upper bound is known.
    pub hi: Option<u64>,
}

impl CardInterval {
    /// The exact cardinality `n`: the degenerate interval `[n, n]`.
    pub fn exact(n: u64) -> CardInterval {
        CardInterval { lo: n, hi: Some(n) }
    }

    /// The provably empty state: `[0, 0]`.
    pub fn empty() -> CardInterval {
        CardInterval::exact(0)
    }

    /// Nothing known: `[0, ∞)`.
    pub fn unknown() -> CardInterval {
        CardInterval { lo: 0, hi: None }
    }

    /// `[0, hi]` — the result of an operator that can only shrink its
    /// operand (σ with an undecided predicate, δ, −̂ timestamping).
    pub fn at_most(hi: Option<u64>) -> CardInterval {
        CardInterval { lo: 0, hi }
    }

    /// Whether the abstracted state is provably ∅ (`hi = 0`).
    pub fn is_provably_empty(self) -> bool {
        self.hi == Some(0)
    }

    /// Whether a concrete cardinality lies in the interval — the
    /// soundness predicate the proptests check.
    pub fn contains(self, n: u64) -> bool {
        self.lo <= n && self.hi.is_none_or(|h| n <= h)
    }

    /// The interval hull of two intervals (`self ⊔ other`): sound for a
    /// state known to be abstracted by either one.
    pub fn join(self, other: CardInterval) -> CardInterval {
        CardInterval {
            lo: self.lo.min(other.lo),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Interval sum: `[la + lb, ha + hb]` — the upper bound for ∪
    /// (`|A ∪ B| ≤ |A| + |B|`) paired with the ∪ lower bound
    /// `max(la, lb)` lives in [`CardInterval::union_of`].
    fn add_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        }
    }

    /// The interval for `A ∪ B` (set union of the tuple sets; also
    /// sound for ∪̂, which merges entries by tuple):
    /// `[max(la, lb), ha + hb]`.
    pub fn union_of(a: CardInterval, b: CardInterval) -> CardInterval {
        CardInterval {
            lo: a.lo.max(b.lo),
            hi: CardInterval::add_hi(a.hi, b.hi),
        }
    }

    /// The interval for `A − B`: `[la − hb, ha]` (saturating; every
    /// result tuple comes from `A`, and at most `hb` of `A`'s tuples
    /// can be removed). Also sound for −̂: an entry of `A` survives
    /// (possibly timestamped down) unless its tuple occurs in `B`.
    pub fn difference_of(a: CardInterval, b: CardInterval) -> CardInterval {
        let lo = match b.hi {
            Some(hb) => a.lo.saturating_sub(hb),
            None => 0,
        };
        CardInterval { lo, hi: a.hi }
    }

    /// The interval for the snapshot product `A × B`: exactly
    /// `[la·lb, ha·hb]` (every pairing appears once).
    pub fn product_of(a: CardInterval, b: CardInterval) -> CardInterval {
        CardInterval {
            lo: a.lo.saturating_mul(b.lo),
            hi: match (a.hi, b.hi) {
                (Some(x), Some(y)) => x.checked_mul(y),
                _ => None,
            },
        }
    }

    /// The interval for the historical product `A ×̂ B`: `[0, ha·hb]` —
    /// a pairing whose valid-time intersection is empty is dropped, so
    /// only the upper bound of the snapshot product survives.
    pub fn hproduct_of(a: CardInterval, b: CardInterval) -> CardInterval {
        CardInterval::at_most(CardInterval::product_of(a, b).hi)
    }

    /// A single representative cardinality for cost estimation: the
    /// midpoint of a bounded interval, the lower bound otherwise.
    pub fn estimate(self) -> f64 {
        match self.hi {
            Some(h) => (self.lo as f64 + h as f64) / 2.0,
            None => self.lo as f64,
        }
    }
}

/// One inclusive/exclusive endpoint of a [`ValueRange`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    /// The bounding value.
    pub value: Value,
    /// Whether the bound excludes `value` itself.
    pub strict: bool,
}

impl Bound {
    /// An inclusive bound.
    pub fn closed(value: Value) -> Bound {
        Bound {
            value,
            strict: false,
        }
    }

    /// An exclusive bound.
    pub fn open(value: Value) -> Bound {
        Bound {
            value,
            strict: true,
        }
    }
}

/// A sound interval of attribute values: every value the attribute takes
/// in the abstracted state satisfies the bounds (`None` = unbounded on
/// that side). Domains are totally ordered ([`Value`]'s `Ord`), so a
/// range is the natural abstract domain for the comparison predicates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValueRange {
    /// Lower bound, if any.
    pub lo: Option<Bound>,
    /// Upper bound, if any.
    pub hi: Option<Bound>,
}

impl ValueRange {
    /// The full range: nothing known.
    pub fn full() -> ValueRange {
        ValueRange::default()
    }

    /// The degenerate range holding exactly `v`.
    pub fn exact(v: Value) -> ValueRange {
        ValueRange {
            lo: Some(Bound::closed(v.clone())),
            hi: Some(Bound::closed(v)),
        }
    }

    /// The tightest closed range containing every value in `values`
    /// (`full` when the iterator is empty — ∅ has no useful range).
    pub fn spanning<'a>(values: impl IntoIterator<Item = &'a Value>) -> ValueRange {
        let mut it = values.into_iter();
        let Some(first) = it.next() else {
            return ValueRange::full();
        };
        let (mut min, mut max) = (first, first);
        for v in it {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        ValueRange {
            lo: Some(Bound::closed(min.clone())),
            hi: Some(Bound::closed(max.clone())),
        }
    }

    /// Whether no value can satisfy both bounds: the range denotes ∅.
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) => {
                l.value > h.value || (l.value == h.value && (l.strict || h.strict))
            }
            _ => false,
        }
    }

    /// Whether `v` lies within the bounds.
    pub fn contains(&self, v: &Value) -> bool {
        let above_lo = match &self.lo {
            Some(b) => {
                if b.strict {
                    *v > b.value
                } else {
                    *v >= b.value
                }
            }
            None => true,
        };
        let below_hi = match &self.hi {
            Some(b) => {
                if b.strict {
                    *v < b.value
                } else {
                    *v <= b.value
                }
            }
            None => true,
        };
        above_lo && below_hi
    }

    /// The range hull (`self ⊔ other`): sound for a value drawn from
    /// either range.
    pub fn join(&self, other: &ValueRange) -> ValueRange {
        fn weaker_lo(a: Option<&Bound>, b: Option<&Bound>) -> Option<Bound> {
            let (a, b) = (a?, b?);
            Some(match a.value.cmp(&b.value) {
                std::cmp::Ordering::Less => a.clone(),
                std::cmp::Ordering::Greater => b.clone(),
                std::cmp::Ordering::Equal => Bound {
                    value: a.value.clone(),
                    strict: a.strict && b.strict,
                },
            })
        }
        fn weaker_hi(a: Option<&Bound>, b: Option<&Bound>) -> Option<Bound> {
            let (a, b) = (a?, b?);
            Some(match a.value.cmp(&b.value) {
                std::cmp::Ordering::Greater => a.clone(),
                std::cmp::Ordering::Less => b.clone(),
                std::cmp::Ordering::Equal => Bound {
                    value: a.value.clone(),
                    strict: a.strict && b.strict,
                },
            })
        }
        ValueRange {
            lo: weaker_lo(self.lo.as_ref(), other.lo.as_ref()),
            hi: weaker_hi(self.hi.as_ref(), other.hi.as_ref()),
        }
    }

    /// Tightens the lower bound to `b` if it is stronger than the
    /// current one.
    pub fn refine_lo(&mut self, b: Bound) {
        let stronger = match &self.lo {
            Some(cur) => b.value > cur.value || (b.value == cur.value && b.strict && !cur.strict),
            None => true,
        };
        if stronger {
            self.lo = Some(b);
        }
    }

    /// Tightens the upper bound to `b` if it is stronger than the
    /// current one.
    pub fn refine_hi(&mut self, b: Bound) {
        let stronger = match &self.hi {
            Some(cur) => b.value < cur.value || (b.value == cur.value && b.strict && !cur.strict),
            None => true,
        };
        if stronger {
            self.hi = Some(b);
        }
    }

    /// The closed integer interval `[lo, hi]` this range denotes, when
    /// both endpoints are integer-valued. Strict bounds are narrowed by
    /// one; `None` for half-open, non-integer, or overflowing ranges.
    /// The returned pair may be inverted (`lo > hi`) when the range is
    /// empty — callers treat a non-positive width as selectivity 0.
    pub fn int_bounds(&self) -> Option<(i64, i64)> {
        let lo = match self.lo.as_ref() {
            Some(Bound {
                value: Value::Int(v),
                strict,
            }) => {
                if *strict {
                    v.checked_add(1)?
                } else {
                    *v
                }
            }
            _ => return None,
        };
        let hi = match self.hi.as_ref() {
            Some(Bound {
                value: Value::Int(v),
                strict,
            }) => {
                if *strict {
                    v.checked_sub(1)?
                } else {
                    *v
                }
            }
            _ => return None,
        };
        Some((lo, hi))
    }
}

/// Per-attribute statistics beyond value ranges: a distinct count plus a
/// small most-common-values sample. Value ranges only help equality
/// selectivity on integer domains (interpolation needs a width); strings
/// and booleans need these instead — `=`/`≠` selectivity reads the
/// matched MCV's frequency, or `1/distinct` for values outside the
/// sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Distinct values the attribute takes in the version's state.
    pub distinct: u64,
    /// The most common values with the fraction of rows holding each,
    /// most frequent first. At most [`MCV_SAMPLE`] entries.
    pub mcvs: Vec<(Value, f64)>,
}

/// Cap on the most-common-values sample per attribute.
pub const MCV_SAMPLE: usize = 4;

impl ColumnStats {
    /// Harvests a column's statistics from its values: exact distinct
    /// count and the top-[`MCV_SAMPLE`] values by frequency.
    pub fn from_values<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        rows: usize,
    ) -> ColumnStats {
        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
        for v in values {
            *counts.entry(v).or_insert(0) += 1;
        }
        let distinct = counts.len() as u64;
        let mut by_freq: Vec<(&Value, usize)> = counts.into_iter().collect();
        by_freq.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let mcvs = by_freq
            .into_iter()
            .take(MCV_SAMPLE)
            .map(|(v, n)| (v.clone(), n as f64 / rows.max(1) as f64))
            .collect();
        ColumnStats { distinct, mcvs }
    }
}

/// Statistics for one stored version of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionStats {
    /// The version's commit transaction number (mirrors the entry in
    /// [`RelationFacts::versions`](crate::RelationFacts)).
    pub tx: TransactionNumber,
    /// Cardinality interval for the version's state.
    pub card: CardInterval,
    /// Per-attribute value ranges, aligned with the version's scheme
    /// (`None` when unknown).
    pub ranges: Option<Vec<ValueRange>>,
    /// Per-attribute distinct counts and MCV samples, aligned with the
    /// version's scheme (`None` when unknown — the static linter path
    /// cannot count, only the engine harvest can).
    pub columns: Option<Vec<ColumnStats>>,
}

/// Statistics for one relation: its version statistics plus physical
/// figures only the engine can supply.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RelStats {
    /// Per-version statistics, in commit order. Non-history relations
    /// keep only the latest entry (mirroring the catalog).
    pub versions: Vec<VersionStats>,
    /// Distinct strings in the relation's interner pool, when the
    /// backing store has one (engine-harvested catalogs only). An upper
    /// bound on the distinct string values any attribute takes.
    pub interner_strings: Option<usize>,
    /// Logical footprint of the relation's version chain in bytes
    /// (engine-harvested catalogs only).
    pub space_bytes: Option<usize>,
}

impl RelStats {
    /// The statistics of the current (latest) version, if any.
    pub fn current(&self) -> Option<&VersionStats> {
        self.versions.last()
    }

    /// Static FINDSTATE over the statistics: the interval/ranges of the
    /// version current at `tx`. Mirrors
    /// [`RelationFacts::find_state`](crate::RelationFacts::find_state):
    /// before the first version the forced-∅ boundary yields `[0, 0]`;
    /// with no versions at all, nothing is known.
    pub fn find_stats(&self, tx: TransactionNumber) -> (CardInterval, Option<Vec<ValueRange>>) {
        if self.versions.is_empty() {
            return (CardInterval::unknown(), None);
        }
        let idx = self.versions.partition_point(|v| v.tx <= tx);
        match idx.checked_sub(1) {
            Some(i) => (self.versions[i].card, self.versions[i].ranges.clone()),
            None => (CardInterval::empty(), None),
        }
    }

    /// Records a new version's statistics, mirroring the
    /// replace/append dispatch of `modify_state`.
    pub fn push_version(
        &mut self,
        tx: TransactionNumber,
        card: CardInterval,
        ranges: Option<Vec<ValueRange>>,
        keeps_history: bool,
    ) {
        if !keeps_history {
            self.versions.clear();
        }
        self.versions.push(VersionStats {
            tx,
            card,
            ranges,
            columns: None,
        });
    }
}

/// Per-relation statistics, keyed by relation name — the statics-side
/// companion of [`Catalog`](crate::Catalog) and the input the optimizer's
/// cost model seeds itself from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsCatalog {
    relations: BTreeMap<String, RelStats>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    /// Looks up one relation's statistics.
    pub fn get(&self, name: &str) -> Option<&RelStats> {
        self.relations.get(name)
    }

    /// Mutable access for recording new versions.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut RelStats> {
        self.relations.get_mut(name)
    }

    /// The relation names with statistics, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Registers a freshly defined relation (no versions yet).
    pub fn define(&mut self, name: impl Into<String>) {
        self.relations.insert(name.into(), RelStats::default());
    }

    /// Inserts a fully built entry (the engine-harvest path).
    pub fn insert(&mut self, name: impl Into<String>, stats: RelStats) {
        self.relations.insert(name.into(), stats);
    }

    /// Removes a relation's statistics (`delete_relation`).
    pub fn undefine(&mut self, name: &str) {
        self.relations.remove(name);
    }

    /// The current-version cardinality interval of a relation, if known.
    pub fn current_card(&self, name: &str) -> Option<CardInterval> {
        self.get(name)?.current().map(|v| v.card)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_arithmetic_is_sound_on_samples() {
        let a = CardInterval::exact(3);
        let b = CardInterval { lo: 1, hi: Some(4) };
        let u = CardInterval::union_of(a, b);
        // |A| = 3, |B| ∈ [1,4] ⇒ |A ∪ B| ∈ [3, 7].
        assert_eq!(u, CardInterval { lo: 3, hi: Some(7) });
        for n in 3..=7 {
            assert!(u.contains(n));
        }
        let d = CardInterval::difference_of(a, b);
        assert_eq!(d, CardInterval { lo: 0, hi: Some(3) });
        let p = CardInterval::product_of(a, b);
        assert_eq!(
            p,
            CardInterval {
                lo: 3,
                hi: Some(12)
            }
        );
        assert!(CardInterval::hproduct_of(a, b).contains(0));
        assert!(CardInterval::empty().is_provably_empty());
        assert!(!CardInterval::unknown().is_provably_empty());
        assert!(CardInterval::unknown().contains(u64::MAX));
    }

    #[test]
    fn overflow_widens_instead_of_wrapping() {
        let big = CardInterval::exact(u64::MAX);
        assert_eq!(CardInterval::union_of(big, big).hi, None);
        assert_eq!(CardInterval::product_of(big, big).hi, None);
    }

    #[test]
    fn range_refinement_and_emptiness() {
        let mut r = ValueRange::full();
        r.refine_lo(Bound::open(Value::Int(5))); // v > 5
        r.refine_hi(Bound::closed(Value::Int(9))); // v ≤ 9
        assert!(!r.is_empty());
        assert!(r.contains(&Value::Int(6)));
        assert!(!r.contains(&Value::Int(5)));
        assert!(!r.contains(&Value::Int(10)));
        r.refine_hi(Bound::open(Value::Int(3))); // v < 3: contradiction
        assert!(r.is_empty());
    }

    #[test]
    fn range_join_widens() {
        let a = ValueRange::exact(Value::Int(1));
        let b = ValueRange::exact(Value::Int(9));
        let j = a.join(&b);
        assert!(j.contains(&Value::Int(1)));
        assert!(j.contains(&Value::Int(5)));
        assert!(j.contains(&Value::Int(9)));
        assert!(!j.contains(&Value::Int(0)));
        // Joining with an unbounded range is unbounded.
        let u = a.join(&ValueRange::full());
        assert_eq!(u, ValueRange::full());
    }

    #[test]
    fn spanning_covers_all_values() {
        let vs = [Value::Int(4), Value::Int(-2), Value::Int(7)];
        let r = ValueRange::spanning(vs.iter());
        for v in &vs {
            assert!(r.contains(v));
        }
        assert!(!r.contains(&Value::Int(-3)));
        assert_eq!(ValueRange::spanning([].iter()), ValueRange::full());
    }

    #[test]
    fn find_stats_mirrors_static_findstate() {
        let mut rs = RelStats::default();
        assert_eq!(
            rs.find_stats(TransactionNumber(5)).0,
            CardInterval::unknown()
        );
        rs.push_version(TransactionNumber(2), CardInterval::exact(3), None, true);
        rs.push_version(TransactionNumber(4), CardInterval::exact(5), None, true);
        assert_eq!(rs.find_stats(TransactionNumber(1)).0, CardInterval::empty());
        assert_eq!(
            rs.find_stats(TransactionNumber(3)).0,
            CardInterval::exact(3)
        );
        assert_eq!(
            rs.find_stats(TransactionNumber(9)).0,
            CardInterval::exact(5)
        );
    }

    #[test]
    fn non_history_relations_keep_single_version() {
        let mut rs = RelStats::default();
        rs.push_version(TransactionNumber(2), CardInterval::exact(3), None, false);
        rs.push_version(TransactionNumber(3), CardInterval::exact(7), None, false);
        assert_eq!(rs.versions.len(), 1);
        assert_eq!(rs.current().unwrap().card, CardInterval::exact(7));
    }
}
