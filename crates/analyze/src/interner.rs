//! Hash-consed expression identities, shared by the view memo and the
//! lint pass.
//!
//! Expressions are trees; memoizing their evaluated states needs a *key*
//! that two structurally identical expressions share. [`ExprInterner`]
//! assigns every distinct subexpression a small [`ExprId`] by structural
//! identity: interning walks the tree bottom-up, renders each node's
//! non-expression payload (predicates, attribute lists, rollback
//! targets, constants) to its canonical surface syntax — [`Expr`]'s
//! `Display` round-trips through the parser, so the rendering is a
//! faithful structural fingerprint — and looks the (tag, payload,
//! child-ids) triple up in a hash table before allocating a fresh arena
//! slot.
//!
//! Two consequences the memo layer builds on:
//!
//! * **Common-subexpression sharing.** Identical subexpressions anywhere
//!   in one sentence (or across sentences) intern to the *same*
//!   [`ExprId`], so one cached state serves every occurrence — e.g. both
//!   sides of `σ_F(ρ(r, ∞)) − σ_G(ρ(r, ∞))` share the `ρ(r, ∞)` node.
//! * **Topological ids.** Children are interned before their parent, so
//!   `child.index() < parent.index()` always. Walking cached nodes in
//!   ascending id order is a valid bottom-up evaluation (and delta
//!   propagation) order — no separate dependency sort is ever needed.

use std::collections::HashMap;
use std::fmt::Write as _;

use txtime_core::{Expr, JoinSpec, TxSpec};
use txtime_historical::{TemporalExpr, TemporalPred};
use txtime_snapshot::Predicate;

/// The identity of one interned (sub)expression: an index into the
/// interner's arena. Ids are topological — a node's id is strictly
/// greater than each of its children's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shallow operator of an interned node: the node's own payload with
/// children replaced by [`ExprId`]s. Constants keep the full `Expr` node
/// (they are self-contained); everything else carries exactly what the
/// memo's delta rules need to recompute the node from its children.
#[derive(Debug, Clone)]
pub enum NodeOp {
    /// A constant state (`Expr::SnapshotConst` / `Expr::HistoricalConst`),
    /// kept whole.
    Const(Expr),
    /// `E₁ ∪ E₂`
    Union,
    /// `E₁ − E₂`
    Difference,
    /// `E₁ × E₂`
    Product,
    /// `π_X(E)`
    Project(Vec<String>),
    /// `σ_F(E)`
    Select(Predicate),
    /// `ρ(I, N)`
    Rollback(String, TxSpec),
    /// `E₁ ∪̂ E₂`
    HUnion,
    /// `E₁ −̂ E₂`
    HDifference,
    /// `E₁ ×̂ E₂`
    HProduct,
    /// `π̂_X(E)`
    HProject(Vec<String>),
    /// `σ̂_F(E)`
    HSelect(Predicate),
    /// `δ_{G,V}(E)`
    Delta(TemporalPred, TemporalExpr),
    /// `ρ̂(I, N)`
    HRollback(String, TxSpec),
    /// `join[spec](E₁, E₂)` — the physical equi-join, ≡ `σ_spec(E₁ × E₂)`
    Join(JoinSpec),
    /// `hjoin[spec](E₁, E₂)` — the hatted physical equi-join
    HJoin(JoinSpec),
}

/// One interned node: its operator, children, and transitive read set.
#[derive(Debug, Clone)]
pub struct ExprNode {
    /// The node's operator and non-expression payload.
    pub op: NodeOp,
    /// Children as interned ids, in syntactic order. Each child id is
    /// strictly smaller than this node's own id.
    pub children: Vec<ExprId>,
    /// The distinct `(relation, spec)` pairs read anywhere in this
    /// node's subtree, in first-occurrence order.
    pub reads: Vec<(String, TxSpec)>,
}

impl ExprNode {
    /// Whether any read in this subtree targets `ident`.
    pub fn reads_relation(&self, ident: &str) -> bool {
        self.reads.iter().any(|(i, _)| i == ident)
    }
}

/// A hash-consing arena for [`Expr`] trees.
#[derive(Debug, Default)]
pub struct ExprInterner {
    nodes: Vec<ExprNode>,
    table: HashMap<NodeKey, ExprId>,
}

/// The structural identity of one node: operator tag, rendered payload,
/// and child ids. Rendering reuses the surface syntax (which round-trips
/// through the parser), so equal keys mean structurally equal
/// subexpressions.
#[derive(Debug, PartialEq, Eq, Hash)]
struct NodeKey {
    tag: u8,
    payload: String,
    children: Vec<ExprId>,
}

impl ExprInterner {
    /// An empty interner.
    pub fn new() -> ExprInterner {
        ExprInterner::default()
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    pub fn node(&self, id: ExprId) -> &ExprNode {
        &self.nodes[id.index()]
    }

    /// Approximate resident bytes of the arena and hash table payloads.
    pub fn size_bytes(&self) -> usize {
        self.table
            .keys()
            .map(|k| {
                std::mem::size_of::<NodeKey>()
                    + k.payload.len()
                    + k.children.len() * std::mem::size_of::<ExprId>()
            })
            .sum::<usize>()
            + self.nodes.len() * std::mem::size_of::<ExprNode>()
    }

    /// Interns an expression tree, returning the id of its root. Every
    /// subexpression is interned along the way; structurally identical
    /// subtrees — within this call or across calls — share one id.
    pub fn intern(&mut self, expr: &Expr) -> ExprId {
        let children: Vec<ExprId> = expr.operands().iter().map(|c| self.intern(c)).collect();
        let key = NodeKey {
            tag: tag_of(expr),
            payload: payload_of(expr),
            children,
        };
        if let Some(&id) = self.table.get(&key) {
            return id;
        }
        let id = ExprId(u32::try_from(self.nodes.len()).expect("arena fits in u32"));
        let reads = self.subtree_reads(expr, &key.children);
        self.nodes.push(ExprNode {
            op: op_of(expr),
            children: key.children.clone(),
            reads,
        });
        self.table.insert(key, id);
        id
    }

    /// The distinct `(relation, spec)` reads of a node being interned:
    /// its own rollback target (for ρ/ρ̂ leaves) plus its children's,
    /// first occurrence wins.
    fn subtree_reads(&self, expr: &Expr, children: &[ExprId]) -> Vec<(String, TxSpec)> {
        let mut reads: Vec<(String, TxSpec)> = Vec::new();
        if let Expr::Rollback(ident, spec) | Expr::HRollback(ident, spec) = expr {
            reads.push((ident.clone(), *spec));
        }
        for &c in children {
            for r in &self.nodes[c.index()].reads {
                if !reads.contains(r) {
                    reads.push(r.clone());
                }
            }
        }
        reads
    }
}

fn tag_of(expr: &Expr) -> u8 {
    match expr {
        Expr::SnapshotConst(_) => 0,
        Expr::HistoricalConst(_) => 1,
        Expr::Union(..) => 2,
        Expr::Difference(..) => 3,
        Expr::Product(..) => 4,
        Expr::Project(..) => 5,
        Expr::Select(..) => 6,
        Expr::Rollback(..) => 7,
        Expr::HUnion(..) => 8,
        Expr::HDifference(..) => 9,
        Expr::HProduct(..) => 10,
        Expr::HProject(..) => 11,
        Expr::HSelect(..) => 12,
        Expr::Delta(..) => 13,
        Expr::HRollback(..) => 14,
        Expr::Join(..) => 15,
        Expr::HJoin(..) => 16,
    }
}

/// The node's non-expression payload rendered to canonical surface
/// syntax (empty for the pure binary operators).
fn payload_of(expr: &Expr) -> String {
    let mut s = String::new();
    match expr {
        Expr::SnapshotConst(c) => write!(s, "{c}").expect("write to String"),
        Expr::HistoricalConst(c) => write!(s, "{c}").expect("write to String"),
        Expr::Union(..)
        | Expr::Difference(..)
        | Expr::Product(..)
        | Expr::HUnion(..)
        | Expr::HDifference(..)
        | Expr::HProduct(..) => {}
        Expr::Project(attrs, _) | Expr::HProject(attrs, _) => {
            write!(s, "{}", attrs.join(", ")).expect("write to String")
        }
        Expr::Select(p, _) | Expr::HSelect(p, _) => write!(s, "{p}").expect("write to String"),
        Expr::Rollback(ident, spec) | Expr::HRollback(ident, spec) => {
            write!(s, "{ident}, {spec}").expect("write to String")
        }
        Expr::Delta(g, v, _) => write!(s, "{g}; {v}").expect("write to String"),
        Expr::Join(spec, ..) | Expr::HJoin(spec, ..) => {
            write!(s, "{spec}").expect("write to String")
        }
    }
    s
}

fn op_of(expr: &Expr) -> NodeOp {
    match expr {
        Expr::SnapshotConst(_) | Expr::HistoricalConst(_) => NodeOp::Const(expr.clone()),
        Expr::Union(..) => NodeOp::Union,
        Expr::Difference(..) => NodeOp::Difference,
        Expr::Product(..) => NodeOp::Product,
        Expr::Project(attrs, _) => NodeOp::Project(attrs.clone()),
        Expr::Select(p, _) => NodeOp::Select(p.clone()),
        Expr::Rollback(ident, spec) => NodeOp::Rollback(ident.clone(), *spec),
        Expr::HUnion(..) => NodeOp::HUnion,
        Expr::HDifference(..) => NodeOp::HDifference,
        Expr::HProduct(..) => NodeOp::HProduct,
        Expr::HProject(attrs, _) => NodeOp::HProject(attrs.clone()),
        Expr::HSelect(p, _) => NodeOp::HSelect(p.clone()),
        Expr::Delta(g, v, _) => NodeOp::Delta(g.clone(), v.clone()),
        Expr::HRollback(ident, spec) => NodeOp::HRollback(ident.clone(), *spec),
        Expr::Join(spec, ..) => NodeOp::Join(spec.clone()),
        Expr::HJoin(spec, ..) => NodeOp::HJoin(spec.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::TransactionNumber;
    use txtime_snapshot::{Predicate, Value};

    fn query() -> Expr {
        Expr::current("r")
            .select(Predicate::gt_const("x", Value::Int(1)))
            .union(Expr::current("r").select(Predicate::gt_const("x", Value::Int(9))))
    }

    #[test]
    fn identical_expressions_share_one_id() {
        let mut i = ExprInterner::new();
        let a = i.intern(&query());
        let n = i.len();
        let b = i.intern(&query());
        assert_eq!(a, b);
        assert_eq!(i.len(), n, "re-interning allocates nothing");
    }

    #[test]
    fn common_subexpressions_share_within_one_sentence() {
        let mut i = ExprInterner::new();
        let root = i.intern(&query());
        // ρ(r, ∞) appears twice but interns once: the tree has 5 distinct
        // nodes (ρ, σ>1, σ>9, ∪) — 4, not 5.
        assert_eq!(i.len(), 4);
        let node = i.node(root);
        assert!(matches!(node.op, NodeOp::Union));
        let left = i.node(node.children[0]);
        let right = i.node(node.children[1]);
        assert_eq!(left.children[0], right.children[0], "shared rho leaf");
    }

    #[test]
    fn distinct_payloads_get_distinct_ids() {
        let mut i = ExprInterner::new();
        let a = i.intern(&Expr::current("r"));
        let b = i.intern(&Expr::rollback("r", TxSpec::At(TransactionNumber(3))));
        let c = i.intern(&Expr::hcurrent("r"));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn ids_are_topological() {
        let mut i = ExprInterner::new();
        let root = i.intern(&query());
        for (idx, node) in (0..i.len()).map(|k| (k, i.node(ExprId(k as u32)))) {
            for c in &node.children {
                assert!(c.index() < idx, "child precedes parent");
            }
        }
        assert_eq!(root.index(), i.len() - 1);
    }

    #[test]
    fn reads_collect_distinct_relation_spec_pairs() {
        let mut i = ExprInterner::new();
        let id =
            i.intern(&query().difference(Expr::rollback("s", TxSpec::At(TransactionNumber(2)))));
        let node = i.node(id);
        assert_eq!(
            node.reads,
            vec![
                ("r".to_string(), TxSpec::Current),
                ("s".to_string(), TxSpec::At(TransactionNumber(2))),
            ]
        );
        assert!(node.reads_relation("r"));
        assert!(!node.reads_relation("ghost"));
    }

    #[test]
    fn size_bytes_grows_with_arena() {
        let mut i = ExprInterner::new();
        assert!(i.is_empty());
        let before = i.size_bytes();
        i.intern(&query());
        assert!(i.size_bytes() > before);
    }
}
