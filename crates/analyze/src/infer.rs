//! The static analogue of FINDTYPE: expression kind and scheme inference
//! with operator-applicability checking.
//!
//! Every expression "always evaluate\[s\] to a single snapshot state" or,
//! with the §4 extension, an historical state — and which of the two is
//! decided purely by the outermost operator. The walk below computes that
//! kind bottom-up, resolves ρ/ρ̂ leaves through the
//! [`Catalog`](crate::Catalog)'s static FINDSTATE, and reports every
//! violated side condition of the denotation function **E** as a
//! [`Diagnostic`] anchored at the operator's source span.

use txtime_core::{Expr, ExprSpans, RelationType, Span, TxSpec};
use txtime_snapshot::Schema;

use crate::catalog::{Catalog, StaticState};
use crate::diagnostic::{Diagnostic, ErrorCode};

/// Whether an expression produces a snapshot or an historical state —
/// the static image of the STATE domain split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StaticKind {
    /// The expression produces an element of SNAPSHOT STATE.
    Snapshot,
    /// The expression produces an element of HISTORICAL STATE.
    Historical,
}

impl StaticKind {
    /// The kind of state a relation of type `rtype` holds.
    pub fn of_relation(rtype: RelationType) -> StaticKind {
        if rtype.holds_historical() {
            StaticKind::Historical
        } else {
            StaticKind::Snapshot
        }
    }

    /// Human-readable name for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            StaticKind::Snapshot => "a snapshot state",
            StaticKind::Historical => "an historical state",
        }
    }
}

/// What inference knows about one expression: its state kind and, when
/// statically determinable, its scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprFacts {
    /// The kind of state the expression produces.
    pub kind: StaticKind,
    /// The result scheme, when inferable.
    pub schema: Option<Schema>,
}

impl ExprFacts {
    fn new(kind: StaticKind, schema: Option<Schema>) -> ExprFacts {
        ExprFacts { kind, schema }
    }
}

/// The span of `spans`' node, or unknown.
fn at(spans: Option<&ExprSpans>) -> Span {
    spans.map_or_else(Span::unknown, |s| s.span)
}

/// The span table of the `i`-th operand.
fn child(spans: Option<&ExprSpans>, i: usize) -> Option<&ExprSpans> {
    spans.and_then(|s| s.children.get(i))
}

/// Infers `expr`'s facts against `catalog`, appending one diagnostic per
/// violated judgment. Inference is best-effort after an error: the walk
/// continues with the operator's nominal result kind and an unknown
/// scheme, so one mistake does not drown the rest of the expression in
/// cascading reports.
pub fn infer_expr(
    expr: &Expr,
    catalog: &Catalog,
    spans: Option<&ExprSpans>,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    match expr {
        Expr::SnapshotConst(s) => ExprFacts::new(StaticKind::Snapshot, Some(s.schema().clone())),
        Expr::HistoricalConst(h) => {
            ExprFacts::new(StaticKind::Historical, Some(h.schema().clone()))
        }

        Expr::Union(a, b) | Expr::Difference(a, b) => {
            let facts = binary_operands(expr, a, b, StaticKind::Snapshot, catalog, spans, diags);
            union_like(expr, facts, StaticKind::Snapshot, at(spans), diags)
        }
        Expr::HUnion(a, b) | Expr::HDifference(a, b) => {
            let facts = binary_operands(expr, a, b, StaticKind::Historical, catalog, spans, diags);
            union_like(expr, facts, StaticKind::Historical, at(spans), diags)
        }

        Expr::Product(a, b) => {
            let facts = binary_operands(expr, a, b, StaticKind::Snapshot, catalog, spans, diags);
            product_like(facts, StaticKind::Snapshot, at(spans), diags)
        }
        Expr::HProduct(a, b) => {
            let facts = binary_operands(expr, a, b, StaticKind::Historical, catalog, spans, diags);
            product_like(facts, StaticKind::Historical, at(spans), diags)
        }

        // A physical equi-join is σ_spec(E₁ × E₂), so its static facts
        // are the product's (the spec's predicate is validated at
        // evaluation against the concatenated scheme).
        Expr::Join(_, a, b) => {
            let facts = binary_operands(expr, a, b, StaticKind::Snapshot, catalog, spans, diags);
            product_like(facts, StaticKind::Snapshot, at(spans), diags)
        }
        Expr::HJoin(_, a, b) => {
            let facts = binary_operands(expr, a, b, StaticKind::Historical, catalog, spans, diags);
            product_like(facts, StaticKind::Historical, at(spans), diags)
        }

        Expr::Project(attrs, e) => {
            let inner = unary_operand(expr, e, StaticKind::Snapshot, catalog, spans, diags);
            project_like(expr, attrs, inner, StaticKind::Snapshot, at(spans), diags)
        }
        Expr::HProject(attrs, e) => {
            let inner = unary_operand(expr, e, StaticKind::Historical, catalog, spans, diags);
            project_like(expr, attrs, inner, StaticKind::Historical, at(spans), diags)
        }

        Expr::Select(p, e) => {
            let inner = unary_operand(expr, e, StaticKind::Snapshot, catalog, spans, diags);
            select_like(expr, p, inner, StaticKind::Snapshot, at(spans), diags)
        }
        Expr::HSelect(p, e) => {
            let inner = unary_operand(expr, e, StaticKind::Historical, catalog, spans, diags);
            select_like(expr, p, inner, StaticKind::Historical, at(spans), diags)
        }

        // δ_{G,V} is total on historical states (both G and V are total
        // functions of a tuple's valid time), so only the operand kind
        // needs checking.
        Expr::Delta(_, _, e) => {
            let inner = unary_operand(expr, e, StaticKind::Historical, catalog, spans, diags);
            ExprFacts::new(StaticKind::Historical, inner.schema)
        }

        Expr::Rollback(ident, spec) => rollback(
            ident,
            *spec,
            StaticKind::Snapshot,
            catalog,
            at(spans),
            diags,
        ),
        Expr::HRollback(ident, spec) => rollback(
            ident,
            *spec,
            StaticKind::Historical,
            catalog,
            at(spans),
            diags,
        ),
    }
}

/// Checks both operands of a binary operator against the kind it
/// requires, reporting a mismatch at the *operand*'s span.
fn binary_operands(
    parent: &Expr,
    a: &Expr,
    b: &Expr,
    required: StaticKind,
    catalog: &Catalog,
    spans: Option<&ExprSpans>,
    diags: &mut Vec<Diagnostic>,
) -> (ExprFacts, ExprFacts) {
    let fa = infer_expr(a, catalog, child(spans, 0), diags);
    let fb = infer_expr(b, catalog, child(spans, 1), diags);
    require_kind(parent, a, &fa, required, at(child(spans, 0)), diags);
    require_kind(parent, b, &fb, required, at(child(spans, 1)), diags);
    (fa, fb)
}

/// Checks the single operand of a unary operator against the required
/// kind.
fn unary_operand(
    parent: &Expr,
    e: &Expr,
    required: StaticKind,
    catalog: &Catalog,
    spans: Option<&ExprSpans>,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    let f = infer_expr(e, catalog, child(spans, 0), diags);
    require_kind(parent, e, &f, required, at(child(spans, 0)), diags);
    f
}

fn require_kind(
    parent: &Expr,
    operand: &Expr,
    facts: &ExprFacts,
    required: StaticKind,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) {
    if facts.kind == required {
        return;
    }
    let (code, help) = match required {
        StaticKind::Snapshot => (
            ErrorCode::SnapshotOperatorOnHistorical,
            "use the hatted historical operator instead",
        ),
        StaticKind::Historical => (
            ErrorCode::HistoricalOperatorOnSnapshot,
            "use the unhatted snapshot operator instead",
        ),
    };
    diags.push(
        Diagnostic::new(
            code,
            span,
            format!(
                "operator `{}` requires {} but its operand `{}` produces {}",
                parent.operator_name(),
                required.describe(),
                operand.operator_name(),
                facts.kind.describe(),
            ),
        )
        .with_help(help),
    );
}

/// ∪/−/∪̂/−̂: operands must be union-compatible.
fn union_like(
    parent: &Expr,
    (fa, fb): (ExprFacts, ExprFacts),
    kind: StaticKind,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    let schema = match (fa.schema, fb.schema) {
        (Some(sa), Some(sb)) => {
            if sa.union_compatible(&sb) {
                Some(sa)
            } else {
                diags.push(
                    Diagnostic::new(
                        ErrorCode::NotUnionCompatible,
                        span,
                        format!(
                            "operands of `{}` are not union-compatible: {sa} vs {sb}",
                            parent.operator_name()
                        ),
                    )
                    .with_help("union compatibility requires identical attribute names, domains, and order"),
                );
                None
            }
        }
        _ => None,
    };
    ExprFacts::new(kind, schema)
}

/// ×/×̂: operand schemes must have disjoint attribute names.
fn product_like(
    (fa, fb): (ExprFacts, ExprFacts),
    kind: StaticKind,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    let schema = match (fa.schema, fb.schema) {
        (Some(sa), Some(sb)) => match sa.product(&sb) {
            Ok(s) => Some(s),
            Err(e) => {
                diags.push(
                    Diagnostic::new(ErrorCode::ProductAttributeClash, span, e.to_string())
                        .with_help("rename the clashing attribute in one operand first"),
                );
                None
            }
        },
        _ => None,
    };
    ExprFacts::new(kind, schema)
}

/// π/π̂: the attribute list must name distinct existing attributes.
fn project_like(
    parent: &Expr,
    attrs: &[String],
    inner: ExprFacts,
    kind: StaticKind,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    let schema = inner.schema.and_then(|s| match s.project(attrs) {
        Ok((projected, _)) => Some(projected),
        Err(e) => {
            diags.push(
                Diagnostic::new(
                    ErrorCode::BadProjection,
                    span,
                    format!("invalid `{}` attribute list: {e}", parent.operator_name()),
                )
                .with_help(format!("the operand's scheme is {s}")),
            );
            None
        }
    });
    ExprFacts::new(kind, schema)
}

/// σ/σ̂: the predicate must be well-typed against the operand scheme.
fn select_like(
    parent: &Expr,
    pred: &txtime_snapshot::Predicate,
    inner: ExprFacts,
    kind: StaticKind,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    if let Some(s) = &inner.schema {
        if let Err(e) = pred.validate(s) {
            diags.push(
                Diagnostic::new(
                    ErrorCode::IllTypedPredicate,
                    span,
                    format!("ill-typed `{}` predicate: {e}", parent.operator_name()),
                )
                .with_help(format!("the operand's scheme is {s}")),
            );
        }
    }
    ExprFacts::new(kind, inner.schema)
}

/// ρ/ρ̂: the identifier must be bound to a relation of the right family,
/// a past transaction number demands a history-keeping type, and static
/// FINDSTATE must resolve to a state (or the forced-∅ boundary).
fn rollback(
    ident: &str,
    spec: TxSpec,
    kind: StaticKind,
    catalog: &Catalog,
    span: Span,
    diags: &mut Vec<Diagnostic>,
) -> ExprFacts {
    let op = match kind {
        StaticKind::Snapshot => "rho",
        StaticKind::Historical => "hrho",
    };
    let Some(facts) = catalog.get(ident) else {
        diags.push(
            Diagnostic::new(
                ErrorCode::UndefinedRelation,
                span,
                format!("relation {ident:?} is not defined at this point in the sentence"),
            )
            .with_help(format!("define it first: define_relation({ident}, ...)")),
        );
        return ExprFacts::new(kind, None);
    };
    if StaticKind::of_relation(facts.rtype) != kind {
        diags.push(
            Diagnostic::new(
                ErrorCode::RollbackKindMismatch,
                span,
                format!(
                    "`{op}` is not applicable to relation {ident:?} of type {}",
                    facts.rtype
                ),
            )
            .with_help(match kind {
                StaticKind::Snapshot => "use hrho for historical and temporal relations",
                StaticKind::Historical => "use rho for snapshot and rollback relations",
            }),
        );
        return ExprFacts::new(kind, None);
    }
    if matches!(spec, TxSpec::At(_)) && !facts.rtype.keeps_history() {
        diags.push(
            Diagnostic::new(
                ErrorCode::RollbackIntoNonRollback,
                span,
                format!(
                    "cannot roll relation {ident:?} of type {} back to a past state",
                    facts.rtype
                ),
            )
            .with_help(format!("only `{op}({ident}, inf)` is legal for this type")),
        );
        return ExprFacts::new(kind, None);
    }
    match facts.find_state(catalog.resolve_tx(spec)) {
        StaticState::Version(schema) | StaticState::EmptyWithForcedScheme(schema) => {
            ExprFacts::new(kind, schema)
        }
        StaticState::NoStates => {
            diags.push(
                Diagnostic::new(
                    ErrorCode::RollbackOfStatelessRelation,
                    span,
                    format!(
                        "relation {ident:?} has no states at this point; not even ∅ has a scheme"
                    ),
                )
                .with_help(format!("modify_state({ident}, ...) must come first")),
            );
            ExprFacts::new(kind, None)
        }
    }
}
