//! `txtime-lint`: abstract interpretation over the hash-consed
//! expression DAG plus a flow-sensitive analysis over command sequences.
//!
//! The checker ([`crate::check`]) answers "is this sentence legal?"; the
//! linter answers "does this legal sentence compute anything?". It runs
//! two cooperating analyses:
//!
//! * **Expression-level abstract interpretation.** Every subexpression
//!   is interned into the [`ExprInterner`] DAG and assigned an
//!   [`ExprAbstract`]: a [`CardInterval`] cardinality bound, the result
//!   scheme, and per-attribute [`ValueRange`]s. Constants are abstracted
//!   exactly; ρ/ρ̂ leaves resolve through the [`StatsCatalog`]'s static
//!   FINDSTATE; every operator has a sound transfer function. On top of
//!   the domains sit the `W001`–`W008` judgments: unsatisfiable and
//!   tautological selections, provably-∅ operands, `E − E`,
//!   identity projections, and the two rollback range warnings.
//! * **Flow-sensitive command analysis.** Replaying the sentence with
//!   the same exact-clock discipline as [`Checker`], the linter tracks
//!   each relation's lifetime (define → writes/reads → delete) and the
//!   display census the view memo uses, issuing the `W020`–`W022` dead
//!   command warnings.
//!
//! **Soundness contract** (checked by differential proptests against all
//! four storage backends): every warning states a fact that holds in
//! *every* execution. Machine-checkable versions of the expression-level
//! facts are exported as [`Claim`]s — a provably-∅ claim means the
//! subexpression evaluates to ∅, an equals-operand claim means the
//! operator returns its operand unchanged — and dead-write indices are
//! exported so tests can verify that neutering a warned write changes no
//! observable output.

use std::collections::{BTreeMap, HashMap, HashSet};

use txtime_core::{Command, CommandSpans, Expr, ExprSpans, Sentence, SentenceSpans, Span, TxSpec};
use txtime_snapshot::{CompOp, Operand, Predicate, Schema, Value};

use crate::catalog::{Catalog, StaticState};
use crate::check::Checker;
use crate::diagnostic::{Diagnostic, WarnCode, Warning};
use crate::interner::{ExprId, ExprInterner};
use crate::stats::{Bound, CardInterval, StatsCatalog, ValueRange};

/// What abstract interpretation knows about one subexpression.
#[derive(Debug, Clone)]
pub struct ExprAbstract {
    /// The subexpression's identity in the hash-consed DAG.
    pub id: ExprId,
    /// Sound bounds on the result cardinality.
    pub card: CardInterval,
    /// The result scheme, when statically known.
    pub schema: Option<Schema>,
    /// Per-attribute value ranges aligned with `schema` (`None` when the
    /// scheme or the contents are unknown).
    pub ranges: Option<Vec<ValueRange>>,
}

impl ExprAbstract {
    fn unknown(id: ExprId) -> ExprAbstract {
        ExprAbstract {
            id,
            card: CardInterval::unknown(),
            schema: None,
            ranges: None,
        }
    }
}

/// The machine-checkable content of an expression-level warning,
/// located by its operand path from the analyzed root (`[]` is the root,
/// `[1]` the second operand, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// Operand indices from the root to the claimed node.
    pub path: Vec<usize>,
    /// What the linter asserts about that node.
    pub kind: ClaimKind,
}

/// The assertion a [`Claim`] makes; each variant is verified by the
/// lint-soundness differential tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimKind {
    /// The node provably evaluates to ∅.
    Empty,
    /// The node provably evaluates to exactly its first operand's value
    /// (tautological σ, identity π, redundant `∪ ∅` / `− ∅`).
    EqualsOperand,
    /// The rollback node provably evaluates to the relation's *current*
    /// state at this point in the sentence (`ρ(I, n)` with `n` beyond
    /// the clock).
    EqualsCurrentRollback,
}

/// The result of abstractly interpreting one expression.
#[derive(Debug, Clone)]
pub struct ExprAnalysis {
    /// The root's abstract value.
    pub root: ExprAbstract,
    /// Cardinality bounds for every distinct node of the interned
    /// sub-DAG, ascending by id — the per-[`ExprId`] export the
    /// optimizer's cost model consumes.
    pub bounds: Vec<(ExprId, CardInterval)>,
    /// The `W001`–`W007` warnings found in this expression.
    pub warnings: Vec<Warning>,
    /// Machine-checkable versions of the warnings' factual content.
    pub claims: Vec<Claim>,
    /// Whether a warning already explains why the *root* is ∅ (used to
    /// suppress the generic `W008`).
    pub root_cause_warned: bool,
}

/// Abstractly interprets `expr` against the static database state,
/// reusing (and growing) the caller's interner so structurally identical
/// subexpressions share ids — a shared subexpression is analyzed and
/// warned once.
pub fn analyze_expr(
    expr: &Expr,
    spans: Option<&ExprSpans>,
    catalog: &Catalog,
    stats: &StatsCatalog,
    interner: &mut ExprInterner,
) -> ExprAnalysis {
    let mut pass = ExprPass {
        catalog,
        stats,
        interner,
        memo: HashMap::new(),
        warnings: Vec::new(),
        claims: Vec::new(),
        claimed_empty: HashSet::new(),
    };
    let root = pass.analyze(expr, spans, &mut Vec::new());
    let mut bounds: Vec<(ExprId, CardInterval)> =
        pass.memo.iter().map(|(id, a)| (*id, a.card)).collect();
    bounds.sort_by_key(|(id, _)| *id);
    let root_cause_warned = pass.claimed_empty.contains(&root.id);
    ExprAnalysis {
        root,
        bounds,
        warnings: pass.warnings,
        claims: pass.claims,
        root_cause_warned,
    }
}

/// Three-valued truth: what a predicate is known to evaluate to over
/// every tuple abstracted by a set of value ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Truth {
    True,
    False,
    Unknown,
}

struct ExprPass<'a> {
    catalog: &'a Catalog,
    stats: &'a StatsCatalog,
    interner: &'a mut ExprInterner,
    /// Per-ExprId abstract values: a memo hit skips re-analysis *and*
    /// duplicate warnings for shared subexpressions.
    memo: HashMap<ExprId, ExprAbstract>,
    warnings: Vec<Warning>,
    claims: Vec<Claim>,
    /// Nodes whose emptiness a specific warning already explains.
    claimed_empty: HashSet<ExprId>,
}

/// The span of `spans`' node, or unknown.
fn at(spans: Option<&ExprSpans>) -> Span {
    spans.map_or_else(Span::unknown, |s| s.span)
}

/// The span table of the `i`-th operand.
fn child(spans: Option<&ExprSpans>, i: usize) -> Option<&ExprSpans> {
    spans.and_then(|s| s.children.get(i))
}

impl ExprPass<'_> {
    fn warn(&mut self, code: WarnCode, span: Span, msg: String, help: String) {
        self.warnings
            .push(Warning::new(code, span, msg).with_help(help));
    }

    fn claim(&mut self, path: &[usize], kind: ClaimKind) {
        self.claims.push(Claim {
            path: path.to_vec(),
            kind,
        });
    }

    fn analyze(
        &mut self,
        expr: &Expr,
        spans: Option<&ExprSpans>,
        path: &mut Vec<usize>,
    ) -> ExprAbstract {
        let id = self.interner.intern(expr);
        if let Some(a) = self.memo.get(&id) {
            return a.clone();
        }
        let abs = self.analyze_node(expr, id, spans, path);
        self.memo.insert(id, abs.clone());
        abs
    }

    fn operand(
        &mut self,
        expr: &Expr,
        i: usize,
        spans: Option<&ExprSpans>,
        path: &mut Vec<usize>,
    ) -> ExprAbstract {
        path.push(i);
        let abs = self.analyze(expr.operands()[i], child(spans, i), path);
        path.pop();
        abs
    }

    fn analyze_node(
        &mut self,
        expr: &Expr,
        id: ExprId,
        spans: Option<&ExprSpans>,
        path: &mut Vec<usize>,
    ) -> ExprAbstract {
        let span = at(spans);
        match expr {
            Expr::SnapshotConst(s) => ExprAbstract {
                id,
                card: CardInterval::exact(s.len() as u64),
                ranges: const_ranges(s.schema(), &s.iter().collect::<Vec<_>>()),
                schema: Some(s.schema().clone()),
            },
            Expr::HistoricalConst(h) => ExprAbstract {
                id,
                card: CardInterval::exact(h.len() as u64),
                ranges: const_ranges(h.schema(), &h.iter().map(|(t, _)| t).collect::<Vec<_>>()),
                schema: Some(h.schema().clone()),
            },

            Expr::Union(..) | Expr::HUnion(..) => {
                let fa = self.operand(expr, 0, spans, path);
                let fb = self.operand(expr, 1, spans, path);
                for (i, (f, other)) in [(&fa, &fb), (&fb, &fa)].into_iter().enumerate() {
                    if f.card.is_provably_empty() && !other.card.is_provably_empty() {
                        self.warn(
                            WarnCode::EmptyOperand,
                            at(child(spans, i)),
                            format!(
                                "this operand of `{}` is provably empty; the union returns the other operand unchanged",
                                expr.operator_name()
                            ),
                            "drop the provably empty operand".to_string(),
                        );
                        // The union provably equals its other operand —
                        // claim it as equals-operand when ∅ is on the right.
                        if i == 1 {
                            self.claim(path, ClaimKind::EqualsOperand);
                        }
                    }
                }
                let ranges = if fa.card.is_provably_empty() {
                    fb.ranges.clone()
                } else if fb.card.is_provably_empty() {
                    fa.ranges.clone()
                } else {
                    join_ranges(fa.ranges.as_ref(), fb.ranges.as_ref())
                };
                ExprAbstract {
                    id,
                    card: CardInterval::union_of(fa.card, fb.card),
                    schema: fa.schema.or(fb.schema),
                    ranges,
                }
            }

            Expr::Difference(..) | Expr::HDifference(..) => {
                let fa = self.operand(expr, 0, spans, path);
                let fb = self.operand(expr, 1, spans, path);
                if fa.id == fb.id {
                    self.warn(
                        WarnCode::SelfDifference,
                        span,
                        format!(
                            "both operands of `{}` are structurally identical: `E − E` provably yields ∅",
                            expr.operator_name()
                        ),
                        "replace the difference with an empty constant of the same scheme"
                            .to_string(),
                    );
                    self.claim(path, ClaimKind::Empty);
                    self.claimed_empty.insert(id);
                    return ExprAbstract {
                        id,
                        card: CardInterval::empty(),
                        schema: fa.schema,
                        ranges: None,
                    };
                }
                if fb.card.is_provably_empty() {
                    self.warn(
                        WarnCode::EmptyOperand,
                        at(child(spans, 1)),
                        format!(
                            "subtracting a provably empty expression: `{}` returns its left operand unchanged",
                            expr.operator_name()
                        ),
                        "drop the subtraction".to_string(),
                    );
                    self.claim(path, ClaimKind::EqualsOperand);
                }
                ExprAbstract {
                    id,
                    card: CardInterval::difference_of(fa.card, fb.card),
                    schema: fa.schema,
                    ranges: fa.ranges,
                }
            }

            Expr::Product(..) | Expr::HProduct(..) => {
                let fa = self.operand(expr, 0, spans, path);
                let fb = self.operand(expr, 1, spans, path);
                for (i, f) in [&fa, &fb].into_iter().enumerate() {
                    if f.card.is_provably_empty() {
                        self.warn(
                            WarnCode::EmptyOperand,
                            at(child(spans, i)),
                            format!(
                                "this operand of `{}` is provably empty, so the whole product is provably empty",
                                expr.operator_name()
                            ),
                            "the product can be replaced by an empty constant".to_string(),
                        );
                        self.claim(path, ClaimKind::Empty);
                        self.claimed_empty.insert(id);
                    }
                }
                let card = if matches!(expr, Expr::Product(..)) {
                    CardInterval::product_of(fa.card, fb.card)
                } else {
                    CardInterval::hproduct_of(fa.card, fb.card)
                };
                let schema = match (&fa.schema, &fb.schema) {
                    (Some(a), Some(b)) => a.product(b).ok(),
                    _ => None,
                };
                let ranges = match (&schema, fa.ranges, fb.ranges) {
                    (Some(_), Some(mut ra), Some(rb)) => {
                        ra.extend(rb);
                        Some(ra)
                    }
                    _ => None,
                };
                ExprAbstract {
                    id,
                    card,
                    schema,
                    ranges,
                }
            }

            // A physical equi-join is σ_spec(E₁ × E₂): the product's
            // scheme and ranges (sound for any subset), with the product
            // cardinality as upper bound and 0 as lower (the keys may
            // match nothing).
            Expr::Join(..) | Expr::HJoin(..) => {
                let fa = self.operand(expr, 0, spans, path);
                let fb = self.operand(expr, 1, spans, path);
                for f in [&fa, &fb] {
                    if f.card.is_provably_empty() {
                        self.claim(path, ClaimKind::Empty);
                        self.claimed_empty.insert(id);
                    }
                }
                let prod = if matches!(expr, Expr::Join(..)) {
                    CardInterval::product_of(fa.card, fb.card)
                } else {
                    CardInterval::hproduct_of(fa.card, fb.card)
                };
                let card = CardInterval { lo: 0, hi: prod.hi };
                let schema = match (&fa.schema, &fb.schema) {
                    (Some(a), Some(b)) => a.product(b).ok(),
                    _ => None,
                };
                let ranges = match (&schema, fa.ranges, fb.ranges) {
                    (Some(_), Some(mut ra), Some(rb)) => {
                        ra.extend(rb);
                        Some(ra)
                    }
                    _ => None,
                };
                ExprAbstract {
                    id,
                    card,
                    schema,
                    ranges,
                }
            }

            Expr::Project(attrs, _) | Expr::HProject(attrs, _) => {
                let f = self.operand(expr, 0, spans, path);
                let mut full_scheme = false;
                let mut schema = None;
                let mut ranges = None;
                if let Some(s) = &f.schema {
                    full_scheme = attrs.len() == s.arity() && attrs.iter().all(|a| s.contains(a));
                    let identity = attrs.len() == s.arity()
                        && attrs
                            .iter()
                            .zip(s.attributes())
                            .all(|(a, attr)| a.as_str() == &*attr.name);
                    if identity {
                        self.warn(
                            WarnCode::IdentityProjection,
                            span,
                            format!(
                                "`{}` lists the operand's full scheme in order: the projection provably returns its operand unchanged",
                                expr.operator_name()
                            ),
                            "drop the projection".to_string(),
                        );
                        self.claim(path, ClaimKind::EqualsOperand);
                    }
                    if let Ok((projected, _)) = s.project(attrs) {
                        if let Some(rs) = &f.ranges {
                            ranges = Some(
                                attrs
                                    .iter()
                                    .map(|a| {
                                        rs[s.index_of(a).expect("projected attr exists")].clone()
                                    })
                                    .collect(),
                            );
                        }
                        schema = Some(projected);
                    }
                }
                // A full-scheme projection (any permutation) is injective
                // on tuples, so the cardinality carries over exactly;
                // otherwise tuples can merge, but a non-empty state stays
                // non-empty.
                let card = if full_scheme {
                    f.card
                } else {
                    CardInterval {
                        lo: f.card.lo.min(1),
                        hi: f.card.hi,
                    }
                };
                ExprAbstract {
                    id,
                    card,
                    schema,
                    ranges,
                }
            }

            Expr::Select(p, _) | Expr::HSelect(p, _) => {
                let f = self.operand(expr, 0, spans, path);
                let schema = f.schema.clone();
                match pred_truth(p, schema.as_ref(), f.ranges.as_ref()) {
                    Truth::True => {
                        self.warn(
                            WarnCode::TautologicalSelect,
                            span,
                            format!(
                                "`{}` predicate `{p}` is provably satisfied by every tuple of its operand: the selection is redundant",
                                expr.operator_name()
                            ),
                            "drop the selection".to_string(),
                        );
                        self.claim(path, ClaimKind::EqualsOperand);
                        ExprAbstract {
                            id,
                            card: f.card,
                            schema,
                            ranges: f.ranges,
                        }
                    }
                    Truth::False => {
                        self.unsatisfiable(expr, p, id, span, path);
                        ExprAbstract {
                            id,
                            card: CardInterval::empty(),
                            schema,
                            ranges: None,
                        }
                    }
                    Truth::Unknown => {
                        let refined = refine_ranges(p, schema.as_ref(), f.ranges);
                        if refined
                            .as_ref()
                            .is_some_and(|rs| rs.iter().any(ValueRange::is_empty))
                        {
                            // The conjunction's own bounds contradict each
                            // other (e.g. `x > 5 and x < 3`): no tuple of
                            // *any* operand can satisfy the predicate.
                            self.unsatisfiable(expr, p, id, span, path);
                            return ExprAbstract {
                                id,
                                card: CardInterval::empty(),
                                schema,
                                ranges: None,
                            };
                        }
                        ExprAbstract {
                            id,
                            card: CardInterval::at_most(f.card.hi),
                            schema,
                            ranges: refined,
                        }
                    }
                }
            }

            Expr::Delta(..) => {
                let f = self.operand(expr, 0, spans, path);
                // δ filters entries by the temporal predicate and remaps
                // valid times; tuple values are untouched, so the value
                // ranges carry over while the cardinality can only shrink.
                ExprAbstract {
                    id,
                    card: CardInterval::at_most(f.card.hi),
                    schema: f.schema,
                    ranges: f.ranges,
                }
            }

            Expr::Rollback(ident, spec) | Expr::HRollback(ident, spec) => {
                self.rollback(expr, ident, *spec, id, span, path)
            }
        }
    }

    fn unsatisfiable(
        &mut self,
        expr: &Expr,
        p: &Predicate,
        id: ExprId,
        span: Span,
        path: &[usize],
    ) {
        self.warn(
            WarnCode::UnsatisfiableSelect,
            span,
            format!(
                "`{}` predicate `{p}` is provably unsatisfiable: the selection provably yields ∅",
                expr.operator_name()
            ),
            "no tuple of the operand can pass this predicate".to_string(),
        );
        self.claim(path, ClaimKind::Empty);
        self.claimed_empty.insert(id);
    }

    fn rollback(
        &mut self,
        expr: &Expr,
        ident: &str,
        spec: TxSpec,
        id: ExprId,
        span: Span,
        path: &[usize],
    ) -> ExprAbstract {
        let Some(facts) = self.catalog.get(ident) else {
            // The checker already rejected this expression; stay silent.
            return ExprAbstract::unknown(id);
        };
        let op = expr.operator_name();
        if let TxSpec::At(n) = spec {
            if n > self.catalog.tx && facts.has_states() {
                self.warn(
                    WarnCode::RollbackPastClock,
                    span,
                    format!(
                        "`{op}({ident}, {})` names a transaction number beyond the clock (currently {}): it provably resolves to the current version",
                        n.0, self.catalog.tx.0
                    ),
                    format!("write `{op}({ident}, inf)` if the current state is intended"),
                );
                self.claim(path, ClaimKind::EqualsCurrentRollback);
            }
        }
        let resolved = self.catalog.resolve_tx(spec);
        match facts.find_state(resolved) {
            StaticState::NoStates => ExprAbstract::unknown(id),
            StaticState::EmptyWithForcedScheme(schema) => {
                self.warn(
                    WarnCode::RollbackBeforeFirstState,
                    span,
                    format!(
                        "`{op}({ident}, {})` rolls back to before the relation's first stored version: FINDSTATE provably yields ∅",
                        resolved.0
                    ),
                    format!(
                        "the first version of {ident:?} commits at transaction {}",
                        facts.versions.first().map_or(0, |(t, _)| t.0)
                    ),
                );
                self.claim(path, ClaimKind::Empty);
                self.claimed_empty.insert(id);
                ExprAbstract {
                    id,
                    card: CardInterval::empty(),
                    schema,
                    ranges: None,
                }
            }
            StaticState::Version(schema) => {
                let (card, ranges) = self
                    .stats
                    .get(ident)
                    .map(|rs| rs.find_stats(resolved))
                    .unwrap_or((CardInterval::unknown(), None));
                ExprAbstract {
                    id,
                    card,
                    schema,
                    ranges,
                }
            }
        }
    }
}

/// Exact per-attribute ranges of a constant state (`None` for ∅, whose
/// cardinality bound `[0, 0]` already says everything).
fn const_ranges(schema: &Schema, tuples: &[&txtime_snapshot::Tuple]) -> Option<Vec<ValueRange>> {
    if tuples.is_empty() {
        return None;
    }
    Some(
        (0..schema.arity())
            .map(|i| ValueRange::spanning(tuples.iter().map(|t| t.get(i))))
            .collect(),
    )
}

/// Position-wise range hull of two union-compatible operands.
fn join_ranges(
    a: Option<&Vec<ValueRange>>,
    b: Option<&Vec<ValueRange>>,
) -> Option<Vec<ValueRange>> {
    match (a, b) {
        (Some(a), Some(b)) if a.len() == b.len() => {
            Some(a.iter().zip(b).map(|(x, y)| x.join(y)).collect())
        }
        _ => None,
    }
}

/// What the predicate evaluates to over every tuple abstracted by
/// `ranges`: `True`/`False` only when provable for *all* such tuples.
fn pred_truth(p: &Predicate, schema: Option<&Schema>, ranges: Option<&Vec<ValueRange>>) -> Truth {
    match p {
        Predicate::True => Truth::True,
        Predicate::False => Truth::False,
        Predicate::Comp(l, op, r) => comp_truth(l, *op, r, schema, ranges),
        Predicate::And(a, b) => {
            match (pred_truth(a, schema, ranges), pred_truth(b, schema, ranges)) {
                (Truth::False, _) | (_, Truth::False) => Truth::False,
                (Truth::True, Truth::True) => Truth::True,
                _ => Truth::Unknown,
            }
        }
        Predicate::Or(a, b) => match (pred_truth(a, schema, ranges), pred_truth(b, schema, ranges))
        {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        },
        Predicate::Not(a) => match pred_truth(a, schema, ranges) {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        },
    }
}

/// The known range of an attribute, or the full range when nothing is
/// known about it.
fn attr_range(name: &str, schema: Option<&Schema>, ranges: Option<&Vec<ValueRange>>) -> ValueRange {
    schema
        .and_then(|s| s.index_of(name))
        .and_then(|i| ranges.and_then(|rs| rs.get(i).cloned()))
        .unwrap_or_else(ValueRange::full)
}

fn comp_truth(
    l: &Operand,
    op: CompOp,
    r: &Operand,
    schema: Option<&Schema>,
    ranges: Option<&Vec<ValueRange>>,
) -> Truth {
    match (l, r) {
        (Operand::Const(a), Operand::Const(b)) => known(op.apply(a, b)),
        (Operand::Attr(a), Operand::Const(c)) => {
            range_vs_const(&attr_range(a, schema, ranges), op, c)
        }
        (Operand::Const(c), Operand::Attr(a)) => {
            range_vs_const(&attr_range(a, schema, ranges), op.flip(), c)
        }
        (Operand::Attr(a), Operand::Attr(b)) => {
            if a == b {
                // The same attribute compared with itself folds without
                // any range information.
                return match op {
                    CompOp::Eq | CompOp::Le | CompOp::Ge => Truth::True,
                    CompOp::Ne | CompOp::Lt | CompOp::Gt => Truth::False,
                };
            }
            range_vs_range(
                &attr_range(a, schema, ranges),
                op,
                &attr_range(b, schema, ranges),
            )
        }
    }
}

fn known(b: bool) -> Truth {
    if b {
        Truth::True
    } else {
        Truth::False
    }
}

/// Decides a comparison from the over-approximated set of possible
/// orderings of its operands: `True` when every possible ordering
/// satisfies the operator, `False` when none does.
fn decide(op: CompOp, lt: bool, eq: bool, gt: bool) -> Truth {
    let satisfies = |o: CompOp, is_lt: bool, is_eq: bool| match o {
        CompOp::Lt => is_lt,
        CompOp::Le => is_lt || is_eq,
        CompOp::Gt => !is_lt && !is_eq,
        CompOp::Ge => !is_lt,
        CompOp::Eq => is_eq,
        CompOp::Ne => !is_eq,
    };
    let mut any_sat = false;
    let mut any_unsat = false;
    for (possible, is_lt, is_eq) in [(lt, true, false), (eq, false, true), (gt, false, false)] {
        if possible {
            if satisfies(op, is_lt, is_eq) {
                any_sat = true;
            } else {
                any_unsat = true;
            }
        }
    }
    match (any_sat, any_unsat) {
        (true, false) => Truth::True,
        (false, true) => Truth::False,
        _ => Truth::Unknown,
    }
}

fn range_vs_const(r: &ValueRange, op: CompOp, c: &Value) -> Truth {
    if r.is_empty() {
        return Truth::Unknown;
    }
    // Possible orderings of an attribute value v against c,
    // over-approximated (a flag may be true even if no v realizes it —
    // that can only weaken True/False to Unknown, never unsound).
    let lt = r.lo.as_ref().is_none_or(|b| b.value < *c);
    let gt = r.hi.as_ref().is_none_or(|b| b.value > *c);
    let eq = r.contains(c);
    decide(op, lt, eq, gt)
}

fn range_vs_range(a: &ValueRange, op: CompOp, b: &ValueRange) -> Truth {
    if a.is_empty() || b.is_empty() {
        return Truth::Unknown;
    }
    let lt = match (&a.lo, &b.hi) {
        (Some(x), Some(y)) => x.value < y.value,
        _ => true,
    };
    let gt = match (&a.hi, &b.lo) {
        (Some(x), Some(y)) => x.value > y.value,
        _ => true,
    };
    let eq = overlaps(a, b);
    decide(op, lt, eq, gt)
}

/// Whether two ranges can share a value.
fn overlaps(a: &ValueRange, b: &ValueRange) -> bool {
    let disjoint = |lo: &Option<Bound>, hi: &Option<Bound>| match (lo, hi) {
        (Some(l), Some(h)) => l.value > h.value || (l.value == h.value && (l.strict || h.strict)),
        _ => false,
    };
    !(disjoint(&a.lo, &b.hi) || disjoint(&b.lo, &a.hi))
}

/// The value ranges of the tuples *surviving* the selection: the operand
/// ranges tightened by every top-level conjunct of the form
/// `attr ⊙ const`. Sound because a surviving tuple satisfies every
/// conjunct; an empty refined range therefore proves the predicate
/// unsatisfiable.
fn refine_ranges(
    p: &Predicate,
    schema: Option<&Schema>,
    base: Option<Vec<ValueRange>>,
) -> Option<Vec<ValueRange>> {
    let schema = schema?;
    let mut rs = base.unwrap_or_else(|| vec![ValueRange::full(); schema.arity()]);
    refine_into(p, schema, &mut rs);
    Some(rs)
}

fn refine_into(p: &Predicate, schema: &Schema, rs: &mut [ValueRange]) {
    match p {
        Predicate::And(a, b) => {
            refine_into(a, schema, rs);
            refine_into(b, schema, rs);
        }
        Predicate::Comp(Operand::Attr(a), op, Operand::Const(c)) => {
            refine_comp(rs, schema, a, *op, c);
        }
        Predicate::Comp(Operand::Const(c), op, Operand::Attr(a)) => {
            refine_comp(rs, schema, a, op.flip(), c);
        }
        // Disjunctions, negations, attr-attr comparisons and the
        // constants refine nothing (sound: wider ranges only).
        _ => {}
    }
}

fn refine_comp(rs: &mut [ValueRange], schema: &Schema, attr: &str, op: CompOp, c: &Value) {
    let Some(i) = schema.index_of(attr) else {
        return;
    };
    match op {
        CompOp::Lt => rs[i].refine_hi(Bound::open(c.clone())),
        CompOp::Le => rs[i].refine_hi(Bound::closed(c.clone())),
        CompOp::Gt => rs[i].refine_lo(Bound::open(c.clone())),
        CompOp::Ge => rs[i].refine_lo(Bound::closed(c.clone())),
        CompOp::Eq => {
            rs[i].refine_lo(Bound::closed(c.clone()));
            rs[i].refine_hi(Bound::closed(c.clone()));
        }
        CompOp::Ne => {}
    }
}

/// One relation's flow state between its definition and deletion.
#[derive(Debug, Clone)]
struct GenState {
    keeps_history: bool,
    /// Whether any command has read the relation in this lifetime.
    ever_read: bool,
    /// Writes (`modify_state` command index + head span) not yet
    /// followed by a read.
    pending: Vec<(usize, Span)>,
}

/// A query displayed often enough that the engine's view memo registers
/// it (the memo's default threshold is a second display).
#[derive(Debug, Clone)]
struct RegisteredView {
    rendered: String,
    reads: Vec<String>,
}

/// The number of displays after which the engine's view memo registers a
/// query as an incrementally maintained view (mirrors
/// `Engine::set_memo_register_after`'s default).
pub const VIEW_REGISTER_AFTER: u32 = 2;

/// The stateful linter: a [`Checker`] plus the statistics catalog, the
/// hash-consed DAG, and the flow-sensitive command state.
///
/// Use [`lint_sentence`] for the whole-sentence case; construct a
/// `Linter` for incremental use (the REPL checks each command, executes
/// it, then [`Linter::commit`]s exactly the commands the engine ran).
#[derive(Debug, Default)]
pub struct Linter {
    checker: Checker,
    stats: StatsCatalog,
    interner: ExprInterner,
    displayed: HashMap<ExprId, u32>,
    views: Vec<RegisteredView>,
    gens: BTreeMap<String, GenState>,
    warnings: Vec<Warning>,
    /// Command indices of `modify_state`s proven dead (exported for the
    /// mutation-based soundness tests).
    dead_writes: Vec<usize>,
    cmd_index: usize,
}

impl Linter {
    /// A linter at the empty database — where every sentence starts.
    pub fn new() -> Linter {
        Linter::default()
    }

    /// The static database state accumulated so far.
    pub fn catalog(&self) -> &Catalog {
        self.checker.catalog()
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Every warning issued so far, in emission order.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Command indices of writes proven dead so far.
    pub fn dead_writes(&self) -> &[usize] {
        &self.dead_writes
    }

    /// Checks one command against the current state without committing
    /// it (delegates to the [`Checker`]).
    pub fn check(&self, command: &Command, spans: Option<&CommandSpans>) -> Vec<Diagnostic> {
        self.checker.check(command, spans)
    }

    /// Lints a command and records its effect on the static state,
    /// returning the warnings this command surfaced. Call only for
    /// commands that checked clean and (will) actually execute —
    /// erroring commands are the no-ops the paper's total semantics
    /// makes them, and linting them would warn about nonsense.
    ///
    /// A returned warning may be anchored at an *earlier* command's span:
    /// a `delete_relation` is what proves an old write dead.
    pub fn commit(&mut self, command: &Command, spans: Option<&CommandSpans>) -> Vec<Warning> {
        let head = spans.map_or_else(Span::unknown, |s| s.head);
        let expr_spans = spans.and_then(|s| s.expr.as_ref());
        let before = self.warnings.len();

        // Expression-level abstract interpretation against the
        // pre-command state.
        let analysis = command.expr().map(|e| {
            analyze_expr(
                e,
                expr_spans,
                self.checker.catalog(),
                &self.stats,
                &mut self.interner,
            )
        });
        if let Some(an) = &analysis {
            self.warnings.extend(an.warnings.iter().cloned());
            if matches!(command, Command::Display(_))
                && an.root.card.is_provably_empty()
                && !an.root_cause_warned
            {
                self.warnings.push(
                    Warning::new(
                        WarnCode::DeadDisplay,
                        expr_spans.map_or(head, |s| s.span),
                        "this `display` provably shows ∅".to_string(),
                    )
                    .with_help("the expression's cardinality bound is exactly zero"),
                );
            }
        }

        // Flow-sensitive half: a command's expression reads happen
        // before its own write commits, so process reads first.
        let mut reads: Vec<&str> = command.read_set();
        if let Command::EvolveScheme(ident, _) = command {
            // evolve_scheme derives the new version from the current
            // state: it reads what the last write produced.
            reads.push(ident);
        }
        for name in reads {
            if let Some(gen) = self.gens.get_mut(name) {
                gen.ever_read = true;
                gen.pending.clear();
            }
        }
        match command {
            Command::DefineRelation(ident, rtype) => {
                self.gens.insert(
                    ident.clone(),
                    GenState {
                        keeps_history: rtype.keeps_history(),
                        ever_read: false,
                        pending: Vec::new(),
                    },
                );
            }
            Command::ModifyState(ident, _) => {
                if let Some(gen) = self.gens.get_mut(ident) {
                    if !gen.keeps_history {
                        // A non-history relation keeps only its latest
                        // version: unread earlier writes are gone for good.
                        let overwritten = std::mem::take(&mut gen.pending);
                        for (idx, wspan) in overwritten {
                            self.warnings.push(
                                Warning::new(
                                    WarnCode::DeadWrite,
                                    wspan,
                                    format!(
                                        "the state this `modify_state` writes to {ident:?} is overwritten before any command reads it"
                                    ),
                                )
                                .with_help(
                                    "the relation's type keeps no history; this version is unobservable",
                                ),
                            );
                            self.dead_writes.push(idx);
                        }
                    }
                    gen.pending.push((self.cmd_index, head));
                }
            }
            Command::DeleteRelation(ident) => {
                if let Some(gen) = self.gens.remove(ident) {
                    if !gen.ever_read {
                        self.warnings.push(
                            Warning::new(
                                WarnCode::DeadRelation,
                                head,
                                format!(
                                    "relation {ident:?} is deleted without ever having been read: its whole lifetime is dead"
                                ),
                            )
                            .with_help("every state it held was provably unobservable"),
                        );
                        self.dead_writes.extend(gen.pending.iter().map(|(i, _)| *i));
                    } else {
                        for (idx, wspan) in gen.pending {
                            self.warnings.push(
                                Warning::new(
                                    WarnCode::DeadWrite,
                                    wspan,
                                    format!(
                                        "the state this `modify_state` writes to {ident:?} is deleted before any command reads it"
                                    ),
                                )
                                .with_help(
                                    "no read falls between this write and the relation's deletion",
                                ),
                            );
                            self.dead_writes.push(idx);
                        }
                    }
                }
            }
            Command::EvolveScheme(ident, _) => {
                for view in &self.views {
                    if view.reads.iter().any(|r| r == ident) {
                        self.warnings.push(
                            Warning::new(
                                WarnCode::StaleView,
                                head,
                                format!(
                                    "evolving the scheme of {ident:?} invalidates the registered view `{}`",
                                    view.rendered
                                ),
                            )
                            .with_help(
                                "the view memo must discard and rebuild the cached answer on its next display",
                            ),
                        );
                    }
                }
            }
            Command::Display(e) => {
                let id = analysis
                    .as_ref()
                    .expect("display has an expression")
                    .root
                    .id;
                let count = self.displayed.entry(id).or_insert(0);
                *count += 1;
                if *count == VIEW_REGISTER_AFTER {
                    let mut names: Vec<String> = Vec::new();
                    for (name, _) in &self.interner.node(id).reads {
                        if !names.contains(name) {
                            names.push(name.clone());
                        }
                    }
                    self.views.push(RegisteredView {
                        rendered: e.to_string(),
                        reads: names,
                    });
                }
            }
        }

        // Statistics bookkeeping (against the pre-commit catalog), then
        // the catalog commit itself.
        match command {
            Command::DefineRelation(ident, _) => self.stats.define(ident.clone()),
            Command::ModifyState(ident, _) => {
                let keeps = self
                    .catalog()
                    .get(ident)
                    .is_some_and(|f| f.rtype.keeps_history());
                let tx = self.catalog().tx.next();
                let root = &analysis
                    .as_ref()
                    .expect("modify_state has an expression")
                    .root;
                let (card, ranges) = (root.card, root.ranges.clone());
                if let Some(rs) = self.stats.get_mut(ident) {
                    rs.push_version(tx, card, ranges, keeps);
                }
            }
            Command::DeleteRelation(ident) => self.stats.undefine(ident),
            Command::EvolveScheme(ident, change) => {
                let keeps = self
                    .catalog()
                    .get(ident)
                    .is_some_and(|f| f.rtype.keeps_history());
                let schema = self
                    .catalog()
                    .get(ident)
                    .and_then(|f| f.current_schema())
                    .cloned();
                let tx = self.catalog().tx.next();
                let (card, ranges) = evolved_stats(
                    self.stats.get(ident).and_then(|rs| rs.current()),
                    schema.as_ref(),
                    change,
                );
                if let Some(rs) = self.stats.get_mut(ident) {
                    rs.push_version(tx, card, ranges, keeps);
                }
            }
            Command::Display(_) => {}
        }
        self.checker.commit(command);
        self.cmd_index += 1;
        self.warnings[before..].to_vec()
    }

    /// [`Linter::check`] then, when clean, [`Linter::commit`]. Returns
    /// `(diagnostics, warnings)` — at most one of the two is non-empty.
    pub fn check_and_commit(
        &mut self,
        command: &Command,
        spans: Option<&CommandSpans>,
    ) -> (Vec<Diagnostic>, Vec<Warning>) {
        let diags = self.check(command, spans);
        if diags.is_empty() {
            let warns = self.commit(command, spans);
            (diags, warns)
        } else {
            // An erroring command is a no-op, but it still occupies a
            // position in the sentence.
            self.cmd_index += 1;
            (diags, Vec::new())
        }
    }
}

/// The statistics of the version an `evolve_scheme` produces.
fn evolved_stats(
    current: Option<&crate::stats::VersionStats>,
    schema: Option<&Schema>,
    change: &txtime_core::SchemeChange,
) -> (CardInterval, Option<Vec<ValueRange>>) {
    use txtime_core::SchemeChange;
    let Some(v) = current else {
        return (CardInterval::unknown(), None);
    };
    match change {
        // Adding an attribute assigns every tuple the default value:
        // the cardinality is unchanged and the new column's range is
        // exact.
        SchemeChange::AddAttribute { default, .. } => {
            let ranges = match (&v.ranges, schema) {
                (Some(rs), _) => {
                    let mut rs = rs.clone();
                    rs.push(ValueRange::exact(default.clone()));
                    Some(rs)
                }
                (None, Some(s)) => {
                    let mut rs = vec![ValueRange::full(); s.arity()];
                    rs.push(ValueRange::exact(default.clone()));
                    Some(rs)
                }
                (None, None) => None,
            };
            (v.card, ranges)
        }
        // Dropping an attribute can merge tuples that agreed elsewhere:
        // a non-empty state stays non-empty, and nothing can grow.
        SchemeChange::DropAttribute(name) => {
            let card = CardInterval {
                lo: v.card.lo.min(1),
                hi: v.card.hi,
            };
            let ranges = match (&v.ranges, schema.and_then(|s| s.index_of(name))) {
                (Some(rs), Some(i)) => {
                    let mut rs = rs.clone();
                    rs.remove(i);
                    Some(rs)
                }
                _ => None,
            };
            (card, ranges)
        }
        // Renaming changes no tuple and no position.
        SchemeChange::RenameAttribute { .. } => (v.card, v.ranges.clone()),
    }
}

/// The result of linting a whole sentence.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The checker's errors, in source order (a command that errors is
    /// not linted).
    pub diagnostics: Vec<Diagnostic>,
    /// The lint warnings, sorted by source position.
    pub warnings: Vec<Warning>,
    /// The statically maintained statistics at the end of the sentence.
    pub stats: StatsCatalog,
    /// Command indices of `modify_state`s proven dead.
    pub dead_writes: Vec<usize>,
}

/// Checks and lints a whole sentence from the empty database.
pub fn lint_sentence(sentence: &Sentence, spans: Option<&SentenceSpans>) -> LintReport {
    let mut linter = Linter::new();
    let mut diagnostics = Vec::new();
    for (i, command) in sentence.commands().iter().enumerate() {
        let cspans = spans.and_then(|s| s.commands.get(i));
        let (diags, _) = linter.check_and_commit(command, cspans);
        diagnostics.extend(diags);
    }
    let Linter {
        stats,
        mut warnings,
        dead_writes,
        ..
    } = linter;
    warnings.sort_by_key(|w| (w.span.line, w.span.col));
    LintReport {
        diagnostics,
        warnings,
        stats,
        dead_writes,
    }
}

/// Resolves a [`Claim`]'s operand path against the expression it was
/// made about.
pub fn claim_target<'e>(expr: &'e Expr, claim: &Claim) -> &'e Expr {
    let mut cur = expr;
    for &i in &claim.path {
        cur = cur.operands()[i];
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, RelationType, Sentence, TransactionNumber};
    use txtime_snapshot::{DomainType, SnapshotState};

    fn emp_state(rows: &[(&str, i64)]) -> SnapshotState {
        SnapshotState::from_rows(
            Schema::new(vec![("name", DomainType::Str), ("sal", DomainType::Int)]).unwrap(),
            rows.iter()
                .map(|(n, s)| vec![Value::str(*n), Value::Int(*s)])
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn lint(commands: Vec<Command>) -> LintReport {
        lint_sentence(&Sentence::new(commands).unwrap(), None)
    }

    fn codes(report: &LintReport) -> Vec<WarnCode> {
        report.warnings.iter().map(|w| w.code).collect()
    }

    #[test]
    fn clean_sentence_produces_no_warnings() {
        let report = lint(vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::modify_state("emp", Expr::snapshot_const(emp_state(&[("a", 10)]))),
            Command::display(Expr::current("emp")),
        ]);
        assert!(report.diagnostics.is_empty());
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert!(report.dead_writes.is_empty());
    }

    #[test]
    fn unsatisfiable_and_tautological_selects() {
        let base = Expr::snapshot_const(emp_state(&[("a", 10), ("b", 20)]));
        let report = lint(vec![
            Command::display(
                base.clone().select(
                    Predicate::gt_const("sal", Value::Int(5))
                        .and(Predicate::lt_const("sal", Value::Int(3))),
                ),
            ),
            Command::display(base.select(Predicate::gt_const("sal", Value::Int(0)))),
        ]);
        let cs = codes(&report);
        assert!(cs.contains(&WarnCode::UnsatisfiableSelect), "{cs:?}");
        assert!(cs.contains(&WarnCode::TautologicalSelect), "{cs:?}");
        // W008 is suppressed: W001 already explains the empty display.
        assert!(!cs.contains(&WarnCode::DeadDisplay), "{cs:?}");
    }

    #[test]
    fn self_difference_and_empty_operands() {
        let base = Expr::snapshot_const(emp_state(&[("a", 10)]));
        let dept_empty = SnapshotState::from_rows(
            Schema::new(vec![("dept", DomainType::Int)]).unwrap(),
            Vec::new(),
        )
        .unwrap();
        let report = lint(vec![
            Command::display(base.clone().difference(base.clone()).union(base.clone())),
            Command::display(
                base.clone()
                    .difference(Expr::snapshot_const(emp_state(&[]))),
            ),
            Command::display(base.product(Expr::snapshot_const(dept_empty))),
        ]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let cs = codes(&report);
        assert!(cs.contains(&WarnCode::SelfDifference), "{cs:?}");
        // `(E−E) ∪ E` (empty union operand), `E − ∅` (redundant
        // subtraction), and `E × ∅` (empty product operand) each fire W003.
        assert_eq!(
            cs.iter().filter(|c| **c == WarnCode::EmptyOperand).count(),
            3,
            "{cs:?}"
        );
        // The empty product claims ∅ at its own root, so the generic
        // W008 stays silent.
        assert!(!cs.contains(&WarnCode::DeadDisplay), "{cs:?}");
    }

    #[test]
    fn rollback_range_warnings() {
        let report = lint(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(emp_state(&[("a", 1)]))),
            // First version commits at tx 2; tx 1 is the forced-∅ boundary.
            Command::display(Expr::rollback("r", TxSpec::At(TransactionNumber(1)))),
            // The clock is at 2; tx 99 resolves to the current version.
            Command::display(Expr::rollback("r", TxSpec::At(TransactionNumber(99)))),
            // Emptiness derived (not claimed) at the root: W008 fires.
            Command::display(
                Expr::rollback("r", TxSpec::At(TransactionNumber(1)))
                    .project(vec!["name".to_string()]),
            ),
        ]);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let cs = codes(&report);
        assert!(cs.contains(&WarnCode::RollbackBeforeFirstState), "{cs:?}");
        assert!(cs.contains(&WarnCode::RollbackPastClock), "{cs:?}");
        assert!(cs.contains(&WarnCode::DeadDisplay), "{cs:?}");
    }

    #[test]
    fn dead_write_and_dead_relation() {
        let report = lint(vec![
            // Overwritten before any read (snapshot keeps no history).
            Command::define_relation("s", RelationType::Snapshot),
            Command::modify_state("s", Expr::snapshot_const(emp_state(&[("a", 1)]))),
            Command::modify_state("s", Expr::snapshot_const(emp_state(&[("b", 2)]))),
            Command::display(Expr::current("s")),
            // Whole lifetime dead.
            Command::define_relation("tmp", RelationType::Rollback),
            Command::modify_state("tmp", Expr::snapshot_const(emp_state(&[("c", 3)]))),
            Command::delete_relation("tmp"),
        ]);
        let cs = codes(&report);
        assert!(cs.contains(&WarnCode::DeadWrite), "{cs:?}");
        assert!(cs.contains(&WarnCode::DeadRelation), "{cs:?}");
        assert_eq!(report.dead_writes, vec![1, 5]);
    }

    #[test]
    fn read_keeps_writes_alive() {
        let report = lint(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(emp_state(&[("a", 1)]))),
            Command::display(Expr::current("r")),
            Command::delete_relation("r"),
        ]);
        assert!(codes(&report).is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn stale_view_on_evolve() {
        let q = Expr::current("r").select(Predicate::gt_const("sal", Value::Int(5)));
        let report = lint(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(emp_state(&[("a", 10)]))),
            Command::display(q.clone()),
            Command::display(q), // second display: the memo registers it
            Command::evolve_scheme(
                "r",
                txtime_core::SchemeChange::RenameAttribute {
                    from: "name".into(),
                    to: "who".into(),
                },
            ),
        ]);
        assert!(codes(&report).contains(&WarnCode::StaleView));
    }

    #[test]
    fn claims_resolve_to_nodes() {
        let base = Expr::snapshot_const(emp_state(&[("a", 10)]));
        let expr = base
            .clone()
            .union(base.clone().difference(base.clone()))
            .select(Predicate::gt_const("sal", Value::Int(0)));
        let mut interner = ExprInterner::new();
        let analysis = analyze_expr(
            &expr,
            None,
            &Catalog::new(),
            &StatsCatalog::new(),
            &mut interner,
        );
        let empty: Vec<_> = analysis
            .claims
            .iter()
            .filter(|c| c.kind == ClaimKind::Empty)
            .collect();
        assert_eq!(empty.len(), 1);
        assert!(matches!(
            claim_target(&expr, empty[0]),
            Expr::Difference(..)
        ));
    }

    #[test]
    fn stats_track_modify_and_evolve() {
        let mut linter = Linter::new();
        for cmd in [
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(emp_state(&[("a", 1), ("b", 2)]))),
            Command::evolve_scheme(
                "r",
                txtime_core::SchemeChange::AddAttribute {
                    name: "dept".into(),
                    domain: DomainType::Int,
                    default: Value::Int(7),
                },
            ),
        ] {
            let (diags, _) = linter.check_and_commit(&cmd, None);
            assert!(diags.is_empty(), "{diags:?}");
        }
        let rs = linter.stats().get("r").unwrap();
        assert_eq!(rs.versions.len(), 2);
        assert_eq!(rs.versions[0].card, CardInterval::exact(2));
        assert_eq!(rs.versions[1].card, CardInterval::exact(2));
        let ranges = rs.versions[1].ranges.as_ref().unwrap();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[2], ValueRange::exact(Value::Int(7)));
    }

    #[test]
    fn bounds_cover_every_subexpression() {
        let base = Expr::snapshot_const(emp_state(&[("a", 10)]));
        let expr = base
            .clone()
            .union(base)
            .select(Predicate::gt_const("sal", Value::Int(0)));
        let mut interner = ExprInterner::new();
        let analysis = analyze_expr(
            &expr,
            None,
            &Catalog::new(),
            &StatsCatalog::new(),
            &mut interner,
        );
        // const, union, select — the shared const interns once.
        assert_eq!(analysis.bounds.len(), 3);
        assert!(analysis
            .bounds
            .iter()
            .any(|(id, _)| *id == analysis.root.id));
    }
}
