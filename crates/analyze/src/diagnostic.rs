//! Structured diagnostics with stable codes and source spans.
//!
//! Every rule the checker enforces has a stable `E0xx` code (catalogued
//! in DESIGN.md) so tests, tooling, and documentation can refer to a
//! specific judgment rather than matching message text.

use std::fmt;

use txtime_core::Span;

/// The stable code of a static judgment the checker can reject on.
///
/// Expression-level codes are `E001`–`E010`; command-level codes are
/// `E020`–`E023`. Codes are append-only: a published code never changes
/// meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorCode {
    /// ρ/ρ̂ names an identifier not bound in the database state.
    UndefinedRelation,
    /// A snapshot operator (∪, −, ×, π, σ) was applied to an operand
    /// that produces an historical state.
    SnapshotOperatorOnHistorical,
    /// An historical operator (∪̂, −̂, ×̂, π̂, σ̂, δ) was applied to an
    /// operand that produces a snapshot state.
    HistoricalOperatorOnSnapshot,
    /// ρ applied to an historical/temporal relation, or ρ̂ applied to a
    /// snapshot/rollback relation.
    RollbackKindMismatch,
    /// ρ(I, N)/ρ̂(I, N) with N ≠ ∞ on a relation whose type does not keep
    /// history ("The rollback operator cannot retrieve a past state of a
    /// snapshot relation").
    RollbackIntoNonRollback,
    /// A π/π̂ attribute list references an unknown attribute or repeats
    /// one.
    BadProjection,
    /// A σ/σ̂ predicate references an unknown attribute or compares
    /// values of different domains.
    IllTypedPredicate,
    /// ∪/−/∪̂/−̂ operands are not union-compatible.
    NotUnionCompatible,
    /// ×/×̂ operand schemes share an attribute name.
    ProductAttributeClash,
    /// ρ/ρ̂ of a relation that has never been given a state: FINDSTATE
    /// returns ∅, but ∅ needs a scheme and none is known.
    RollbackOfStatelessRelation,
    /// A command other than `define_relation` names an unbound
    /// identifier.
    CommandOnUndefined,
    /// `define_relation` on an identifier that is already bound.
    AlreadyDefined,
    /// A `modify_state` expression produces a state kind (snapshot vs
    /// historical) incompatible with the relation's declared type.
    StateKindMismatch,
    /// An `evolve_scheme` change cannot apply to the relation's current
    /// scheme (unknown attribute, last attribute, domain mismatch, name
    /// clash, or no state to evolve).
    InvalidSchemeChange,
}

impl ErrorCode {
    /// The stable `E0xx` string for this code.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::UndefinedRelation => "E001",
            ErrorCode::SnapshotOperatorOnHistorical => "E002",
            ErrorCode::HistoricalOperatorOnSnapshot => "E003",
            ErrorCode::RollbackKindMismatch => "E004",
            ErrorCode::RollbackIntoNonRollback => "E005",
            ErrorCode::BadProjection => "E006",
            ErrorCode::IllTypedPredicate => "E007",
            ErrorCode::NotUnionCompatible => "E008",
            ErrorCode::ProductAttributeClash => "E009",
            ErrorCode::RollbackOfStatelessRelation => "E010",
            ErrorCode::CommandOnUndefined => "E020",
            ErrorCode::AlreadyDefined => "E021",
            ErrorCode::StateKindMismatch => "E022",
            ErrorCode::InvalidSchemeChange => "E023",
        }
    }

    /// All codes, in numeric order (used by the golden tests and the
    /// DESIGN.md catalogue check).
    pub const ALL: [ErrorCode; 14] = [
        ErrorCode::UndefinedRelation,
        ErrorCode::SnapshotOperatorOnHistorical,
        ErrorCode::HistoricalOperatorOnSnapshot,
        ErrorCode::RollbackKindMismatch,
        ErrorCode::RollbackIntoNonRollback,
        ErrorCode::BadProjection,
        ErrorCode::IllTypedPredicate,
        ErrorCode::NotUnionCompatible,
        ErrorCode::ProductAttributeClash,
        ErrorCode::RollbackOfStatelessRelation,
        ErrorCode::CommandOnUndefined,
        ErrorCode::AlreadyDefined,
        ErrorCode::StateKindMismatch,
        ErrorCode::InvalidSchemeChange,
    ];
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// The stable code of a lint judgment: a warning the abstract
/// interpreter or the flow-sensitive command analysis can issue.
///
/// Unlike [`ErrorCode`]s, warnings never reject a sentence — every
/// warned construct is legal and evaluates — but each one states a fact
/// that holds in *every* execution (the snapshot-soundness contract the
/// differential proptests enforce). Expression-level codes are
/// `W001`–`W008`; flow-sensitive command-level codes are `W020`–`W022`.
/// Codes are append-only: a published code never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WarnCode {
    /// σ/σ̂ whose predicate is false for every possible tuple of its
    /// operand: the selection provably yields ∅.
    UnsatisfiableSelect,
    /// σ/σ̂ whose predicate is true for every possible tuple of its
    /// operand: the selection provably returns its operand unchanged.
    TautologicalSelect,
    /// ∪/∪̂ with a provably-∅ operand (redundant), −/−̂ subtracting a
    /// provably-∅ expression (redundant), or ×/×̂ with a provably-∅
    /// operand (the product is provably ∅).
    EmptyOperand,
    /// `E − E` / `E −̂ E`: both operands intern to the same [`ExprId`],
    /// so the difference provably yields ∅.
    ///
    /// [`ExprId`]: crate::interner::ExprId
    SelfDifference,
    /// π/π̂ listing the operand's full scheme in its original order: the
    /// projection provably returns its operand unchanged.
    IdentityProjection,
    /// ρ/ρ̂ to a transaction number before the relation's first stored
    /// version: FINDSTATE's boundary rule makes the result provably ∅
    /// (with the earliest version's scheme forced onto it).
    RollbackBeforeFirstState,
    /// ρ/ρ̂ to a transaction number beyond the transaction clock at this
    /// point in the sentence: it resolves to the current version, so
    /// `rho(I, n)` is just an obfuscated `rho(I, inf)` here.
    RollbackPastClock,
    /// A `display` whose whole expression is provably ∅ (and no more
    /// specific warning already explains why).
    DeadDisplay,
    /// A `modify_state` whose written version is provably never read: it
    /// is overwritten (non-history relation) or the relation is deleted
    /// before any command reads it.
    DeadWrite,
    /// A relation that is defined and later deleted without ever being
    /// read in between: its entire lifetime is provably dead.
    DeadRelation,
    /// An `evolve_scheme` on a relation read by a query displayed often
    /// enough to be a registered incremental view: the evolution
    /// invalidates the view's cached state and forces a rebuild.
    StaleView,
}

impl WarnCode {
    /// The stable `W0xx` string for this code.
    pub fn code(self) -> &'static str {
        match self {
            WarnCode::UnsatisfiableSelect => "W001",
            WarnCode::TautologicalSelect => "W002",
            WarnCode::EmptyOperand => "W003",
            WarnCode::SelfDifference => "W004",
            WarnCode::IdentityProjection => "W005",
            WarnCode::RollbackBeforeFirstState => "W006",
            WarnCode::RollbackPastClock => "W007",
            WarnCode::DeadDisplay => "W008",
            WarnCode::DeadWrite => "W020",
            WarnCode::DeadRelation => "W021",
            WarnCode::StaleView => "W022",
        }
    }

    /// All codes, in numeric order (used by the golden tests and the
    /// DESIGN.md catalogue check).
    pub const ALL: [WarnCode; 11] = [
        WarnCode::UnsatisfiableSelect,
        WarnCode::TautologicalSelect,
        WarnCode::EmptyOperand,
        WarnCode::SelfDifference,
        WarnCode::IdentityProjection,
        WarnCode::RollbackBeforeFirstState,
        WarnCode::RollbackPastClock,
        WarnCode::DeadDisplay,
        WarnCode::DeadWrite,
        WarnCode::DeadRelation,
        WarnCode::StaleView,
    ];
}

impl fmt::Display for WarnCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of the lint pass — same shape as [`Diagnostic`], but
/// advisory: the sentence is legal and executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// The lint judgment that fired.
    pub code: WarnCode,
    /// Where in the source the warned construct starts (`0:0` when the
    /// sentence was built programmatically and carries no spans).
    pub span: Span,
    /// What was found.
    pub message: String,
    /// What to do about it, when a fix is evident.
    pub help: Option<String>,
}

impl Warning {
    /// A warning without a help line.
    pub fn new(code: WarnCode, span: Span, message: impl Into<String>) -> Warning {
        Warning {
            code,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Warning {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(
                f,
                "warning[{}] at {}: {}",
                self.code, self.span, self.message
            )?;
        } else {
            write!(f, "warning[{}]: {}", self.code, self.message)?;
        }
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

/// One finding of the static checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The judgment that was violated.
    pub code: ErrorCode,
    /// Where in the source the offending construct starts (`0:0` when the
    /// sentence was built programmatically and carries no spans).
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a fix is evident.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic without a help line.
    pub fn new(code: ErrorCode, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(f, "error[{}] at {}: {}", self.code, self.span, self.message)?;
        } else {
            write!(f, "error[{}]: {}", self.code, self.message)?;
        }
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in ErrorCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(c.code().starts_with('E'));
        }
        assert_eq!(ErrorCode::UndefinedRelation.code(), "E001");
        assert_eq!(ErrorCode::InvalidSchemeChange.code(), "E023");
    }

    #[test]
    fn warn_codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in WarnCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(c.code().starts_with('W'));
        }
        assert_eq!(WarnCode::UnsatisfiableSelect.code(), "W001");
        assert_eq!(WarnCode::StaleView.code(), "W022");
    }

    #[test]
    fn warning_display_includes_span_and_help() {
        let w = Warning::new(WarnCode::SelfDifference, Span::new(2, 5), "E − E is empty")
            .with_help("drop the whole difference");
        let s = w.to_string();
        assert!(s.contains("warning[W004] at 2:5"));
        assert!(s.contains("help: drop"));
        let u = Warning::new(WarnCode::SelfDifference, Span::unknown(), "x");
        assert!(!u.to_string().contains("at "));
    }

    #[test]
    fn display_includes_span_and_help() {
        let d = Diagnostic::new(
            ErrorCode::AlreadyDefined,
            Span::new(3, 7),
            "relation \"emp\" is already defined",
        )
        .with_help("pick a different identifier");
        let s = d.to_string();
        assert!(s.contains("error[E021] at 3:7"));
        assert!(s.contains("help: pick"));
        let u = Diagnostic::new(ErrorCode::AlreadyDefined, Span::unknown(), "x");
        assert!(!u.to_string().contains("at "));
    }
}
