//! Structured diagnostics with stable codes and source spans.
//!
//! Every rule the checker enforces has a stable `E0xx` code (catalogued
//! in DESIGN.md) so tests, tooling, and documentation can refer to a
//! specific judgment rather than matching message text.

use std::fmt;

use txtime_core::Span;

/// The stable code of a static judgment the checker can reject on.
///
/// Expression-level codes are `E001`–`E010`; command-level codes are
/// `E020`–`E023`. Codes are append-only: a published code never changes
/// meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorCode {
    /// ρ/ρ̂ names an identifier not bound in the database state.
    UndefinedRelation,
    /// A snapshot operator (∪, −, ×, π, σ) was applied to an operand
    /// that produces an historical state.
    SnapshotOperatorOnHistorical,
    /// An historical operator (∪̂, −̂, ×̂, π̂, σ̂, δ) was applied to an
    /// operand that produces a snapshot state.
    HistoricalOperatorOnSnapshot,
    /// ρ applied to an historical/temporal relation, or ρ̂ applied to a
    /// snapshot/rollback relation.
    RollbackKindMismatch,
    /// ρ(I, N)/ρ̂(I, N) with N ≠ ∞ on a relation whose type does not keep
    /// history ("The rollback operator cannot retrieve a past state of a
    /// snapshot relation").
    RollbackIntoNonRollback,
    /// A π/π̂ attribute list references an unknown attribute or repeats
    /// one.
    BadProjection,
    /// A σ/σ̂ predicate references an unknown attribute or compares
    /// values of different domains.
    IllTypedPredicate,
    /// ∪/−/∪̂/−̂ operands are not union-compatible.
    NotUnionCompatible,
    /// ×/×̂ operand schemes share an attribute name.
    ProductAttributeClash,
    /// ρ/ρ̂ of a relation that has never been given a state: FINDSTATE
    /// returns ∅, but ∅ needs a scheme and none is known.
    RollbackOfStatelessRelation,
    /// A command other than `define_relation` names an unbound
    /// identifier.
    CommandOnUndefined,
    /// `define_relation` on an identifier that is already bound.
    AlreadyDefined,
    /// A `modify_state` expression produces a state kind (snapshot vs
    /// historical) incompatible with the relation's declared type.
    StateKindMismatch,
    /// An `evolve_scheme` change cannot apply to the relation's current
    /// scheme (unknown attribute, last attribute, domain mismatch, name
    /// clash, or no state to evolve).
    InvalidSchemeChange,
}

impl ErrorCode {
    /// The stable `E0xx` string for this code.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::UndefinedRelation => "E001",
            ErrorCode::SnapshotOperatorOnHistorical => "E002",
            ErrorCode::HistoricalOperatorOnSnapshot => "E003",
            ErrorCode::RollbackKindMismatch => "E004",
            ErrorCode::RollbackIntoNonRollback => "E005",
            ErrorCode::BadProjection => "E006",
            ErrorCode::IllTypedPredicate => "E007",
            ErrorCode::NotUnionCompatible => "E008",
            ErrorCode::ProductAttributeClash => "E009",
            ErrorCode::RollbackOfStatelessRelation => "E010",
            ErrorCode::CommandOnUndefined => "E020",
            ErrorCode::AlreadyDefined => "E021",
            ErrorCode::StateKindMismatch => "E022",
            ErrorCode::InvalidSchemeChange => "E023",
        }
    }

    /// All codes, in numeric order (used by the golden tests and the
    /// DESIGN.md catalogue check).
    pub const ALL: [ErrorCode; 14] = [
        ErrorCode::UndefinedRelation,
        ErrorCode::SnapshotOperatorOnHistorical,
        ErrorCode::HistoricalOperatorOnSnapshot,
        ErrorCode::RollbackKindMismatch,
        ErrorCode::RollbackIntoNonRollback,
        ErrorCode::BadProjection,
        ErrorCode::IllTypedPredicate,
        ErrorCode::NotUnionCompatible,
        ErrorCode::ProductAttributeClash,
        ErrorCode::RollbackOfStatelessRelation,
        ErrorCode::CommandOnUndefined,
        ErrorCode::AlreadyDefined,
        ErrorCode::StateKindMismatch,
        ErrorCode::InvalidSchemeChange,
    ];
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of the static checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The judgment that was violated.
    pub code: ErrorCode,
    /// Where in the source the offending construct starts (`0:0` when the
    /// sentence was built programmatically and carries no spans).
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a fix is evident.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic without a help line.
    pub fn new(code: ErrorCode, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span.is_known() {
            write!(f, "error[{}] at {}: {}", self.code, self.span, self.message)?;
        } else {
            write!(f, "error[{}]: {}", self.code, self.message)?;
        }
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in ErrorCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert!(c.code().starts_with('E'));
        }
        assert_eq!(ErrorCode::UndefinedRelation.code(), "E001");
        assert_eq!(ErrorCode::InvalidSchemeChange.code(), "E023");
    }

    #[test]
    fn display_includes_span_and_help() {
        let d = Diagnostic::new(
            ErrorCode::AlreadyDefined,
            Span::new(3, 7),
            "relation \"emp\" is already defined",
        )
        .with_help("pick a different identifier");
        let s = d.to_string();
        assert!(s.contains("error[E021] at 3:7"));
        assert!(s.contains("help: pick"));
        let u = Diagnostic::new(ErrorCode::AlreadyDefined, Span::unknown(), "x");
        assert!(!u.to_string().contains("at "));
    }
}
