//! The checker's transaction-indexed view of the database.
//!
//! A sentence always evaluates from the EMPTY database (§3.6), and every
//! successful mutating command commits at the next transaction number.
//! Walking the sentence in order therefore lets the checker know, for
//! each relation and *exactly*, the transaction number and (when
//! inferable) the scheme of every version it will hold — which makes
//! FINDSTATE itself statically computable, including the boundary rule
//! that a rollback to a time before the first version yields ∅ with the
//! earliest known scheme (DESIGN.md: "types force a scheme onto ∅").

use std::collections::BTreeMap;

use txtime_core::{Database, RelationType, StateValue, TransactionNumber, TxSpec};
use txtime_snapshot::Schema;

/// What static FINDSTATE resolves a rollback to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticState {
    /// A stored version exists at or before the requested transaction;
    /// its scheme, when statically known.
    Version(Option<Schema>),
    /// No version at or before the requested transaction, but the
    /// relation has later states: evaluation yields ∅ carrying the
    /// earliest version's scheme.
    EmptyWithForcedScheme(Option<Schema>),
    /// The relation has never been given a state: even ∅ has no scheme,
    /// and evaluation fails.
    NoStates,
}

/// What the checker knows about one defined relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationFacts {
    /// The declared type.
    pub rtype: RelationType,
    /// The versions the relation will hold, in commit order: the commit
    /// transaction number and the version's scheme when inferable.
    /// Mirrors [`txtime_core::Relation`]: snapshot/historical relations
    /// keep only the latest entry.
    pub versions: Vec<(TransactionNumber, Option<Schema>)>,
}

impl RelationFacts {
    /// A freshly defined relation: no versions yet.
    pub fn new(rtype: RelationType) -> RelationFacts {
        RelationFacts {
            rtype,
            versions: Vec::new(),
        }
    }

    /// The scheme of the current (latest) version, if any is known.
    pub fn current_schema(&self) -> Option<&Schema> {
        self.versions.last().and_then(|(_, s)| s.as_ref())
    }

    /// Whether the relation has any stored version.
    pub fn has_states(&self) -> bool {
        !self.versions.is_empty()
    }

    /// Records that a new version commits at `tx`, mirroring the
    /// replace/append dispatch of `modify_state`.
    pub fn push_version(&mut self, tx: TransactionNumber, schema: Option<Schema>) {
        if !self.rtype.keeps_history() {
            self.versions.clear();
        }
        self.versions.push((tx, schema));
    }

    /// Static FINDSTATE: the state a rollback at `tx` resolves to
    /// (the largest version transaction ≤ `tx`, the forced-∅ boundary,
    /// or the no-states failure).
    pub fn find_state(&self, tx: TransactionNumber) -> StaticState {
        if self.versions.is_empty() {
            return StaticState::NoStates;
        }
        let idx = self.versions.partition_point(|(t, _)| *t <= tx);
        match idx.checked_sub(1) {
            Some(i) => StaticState::Version(self.versions[i].1.clone()),
            None => StaticState::EmptyWithForcedScheme(self.versions[0].1.clone()),
        }
    }
}

/// The checker's static database state: the defined relations plus the
/// transaction clock, advanced command by command.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, RelationFacts>,
    /// The transaction clock: the number of the most recent committed
    /// transaction (0 for the empty database).
    pub tx: TransactionNumber,
}

impl Catalog {
    /// The empty database: no relations, clock at 0. This is where every
    /// sentence starts (§3.6).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// A catalog matching an already-materialized database, for checking
    /// commands that resume from it (the REPL, `Sentence::resume`).
    pub fn from_database(db: &Database) -> Catalog {
        let mut relations = BTreeMap::new();
        for (name, rel) in db.state.iter() {
            let versions = rel
                .versions()
                .iter()
                .map(|v| {
                    let schema = match &v.state {
                        StateValue::Snapshot(s) => s.schema().clone(),
                        StateValue::Historical(h) => h.schema().clone(),
                    };
                    (v.tx, Some(schema))
                })
                .collect();
            relations.insert(
                name.clone(),
                RelationFacts {
                    rtype: rel.rtype(),
                    versions,
                },
            );
        }
        Catalog {
            relations,
            tx: db.tx,
        }
    }

    /// Looks up a relation's facts.
    pub fn get(&self, name: &str) -> Option<&RelationFacts> {
        self.relations.get(name)
    }

    /// Whether `name` is a defined relation.
    pub fn is_defined(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// The defined relation names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Binds a freshly defined relation.
    pub fn define(&mut self, name: impl Into<String>, rtype: RelationType) {
        self.relations
            .insert(name.into(), RelationFacts::new(rtype));
    }

    /// Removes a binding (`delete_relation`).
    pub fn undefine(&mut self, name: &str) {
        self.relations.remove(name);
    }

    /// Mutable access for recording new versions.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut RelationFacts> {
        self.relations.get_mut(name)
    }

    /// Resolves the transaction number a `TxSpec` denotes under the
    /// current clock (∞ ↦ the clock's value).
    pub fn resolve_tx(&self, spec: TxSpec) -> TransactionNumber {
        match spec {
            TxSpec::Current => self.tx,
            TxSpec::At(n) => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, Expr, Sentence};
    use txtime_snapshot::{DomainType, SnapshotState, Value};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|&n| (n, DomainType::Int))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn static_findstate_mirrors_runtime_rules() {
        let mut f = RelationFacts::new(RelationType::Rollback);
        assert_eq!(f.find_state(TransactionNumber(5)), StaticState::NoStates);
        f.push_version(TransactionNumber(2), Some(schema(&["x"])));
        f.push_version(TransactionNumber(4), Some(schema(&["y"])));
        assert_eq!(
            f.find_state(TransactionNumber(1)),
            StaticState::EmptyWithForcedScheme(Some(schema(&["x"])))
        );
        assert_eq!(
            f.find_state(TransactionNumber(2)),
            StaticState::Version(Some(schema(&["x"])))
        );
        assert_eq!(
            f.find_state(TransactionNumber(3)),
            StaticState::Version(Some(schema(&["x"])))
        );
        assert_eq!(
            f.find_state(TransactionNumber(99)),
            StaticState::Version(Some(schema(&["y"])))
        );
    }

    #[test]
    fn snapshot_relations_keep_single_version() {
        let mut f = RelationFacts::new(RelationType::Snapshot);
        f.push_version(TransactionNumber(2), Some(schema(&["x"])));
        f.push_version(TransactionNumber(3), Some(schema(&["y"])));
        assert_eq!(f.versions.len(), 1);
        assert_eq!(f.current_schema(), Some(&schema(&["y"])));
    }

    #[test]
    fn from_database_matches_evaluation() {
        let s = SnapshotState::from_rows(schema(&["x"]), vec![vec![Value::Int(1)]]).unwrap();
        let db = Sentence::new(vec![
            Command::define_relation("r", RelationType::Rollback),
            Command::modify_state("r", Expr::snapshot_const(s.clone())),
            Command::modify_state("r", Expr::snapshot_const(s)),
        ])
        .unwrap()
        .eval()
        .unwrap();
        let cat = Catalog::from_database(&db);
        assert_eq!(cat.tx, TransactionNumber(3));
        let f = cat.get("r").unwrap();
        assert_eq!(f.rtype, RelationType::Rollback);
        assert_eq!(
            f.versions.iter().map(|(t, _)| t.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(f.current_schema(), Some(&schema(&["x"])));
    }
}
