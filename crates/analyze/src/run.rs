//! Checked evaluation: run the static checker before `Sentence::eval`.
//!
//! [`SentenceExt::run`] is the front door for evaluating a sentence in
//! anger: it rejects statically ill-formed sentences with diagnostics
//! before any state is materialized, and only then hands off to the
//! dynamic semantics. [`SentenceExt::run_unchecked`] is the explicit
//! opt-out for callers that want the paper's raw total semantics.

use std::fmt;

use txtime_core::{CoreError, Database, Sentence, SentenceSpans};

use crate::check::check_sentence;
use crate::diagnostic::Diagnostic;

/// Why a checked run did not produce a database.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The static checker rejected the sentence before evaluation.
    Rejected(Vec<Diagnostic>),
    /// The checker accepted the sentence but evaluation failed. The
    /// soundness property test pins this arm as unreachable for
    /// checker-accepted sentences; it exists because `eval` is typed as
    /// fallible.
    Eval(CoreError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Rejected(diags) => {
                writeln!(f, "sentence rejected by the static checker:")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            RunError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<CoreError> for RunError {
    fn from(e: CoreError) -> RunError {
        RunError::Eval(e)
    }
}

/// Checked evaluation entry points for [`Sentence`].
pub trait SentenceExt {
    /// Statically checks the sentence, then evaluates it. Programmatic
    /// callers have no source spans; diagnostics carry `0:0`.
    fn run(&self) -> Result<Database, RunError>;

    /// Like [`run`](SentenceExt::run), with parser spans so diagnostics
    /// point into the source text.
    fn run_with_spans(&self, spans: &SentenceSpans) -> Result<Database, RunError>;

    /// Evaluates without checking — the explicit opt-out, exposing the
    /// raw dynamic semantics (failed commands are still errors, not
    /// no-ops; this is `Sentence::eval` by another name).
    fn run_unchecked(&self) -> Result<Database, CoreError>;
}

impl SentenceExt for Sentence {
    fn run(&self) -> Result<Database, RunError> {
        run_inner(self, None)
    }

    fn run_with_spans(&self, spans: &SentenceSpans) -> Result<Database, RunError> {
        run_inner(self, Some(spans))
    }

    fn run_unchecked(&self) -> Result<Database, CoreError> {
        self.eval()
    }
}

fn run_inner(sentence: &Sentence, spans: Option<&SentenceSpans>) -> Result<Database, RunError> {
    let diags = check_sentence(sentence, spans);
    if !diags.is_empty() {
        return Err(RunError::Rejected(diags));
    }
    Ok(sentence.eval()?)
}
