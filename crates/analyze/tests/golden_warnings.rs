//! Golden tests: one warned sentence per `W0xx` code, asserting the
//! reported code and the exact source span the parser threaded through —
//! the W-series mirror of `golden_diagnostics.rs`.
//!
//! Column arithmetic: `display(` occupies columns 1–8, so a top-level
//! expression starts at column 9; `modify_state(r, ` puts its expression
//! at column 17 (for a one-character relation name); command keywords
//! start at column 1.

use txtime_analyze::{lint_sentence, LintReport, WarnCode, Warning};
use txtime_core::Span;
use txtime_parser::parse_sentence_spanned;

fn report(src: &str) -> LintReport {
    let (sentence, spans) = parse_sentence_spanned(src).expect("golden source parses");
    let report = lint_sentence(&sentence, Some(&spans));
    assert!(
        report.diagnostics.is_empty(),
        "golden source must check clean, got {:#?}",
        report.diagnostics
    );
    report
}

/// Asserts the source yields exactly one warning with the given code and
/// span.
fn expect_one(src: &str, code: WarnCode, line: usize, col: usize) -> Warning {
    let ws = report(src).warnings;
    assert_eq!(
        ws.len(),
        1,
        "expected exactly one warning for {code:?}, got {ws:#?}"
    );
    let w = ws.into_iter().next().unwrap();
    assert_eq!(w.code, code, "wrong code: {w}");
    assert_eq!(w.span, Span::new(line, col), "wrong span: {w}");
    w
}

/// Two-state setup whose current version holds sal ∈ {50, 200}: selects
/// over it are neither vacuous nor total unless the predicate makes
/// them so.
const EMP: &str = "define_relation(emp, rollback);\n\
    modify_state(emp, {(name: str, sal: int): (\"alice\", 50), (\"bob\", 200)});\n";

#[test]
fn w001_unsatisfiable_select() {
    // Contradictory conjunction: no sal satisfies both bounds.
    expect_one(
        &format!("{EMP}display(select[sal > 100 and sal < 60](rho(emp, inf)));"),
        WarnCode::UnsatisfiableSelect,
        3,
        9,
    );
}

#[test]
fn w001_unsatisfiable_against_value_range() {
    // Satisfiable in isolation, unsatisfiable against the stats
    // catalog's range for sal ([50, 200]).
    expect_one(
        &format!("{EMP}display(select[sal > 300](rho(emp, inf)));"),
        WarnCode::UnsatisfiableSelect,
        3,
        9,
    );
}

#[test]
fn w002_tautological_select() {
    // Every stored sal is ≥ 50 > 10: provably total.
    expect_one(
        &format!("{EMP}display(select[sal > 10](rho(emp, inf)));"),
        WarnCode::TautologicalSelect,
        3,
        9,
    );
}

#[test]
fn w003_empty_operand() {
    // The ∅ constant is the right operand of the union, at column 32.
    expect_one(
        "display({(x: int): (1), (2)} union {(x: int): });",
        WarnCode::EmptyOperand,
        1,
        36,
    );
}

#[test]
fn w004_self_difference() {
    // Infix nodes anchor at the operator: `minus` starts at column 23.
    expect_one(
        &format!("{EMP}display(rho(emp, inf) minus rho(emp, inf));"),
        WarnCode::SelfDifference,
        3,
        23,
    );
}

#[test]
fn w005_identity_projection() {
    // The projection lists the full scheme in order.
    expect_one(
        &format!("{EMP}display(project[name, sal](rho(emp, inf)));"),
        WarnCode::IdentityProjection,
        3,
        9,
    );
}

#[test]
fn w006_rollback_before_first_state() {
    // define commits at tx 1, the first version at tx 2: ρ(emp, 1) is
    // the forced-∅ FINDSTATE boundary. At the display's root, W006
    // subsumes the generic W008.
    expect_one(
        &format!("{EMP}display(rho(emp, 1));"),
        WarnCode::RollbackBeforeFirstState,
        3,
        9,
    );
}

#[test]
fn w007_rollback_past_clock() {
    // The clock stands at 2; tx 99 resolves to the current version.
    expect_one(
        &format!("{EMP}display(select[sal > 60](rho(emp, 99)));"),
        WarnCode::RollbackPastClock,
        3,
        26,
    );
}

#[test]
fn w008_dead_display() {
    // ∅ is derived (subtracting from an empty left operand), not claimed
    // at the root by any other warning, so only W008 fires — anchored at
    // the root `minus` (column 22).
    expect_one(
        "display({(x: int): } minus {(x: int): (1), (2)});",
        WarnCode::DeadDisplay,
        1,
        22,
    );
}

#[test]
fn w020_dead_write_overwritten() {
    // Snapshot relations keep no history: the first write is gone
    // before anything reads it. The warning anchors at the dead write.
    expect_one(
        "define_relation(s, snapshot);\n\
         modify_state(s, {(x: int): (1)});\n\
         modify_state(s, {(x: int): (2)});\n\
         display(rho(s, inf));",
        WarnCode::DeadWrite,
        2,
        1,
    );
}

#[test]
fn w021_dead_relation() {
    // Defined, written, deleted — never read. The warning anchors at
    // the delete that proves the lifetime dead.
    expect_one(
        "define_relation(tmp, rollback);\n\
         modify_state(tmp, {(x: int): (1)});\n\
         delete_relation(tmp);",
        WarnCode::DeadRelation,
        3,
        1,
    );
}

#[test]
fn w022_stale_view() {
    // Displayed twice, the query registers in the view memo; evolving
    // its source invalidates the cached answer.
    expect_one(
        &format!(
            "{EMP}display(select[sal > 60](rho(emp, inf)));\n\
             display(select[sal > 60](rho(emp, inf)));\n\
             evolve_scheme(emp, add dept: str default \"none\");"
        ),
        WarnCode::StaleView,
        5,
        1,
    );
}

/// The W006 display is *not* additionally W008: the rollback warning
/// already explains the emptiness at the root.
#[test]
fn root_cause_suppresses_dead_display() {
    let ws = report(&format!("{EMP}display(rho(emp, 1));")).warnings;
    assert_eq!(ws.len(), 1, "{ws:#?}");
    assert_eq!(ws[0].code, WarnCode::RollbackBeforeFirstState);
}

/// A CSE-shared subexpression is warned once, not once per occurrence.
#[test]
fn shared_subexpressions_warn_once() {
    let src = format!(
        "{EMP}display(select[sal > 300](rho(emp, inf)) union select[sal > 300](rho(emp, inf)));"
    );
    let ws = report(&src).warnings;
    let w001s = ws
        .iter()
        .filter(|w| w.code == WarnCode::UnsatisfiableSelect)
        .count();
    assert_eq!(w001s, 1, "{ws:#?}");
}

/// Every W-code has a golden case above; this test fails when a new code
/// is added without one.
#[test]
fn every_code_has_a_golden_case() {
    // One test per code keyed by code string; keep in sync with the
    // cases above.
    let covered = [
        "W001", "W002", "W003", "W004", "W005", "W006", "W007", "W008", "W020", "W021", "W022",
    ];
    assert_eq!(WarnCode::ALL.len(), covered.len());
    for code in WarnCode::ALL {
        assert!(
            covered.contains(&code.code()),
            "no golden case covers {code:?}"
        );
    }
}
