//! The checker's soundness property: a sentence the static checker
//! accepts never raises a dynamic type error during evaluation.
//!
//! The generator deliberately produces a mix of well- and ill-formed
//! sentences: it starts from the valid define/modify sequences of
//! `txtime_core::generate`, then (a) corrupts the command list (dropped
//! definitions, flipped relation types, identifiers renamed to an unbound
//! name, duplicated definitions) and (b) appends `display` commands over
//! random expressions that freely mix compatible and incompatible
//! schemes, bad projections, ill-typed predicates, and rollbacks to
//! arbitrary transaction numbers. Soundness is one-directional: whenever
//! `check_sentence` reports nothing, `Sentence::eval` must succeed.

use proptest::prelude::*;
use txtime_snapshot::rng::rngs::StdRng;
use txtime_snapshot::rng::{Rng, SeedableRng};

use txtime_analyze::check_sentence;
use txtime_core::generate::{random_commands, CmdGenConfig};
use txtime_core::{Command, Expr, RelationType, Sentence, TransactionNumber, TxSpec};
use txtime_snapshot::generate::GenConfig;
use txtime_snapshot::{DomainType, Predicate, Schema, SnapshotState, Value};

fn base_schema() -> Schema {
    Schema::new(vec![("a0", DomainType::Int), ("a1", DomainType::Str)]).unwrap()
}

fn gen_cfg() -> CmdGenConfig {
    CmdGenConfig {
        values: GenConfig {
            arity: 2,
            cardinality: 6,
            int_range: 10,
            str_pool: 4,
        },
        relations: vec!["r0".into(), "r1".into(), "r2".into()],
        churn: 0.4,
    }
}

/// A random expression over the generated relations: sometimes legal,
/// sometimes not (unknown relations, incompatible schemes, bad attribute
/// lists, ill-typed predicates, rollbacks to arbitrary times).
fn random_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_range(0..3) == 0 {
        return match rng.gen_range(0..4) {
            0 => Expr::snapshot_const(SnapshotState::empty(base_schema())),
            1 => Expr::snapshot_const(SnapshotState::empty(
                Schema::new(vec![("b0", DomainType::Int)]).unwrap(),
            )),
            2 => {
                let name = ["r0", "r1", "r2", "ghost"][rng.gen_range(0..4usize)];
                Expr::rollback(name, TxSpec::Current)
            }
            _ => {
                let name = ["r0", "r1", "r2"][rng.gen_range(0..3usize)];
                let tx = TransactionNumber(rng.gen_range(0..40));
                Expr::rollback(name, TxSpec::At(tx))
            }
        };
    }
    let a = random_expr(rng, depth - 1);
    match rng.gen_range(0..6) {
        0 => a.union(random_expr(rng, depth - 1)),
        1 => a.difference(random_expr(rng, depth - 1)),
        2 => a.product(random_expr(rng, depth - 1)),
        3 => {
            let attrs: Vec<String> = match rng.gen_range(0..4) {
                0 => vec!["a0".into()],
                1 => vec!["a1".into(), "a0".into()],
                2 => vec!["zz".into()],
                _ => vec!["a0".into(), "a0".into()],
            };
            a.project(attrs)
        }
        4 => {
            let pred = match rng.gen_range(0..3) {
                0 => Predicate::gt_const("a0", Value::Int(3)),
                1 => Predicate::gt_const("a1", Value::Int(3)),
                _ => Predicate::gt_const("zz", Value::Int(3)),
            };
            a.select(pred)
        }
        _ => a,
    }
}

/// Corrupts a valid command list so some runs are ill-formed.
fn corrupt(rng: &mut StdRng, cmds: &mut Vec<Command>) {
    for _ in 0..rng.gen_range(0..3usize) {
        if cmds.is_empty() {
            break;
        }
        let i = rng.gen_range(0..cmds.len());
        match rng.gen_range(0..4) {
            0 => {
                cmds.remove(i);
            }
            1 => {
                if let Command::DefineRelation(name, _) = &cmds[i] {
                    let rt = [
                        RelationType::Snapshot,
                        RelationType::Historical,
                        RelationType::Temporal,
                    ][rng.gen_range(0..3usize)];
                    cmds[i] = Command::define_relation(name.clone(), rt);
                }
            }
            2 => {
                if let Command::ModifyState(_, e) = &cmds[i] {
                    cmds[i] = Command::ModifyState("ghost".into(), e.clone());
                }
            }
            _ => {
                let c = cmds[i].clone();
                cmds.insert(i, c);
            }
        }
    }
}

fn arb_sentence() -> impl Strategy<Value = Sentence> {
    (any::<u64>(), 1usize..15).prop_map(|(seed, len)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cmds = random_commands(&mut rng, &base_schema(), &gen_cfg(), len);
        corrupt(&mut rng, &mut cmds);
        for _ in 0..rng.gen_range(0..4usize) {
            cmds.push(Command::display(random_expr(&mut rng, 2)));
        }
        if cmds.is_empty() {
            cmds.push(Command::define_relation("r0", RelationType::Rollback));
        }
        Sentence::new(cmds).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Checker-accepted sentences evaluate without any dynamic error.
    #[test]
    fn accepted_sentences_evaluate_cleanly(s in arb_sentence()) {
        let diags = check_sentence(&s, None);
        if diags.is_empty() {
            prop_assert!(
                s.eval().is_ok(),
                "checker accepted but eval failed: {:?}",
                s.eval().err()
            );
        }
    }

    /// The valid generator family (define + modify over rollback
    /// relations) is always accepted — the checker has no false alarms on
    /// sentences known to replay cleanly.
    #[test]
    fn valid_generator_output_is_accepted(seed in any::<u64>(), len in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds = random_commands(&mut rng, &base_schema(), &gen_cfg(), len);
        let s = Sentence::new(cmds).unwrap();
        let diags = check_sentence(&s, None);
        prop_assert!(diags.is_empty(), "false alarm: {:?}", diags);
        prop_assert!(s.eval().is_ok());
    }
}
