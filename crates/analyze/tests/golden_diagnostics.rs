//! Golden tests: one ill-typed sentence per `E0xx` code, asserting the
//! reported code and the exact source span the parser threaded through.
//!
//! Column arithmetic: `display(` occupies columns 1–8, so a top-level
//! expression starts at column 9; command keywords start at column 1.

use txtime_analyze::{check_sentence, Diagnostic, ErrorCode};
use txtime_core::Span;
use txtime_parser::parse_sentence_spanned;

fn diags(src: &str) -> Vec<Diagnostic> {
    let (sentence, spans) = parse_sentence_spanned(src).expect("golden source parses");
    check_sentence(&sentence, Some(&spans))
}

/// Asserts the source yields exactly one diagnostic with the given code
/// and span.
fn expect_one(src: &str, code: ErrorCode, line: usize, col: usize) -> Diagnostic {
    let ds = diags(src);
    assert_eq!(
        ds.len(),
        1,
        "expected exactly one diagnostic for {code:?}, got {ds:#?}"
    );
    let d = ds.into_iter().next().unwrap();
    assert_eq!(d.code, code, "wrong code: {d}");
    assert_eq!(d.span, Span::new(line, col), "wrong span: {d}");
    d
}

#[test]
fn e001_undefined_relation() {
    expect_one(
        "display(rho(ghost, inf));",
        ErrorCode::UndefinedRelation,
        1,
        9,
    );
}

#[test]
fn e002_snapshot_operator_on_historical() {
    // The diagnostic anchors at the offending *operand* (the historical
    // constant at column 31), not the operator.
    expect_one(
        r#"display({(x: int): (1)} union historical {(x: int): (1) @ {[0, 5)}});"#,
        ErrorCode::SnapshotOperatorOnHistorical,
        1,
        31,
    );
}

#[test]
fn e003_historical_operator_on_snapshot() {
    expect_one(
        r#"display({(x: int): (1)} hunion historical {(x: int): (1) @ {[0, 5)}});"#,
        ErrorCode::HistoricalOperatorOnSnapshot,
        1,
        9,
    );
}

#[test]
fn e004_rollback_kind_mismatch() {
    expect_one(
        "define_relation(h, historical);\ndisplay(rho(h, inf));",
        ErrorCode::RollbackKindMismatch,
        2,
        9,
    );
    expect_one(
        "define_relation(r, rollback);\nmodify_state(r, {(x: int): (1)});\ndisplay(hrho(r, inf));",
        ErrorCode::RollbackKindMismatch,
        3,
        9,
    );
}

#[test]
fn e005_rollback_into_non_rollback() {
    expect_one(
        "define_relation(s, snapshot);\nmodify_state(s, {(x: int): (1)});\ndisplay(rho(s, 1));",
        ErrorCode::RollbackIntoNonRollback,
        3,
        9,
    );
}

#[test]
fn e006_bad_projection() {
    expect_one(
        "display(project[y]({(x: int): (1)}));",
        ErrorCode::BadProjection,
        1,
        9,
    );
    // Duplicated attribute names are also rejected.
    expect_one(
        "display(project[x, x]({(x: int): (1)}));",
        ErrorCode::BadProjection,
        1,
        9,
    );
    // Expression spans thread through commands too: `modify_state(r, `
    // occupies columns 1–16, so the expression starts at column 17.
    expect_one(
        "define_relation(r, snapshot);\nmodify_state(r, project[y]({(x: int): (1)}));",
        ErrorCode::BadProjection,
        2,
        17,
    );
}

#[test]
fn e007_ill_typed_predicate() {
    // Comparing the int attribute to a string constant.
    expect_one(
        r#"display(select[x = "a"]({(x: int): (1)}));"#,
        ErrorCode::IllTypedPredicate,
        1,
        9,
    );
    // Unknown attribute in the predicate.
    expect_one(
        "display(select[zz = 1]({(x: int): (1)}));",
        ErrorCode::IllTypedPredicate,
        1,
        9,
    );
}

#[test]
fn e008_not_union_compatible() {
    expect_one(
        "display({(x: int): (1)} union {(y: int): (2)});",
        ErrorCode::NotUnionCompatible,
        1,
        25,
    );
}

#[test]
fn e009_product_attribute_clash() {
    expect_one(
        "display({(x: int): (1)} times {(x: int): (2)});",
        ErrorCode::ProductAttributeClash,
        1,
        25,
    );
}

#[test]
fn e010_rollback_of_stateless_relation() {
    expect_one(
        "define_relation(r, rollback);\ndisplay(rho(r, inf));",
        ErrorCode::RollbackOfStatelessRelation,
        2,
        9,
    );
}

#[test]
fn e020_command_on_undefined() {
    expect_one(
        "delete_relation(ghost);",
        ErrorCode::CommandOnUndefined,
        1,
        1,
    );
    expect_one(
        "modify_state(ghost, {(x: int): (1)});",
        ErrorCode::CommandOnUndefined,
        1,
        1,
    );
}

#[test]
fn e021_already_defined() {
    expect_one(
        "define_relation(r, rollback);\ndefine_relation(r, snapshot);",
        ErrorCode::AlreadyDefined,
        2,
        1,
    );
}

#[test]
fn e022_state_kind_mismatch() {
    expect_one(
        "define_relation(h, historical);\nmodify_state(h, {(x: int): (1)});",
        ErrorCode::StateKindMismatch,
        2,
        1,
    );
}

#[test]
fn e023_invalid_scheme_change() {
    // Dropping an attribute the scheme does not have.
    expect_one(
        "define_relation(r, rollback);\nmodify_state(r, {(x: int): (1)});\nevolve_scheme(r, drop ghost);",
        ErrorCode::InvalidSchemeChange,
        3,
        1,
    );
    // Dropping the last attribute.
    expect_one(
        "define_relation(r, rollback);\nmodify_state(r, {(x: int): (1)});\nevolve_scheme(r, drop x);",
        ErrorCode::InvalidSchemeChange,
        3,
        1,
    );
    // Evolving a relation that has no state yet.
    expect_one(
        "define_relation(r, rollback);\nevolve_scheme(r, drop x);",
        ErrorCode::InvalidSchemeChange,
        2,
        1,
    );
}

#[test]
fn every_code_has_a_golden_case() {
    // The cases above cover the whole published catalogue; this test
    // fails when a new code is added without a golden sentence.
    assert_eq!(ErrorCode::ALL.len(), 14);
}

/// FINDSTATE boundary: rolling back to a transaction before the first
/// version is *legal* — ∅ with the earliest version's scheme, not an
/// error. The checker must accept it and evaluation must agree.
#[test]
fn findstate_boundary_is_accepted() {
    // define commits at tx 1, modify_state at tx 2, so rho(r, 1) reads
    // before the first version.
    let src =
        "define_relation(r, rollback);\nmodify_state(r, {(x: int): (7)});\ndisplay(rho(r, 1));";
    let (sentence, spans) = parse_sentence_spanned(src).unwrap();
    assert!(check_sentence(&sentence, Some(&spans)).is_empty());
    let db = sentence.eval().expect("boundary rollback evaluates");
    assert_eq!(db.tx.0, 2);
}

/// A rejected command is a no-op for the checker's state, so one mistake
/// yields one diagnostic, not a cascade.
#[test]
fn failed_commands_do_not_cascade() {
    // The second define fails (E021) and commits nothing; the later
    // modify_state still targets the *first* definition and checks clean.
    let src = "define_relation(r, rollback);\ndefine_relation(r, historical);\nmodify_state(r, {(x: int): (1)});\ndisplay(rho(r, inf));";
    let ds = diags(src);
    assert_eq!(ds.len(), 1, "{ds:#?}");
    assert_eq!(ds[0].code, ErrorCode::AlreadyDefined);
}

/// Without spans (programmatic sentences), diagnostics carry the unknown
/// span instead of fabricating positions.
#[test]
fn programmatic_sentences_get_unknown_spans() {
    use txtime_core::{Command, Expr, TxSpec};
    let s = txtime_core::Sentence::new(vec![Command::display(Expr::rollback(
        "ghost",
        TxSpec::Current,
    ))])
    .unwrap();
    let ds = check_sentence(&s, None);
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].code, ErrorCode::UndefinedRelation);
    assert!(!ds[0].span.is_known());
}
