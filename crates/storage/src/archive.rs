//! Archival of old versions — the paper's "migrate rollback relations to
//! tape".
//!
//! §3.1 assumes relations live forever but notes "the database
//! administrator will have additional facilities to migrate rollback
//! relations to tape". [`Engine::archive_before`] is that facility: it
//! writes the versions older than a cutoff to a textual archive script
//! (replayable through the parser into a fresh database) and truncates
//! the live store, after which rollbacks older than the cutoff report
//! `EvalError::EmptyRelation`-style misses (`state_at` → `None`) instead
//! of answering.

use std::io::Write;
use std::path::{Path, PathBuf};

use txtime_core::{CoreError, StateValue, TransactionNumber};
use txtime_parser::print::{print_historical_state, print_snapshot_state};

use crate::engine::Engine;

/// What an archive operation did.
#[derive(Debug)]
pub struct ArchiveReport {
    /// Versions written out and removed from the live store.
    pub archived: usize,
    /// The archive script, if a path was given.
    pub file: Option<PathBuf>,
}

impl Engine {
    /// Archives every version of `ident` strictly older than the version
    /// current at `before`: the archived versions are appended to the
    /// script at `path` (if given) as replayable `modify_state` commands,
    /// then dropped from the live store.
    ///
    /// The version current at `before` itself is retained, so
    /// `ρ(ident, before)` still answers exactly as before; only strictly
    /// older rollbacks lose their targets.
    pub fn archive_before(
        &mut self,
        ident: &str,
        before: TransactionNumber,
        path: Option<&Path>,
    ) -> Result<ArchiveReport, CoreError> {
        let victims = self.versions_before(ident, before)?;
        if victims.is_empty() {
            return Ok(ArchiveReport {
                archived: 0,
                file: path.map(Path::to_path_buf),
            });
        }
        if let Some(path) = path {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| CoreError::SchemeChange(format!("cannot open archive: {e}")))?;
            for (state, tx) in &victims {
                write_archived_version(&mut file, ident, state, *tx)
                    .map_err(|e| CoreError::SchemeChange(format!("archive write failed: {e}")))?;
            }
        }
        let dropped = self.truncate_before(ident, before)?;
        debug_assert_eq!(dropped, victims.len());
        Ok(ArchiveReport {
            archived: dropped,
            file: path.map(Path::to_path_buf),
        })
    }
}

fn write_archived_version(
    out: &mut impl Write,
    ident: &str,
    state: &StateValue,
    tx: TransactionNumber,
) -> std::io::Result<()> {
    writeln!(out, "-- archived version of {ident} committed at tx {tx}")?;
    match state {
        StateValue::Snapshot(s) => {
            writeln!(out, "modify_state({ident}, {});", print_snapshot_state(s))
        }
        StateValue::Historical(h) => writeln!(
            out,
            "modify_state({ident}, historical {});",
            print_historical_state(h)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtime_core::{Command, Expr, RelationType, StateSource, TxSpec};
    use txtime_snapshot::{DomainType, Schema, SnapshotState, Value};

    use crate::backend::{BackendKind, CheckpointPolicy};

    fn snap(vals: &[i64]) -> SnapshotState {
        let schema = Schema::new(vec![("x", DomainType::Int)]).unwrap();
        SnapshotState::from_rows(schema, vals.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    fn engine(backend: BackendKind) -> Engine {
        let mut e = Engine::new(backend, CheckpointPolicy::every_k(2).unwrap());
        e.execute(&Command::define_relation("r", RelationType::Rollback))
            .unwrap();
        for v in 1..=6i64 {
            e.execute(&Command::modify_state(
                "r",
                Expr::snapshot_const(snap(&[v])),
            ))
            .unwrap();
        }
        e // versions at tx 2..=7
    }

    #[test]
    fn archive_preserves_cutoff_and_later_on_all_backends() {
        for backend in BackendKind::ALL {
            let mut e = engine(backend);
            let report = e.archive_before("r", TransactionNumber(5), None).unwrap();
            assert_eq!(report.archived, 3, "{backend}"); // tx 2, 3, 4

            // The floor version (tx 5) and everything later still answer.
            for tx in 5..=7 {
                let s = e
                    .resolve_rollback("r", TxSpec::At(TransactionNumber(tx)), false)
                    .unwrap_or_else(|err| panic!("{backend} at tx {tx}: {err}"));
                assert_eq!(s.into_snapshot().unwrap(), snap(&[tx as i64 - 1]));
            }
            // Strictly older targets now miss.
            for tx in 2..5 {
                let r = e.resolve_rollback("r", TxSpec::At(TransactionNumber(tx)), false);
                if let Ok(s) = r {
                    assert!(
                        s.is_empty(),
                        "{backend} at tx {tx} returned data after archival"
                    )
                }
            }
            assert_eq!(e.version_count("r"), Some(3));
        }
    }

    #[test]
    fn interpolated_cutoff_keeps_floor_version() {
        // Cutoff between commits: the floor version must survive.
        let mut e = engine(BackendKind::FullCopy);
        // No commit at tx 10; floor of 10 is tx 7 (the last version).
        let report = e.archive_before("r", TransactionNumber(10), None).unwrap();
        assert_eq!(report.archived, 5);
        assert_eq!(e.version_count("r"), Some(1));
        assert_eq!(
            e.resolve_rollback("r", TxSpec::Current, false)
                .unwrap()
                .into_snapshot()
                .unwrap(),
            snap(&[6])
        );
    }

    #[test]
    fn archive_script_is_replayable() {
        let dir = std::env::temp_dir().join("txtime-archive-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("arch-{}.txq", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut e = engine(BackendKind::ForwardDelta);
        let report = e
            .archive_before("r", TransactionNumber(5), Some(&path))
            .unwrap();
        assert_eq!(report.archived, 3);

        // The archive is a valid script: prepend a define and replay it.
        let text = format!(
            "define_relation(r, rollback);\n{}",
            std::fs::read_to_string(&path).unwrap()
        );
        let db = txtime_parser::parse_sentence(&text)
            .unwrap()
            .eval()
            .unwrap();
        let rel = db.state.lookup("r").unwrap();
        assert_eq!(rel.versions().len(), 3);
        assert_eq!(rel.versions()[0].state.as_snapshot().unwrap(), &snap(&[1]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn archive_before_first_version_is_a_noop() {
        let mut e = engine(BackendKind::ReverseDelta);
        let report = e.archive_before("r", TransactionNumber(1), None).unwrap();
        assert_eq!(report.archived, 0);
        assert_eq!(e.version_count("r"), Some(6));
    }

    #[test]
    fn archive_on_snapshot_relation_is_a_noop() {
        let mut e = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        e.execute(&Command::define_relation("s", RelationType::Snapshot))
            .unwrap();
        e.execute(&Command::modify_state(
            "s",
            Expr::snapshot_const(snap(&[1])),
        ))
        .unwrap();
        let report = e.archive_before("s", TransactionNumber(99), None).unwrap();
        assert_eq!(report.archived, 0);
        assert!(e.resolve_rollback("s", TxSpec::Current, false).is_ok());
    }

    #[test]
    fn archive_unknown_relation_errors() {
        let mut e = Engine::new(BackendKind::FullCopy, CheckpointPolicy::Never);
        assert!(e
            .archive_before("ghost", TransactionNumber(1), None)
            .is_err());
    }
}
