//! The write-ahead log: a textual journal of mutating commands.
//!
//! The log format is the language's own surface syntax, one command per
//! line (the pretty-printer escapes newlines inside string literals, so a
//! command is always a single line), prefixed by an FNV-1a checksum of
//! the command text:
//!
//! ```text
//! a63bc9b2e1ef3c04 define_relation(emp, rollback);
//! 4c8f02d19a77be5d modify_state(emp, {(name: str): ("alice")});
//! ```
//!
//! Using the surface syntax as the journal format means recovery is
//! *replay*: parse each line and re-execute it. Correctness then follows
//! from the determinism of the semantics — the same command sequence from
//! the empty database yields the same database (§3.6).

use std::io::{BufRead, Write};

use txtime_core::Command;
use txtime_parser::print::print_command;

/// 64-bit FNV-1a, used as a line checksum (corruption detection, not
/// cryptographic integrity).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Appends one command to the journal.
pub fn append_command(out: &mut impl Write, cmd: &Command) -> std::io::Result<()> {
    let text = format!("{};", print_command(cmd));
    writeln!(out, "{:016x} {}", fnv1a(text.as_bytes()), text)
}

/// Appends a group of commands as one contiguous write: every line is
/// formatted into a single buffer first and handed to the sink with one
/// `write_all`, so a group commit pays one system call — and, at the
/// caller's choosing, one fsync — for the whole batch. The journal
/// contents are byte-identical to appending the commands one at a time.
pub fn append_commands<'a>(
    out: &mut impl Write,
    cmds: impl IntoIterator<Item = &'a Command>,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    for cmd in cmds {
        append_command(&mut buf, cmd)?;
    }
    out.write_all(&buf)
}

/// A recovered journal entry or the reason it was rejected.
#[derive(Debug)]
pub enum WalEntry {
    /// A verified, parsed command.
    Command(Command),
    /// A line whose checksum or syntax was invalid (with the 1-based line
    /// number and a description).
    Corrupt {
        /// 1-based line number in the journal.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

/// Classifies one raw journal line (terminator included, if present):
/// `Ok(None)` = blank, `Ok(Some(cmd))` = verified command, `Err(reason)`
/// = corrupt.
fn classify_line(raw: &[u8]) -> Result<Option<Command>, String> {
    let Ok(line) = std::str::from_utf8(raw) else {
        return Err("invalid UTF-8".into());
    };
    let line = line.trim_end_matches('\n');
    if line.trim().is_empty() {
        return Ok(None);
    }
    let Some((sum, text)) = line.split_once(' ') else {
        return Err("missing checksum field".into());
    };
    let Ok(expected) = u64::from_str_radix(sum, 16) else {
        return Err("malformed checksum".into());
    };
    if fnv1a(text.as_bytes()) != expected {
        return Err("checksum mismatch".into());
    }
    match txtime_parser::parse_command(text.trim_end_matches(';')) {
        Ok(cmd) => Ok(Some(cmd)),
        Err(e) => Err(format!("parse error: {e}")),
    }
}

/// Reads a journal, yielding verified commands and flagging corrupt
/// lines. Blank lines are ignored; bytes that are not valid UTF-8 (torn
/// or overwritten sectors) flag the line as corrupt rather than aborting
/// recovery.
pub fn read_journal(mut input: impl BufRead) -> std::io::Result<Vec<WalEntry>> {
    let mut out = Vec::new();
    let mut lineno = 0;
    let mut raw = Vec::new();
    loop {
        raw.clear();
        if input.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        lineno += 1;
        match classify_line(&raw) {
            Ok(None) => {}
            Ok(Some(cmd)) => out.push(WalEntry::Command(cmd)),
            Err(reason) => out.push(WalEntry::Corrupt {
                line: lineno,
                reason,
            }),
        }
    }
    Ok(out)
}

/// Truncates the journal at `path` to its verified prefix: every byte
/// from the first corrupt line on is dropped, and a verified final line
/// missing its `\n` terminator (a torn write that stopped a byte short)
/// is terminated in place. Returns the number of bytes dropped.
///
/// This is the repair that makes *recover, then append* safe. Recovery's
/// prefix discipline replays nothing after the first corrupt line, so
/// any process that reopens a torn journal in append mode would write
/// new — acked, fsynced — commits after dead bytes; the next recovery
/// would then discard them all. Truncating to the replayed prefix first
/// means appends always extend exactly the history that was recovered.
pub fn truncate_to_verified_prefix(path: impl AsRef<std::path::Path>) -> std::io::Result<u64> {
    use std::io::{Seek, SeekFrom};
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path.as_ref())?;
    let total = file.metadata()?.len();
    let mut verified_end: u64 = 0;
    let mut unterminated_tail = false;
    {
        let mut reader = std::io::BufReader::new(&mut file);
        let mut raw = Vec::new();
        loop {
            raw.clear();
            if reader.read_until(b'\n', &mut raw)? == 0 {
                break;
            }
            if classify_line(&raw).is_err() {
                break;
            }
            verified_end += raw.len() as u64;
            unterminated_tail = raw.last() != Some(&b'\n');
        }
    }
    let dropped = total - verified_end;
    if dropped > 0 {
        file.set_len(verified_end)?;
    }
    if unterminated_tail {
        // The checksum covers the text only, so supplying the missing
        // terminator re-validates the line without altering the command.
        file.seek(SeekFrom::End(0))?;
        file.write_all(b"\n")?;
    }
    if dropped > 0 || unterminated_tail {
        file.sync_all()?;
    }
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use txtime_core::RelationType;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn journal_round_trip() {
        let cmds = vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::delete_relation("emp"),
        ];
        let mut buf = Vec::new();
        for c in &cmds {
            append_command(&mut buf, c).unwrap();
        }
        let entries = read_journal(Cursor::new(buf)).unwrap();
        assert_eq!(entries.len(), 2);
        for (e, c) in entries.iter().zip(&cmds) {
            match e {
                WalEntry::Command(got) => assert_eq!(got, c),
                WalEntry::Corrupt { reason, .. } => panic!("corrupt: {reason}"),
            }
        }
    }

    #[test]
    fn group_append_is_byte_identical_to_singles() {
        let cmds = vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::define_relation("dept", RelationType::Snapshot),
            Command::delete_relation("dept"),
        ];
        let mut singles = Vec::new();
        for c in &cmds {
            append_command(&mut singles, c).unwrap();
        }
        let mut grouped = Vec::new();
        append_commands(&mut grouped, &cmds).unwrap();
        assert_eq!(singles, grouped);
        let entries = read_journal(Cursor::new(grouped)).unwrap();
        assert_eq!(entries.len(), 3);
        for (e, c) in entries.iter().zip(&cmds) {
            match e {
                WalEntry::Command(got) => assert_eq!(got, c),
                WalEntry::Corrupt { reason, .. } => panic!("corrupt: {reason}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Snapshot),
        )
        .unwrap();
        // Flip a byte in the command text.
        let pos = buf.len() - 3;
        buf[pos] ^= 0x01;
        let entries = read_journal(Cursor::new(buf)).unwrap();
        assert!(matches!(entries[0], WalEntry::Corrupt { line: 1, .. }));
    }

    #[test]
    fn garbage_lines_are_flagged_not_fatal() {
        let data = b"nonsense\n".to_vec();
        let entries = read_journal(Cursor::new(data)).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(matches!(entries[0], WalEntry::Corrupt { .. }));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let entries = read_journal(Cursor::new(b"\n\n".to_vec())).unwrap();
        assert!(entries.is_empty());
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("txtime-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn truncation_drops_the_corrupt_tail_and_keeps_appends_recoverable() {
        let path = tmpfile("truncate-tail");
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Rollback),
        )
        .unwrap();
        let good_len = buf.len() as u64;
        // A torn final write: half a line of garbage, no terminator.
        buf.extend_from_slice(b"deadbeef torn garb");
        std::fs::write(&path, &buf).unwrap();

        let dropped = truncate_to_verified_prefix(&path).unwrap();
        assert_eq!(dropped, 18);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);

        // The append-after-repair story: a new command lands on a fresh
        // line and a second recovery replays BOTH commands — the exact
        // acked-write-loss scenario the repair exists to prevent.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        append_command(&mut file, &Command::delete_relation("e")).unwrap();
        drop(file);
        let entries = read_journal(Cursor::new(std::fs::read(&path).unwrap())).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(
            entries.iter().all(|e| matches!(e, WalEntry::Command(_))),
            "{entries:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_terminates_a_valid_unterminated_final_line() {
        let path = tmpfile("truncate-unterminated");
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Rollback),
        )
        .unwrap();
        // Tear off only the final newline: the line still verifies, but a
        // naive append would merge the next entry into it.
        buf.pop();
        std::fs::write(&path, &buf).unwrap();

        assert_eq!(truncate_to_verified_prefix(&path).unwrap(), 0);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        append_command(&mut file, &Command::delete_relation("e")).unwrap();
        drop(file);
        let entries = read_journal(Cursor::new(std::fs::read(&path).unwrap())).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(
            entries.iter().all(|e| matches!(e, WalEntry::Command(_))),
            "{entries:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_is_a_noop_on_a_clean_journal() {
        let path = tmpfile("truncate-clean");
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Rollback),
        )
        .unwrap();
        append_command(&mut buf, &Command::delete_relation("e")).unwrap();
        std::fs::write(&path, &buf).unwrap();
        assert_eq!(truncate_to_verified_prefix(&path).unwrap(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), buf);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_utf8_is_corruption_not_io_failure() {
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Snapshot),
        )
        .unwrap();
        buf.extend_from_slice(&[0xff, 0xfe, 0x00, b'\n']);
        let entries = read_journal(Cursor::new(buf)).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(matches!(entries[0], WalEntry::Command(_)));
        assert!(matches!(
            &entries[1],
            WalEntry::Corrupt { line: 2, reason } if reason.contains("UTF-8")
        ));
    }
}
