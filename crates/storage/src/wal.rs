//! The write-ahead log: a textual journal of mutating commands.
//!
//! The log format is the language's own surface syntax, one command per
//! line (the pretty-printer escapes newlines inside string literals, so a
//! command is always a single line), prefixed by an FNV-1a checksum of
//! the command text:
//!
//! ```text
//! a63bc9b2e1ef3c04 define_relation(emp, rollback);
//! 4c8f02d19a77be5d modify_state(emp, {(name: str): ("alice")});
//! ```
//!
//! Using the surface syntax as the journal format means recovery is
//! *replay*: parse each line and re-execute it. Correctness then follows
//! from the determinism of the semantics — the same command sequence from
//! the empty database yields the same database (§3.6).

use std::io::{BufRead, Write};

use txtime_core::Command;
use txtime_parser::print::print_command;

/// 64-bit FNV-1a, used as a line checksum (corruption detection, not
/// cryptographic integrity).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Appends one command to the journal.
pub fn append_command(out: &mut impl Write, cmd: &Command) -> std::io::Result<()> {
    let text = format!("{};", print_command(cmd));
    writeln!(out, "{:016x} {}", fnv1a(text.as_bytes()), text)
}

/// Appends a group of commands as one contiguous write: every line is
/// formatted into a single buffer first and handed to the sink with one
/// `write_all`, so a group commit pays one system call — and, at the
/// caller's choosing, one fsync — for the whole batch. The journal
/// contents are byte-identical to appending the commands one at a time.
pub fn append_commands<'a>(
    out: &mut impl Write,
    cmds: impl IntoIterator<Item = &'a Command>,
) -> std::io::Result<()> {
    let mut buf = Vec::new();
    for cmd in cmds {
        append_command(&mut buf, cmd)?;
    }
    out.write_all(&buf)
}

/// A recovered journal entry or the reason it was rejected.
#[derive(Debug)]
pub enum WalEntry {
    /// A verified, parsed command.
    Command(Command),
    /// A line whose checksum or syntax was invalid (with the 1-based line
    /// number and a description).
    Corrupt {
        /// 1-based line number in the journal.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

/// Reads a journal, yielding verified commands and flagging corrupt
/// lines. Blank lines are ignored; bytes that are not valid UTF-8 (torn
/// or overwritten sectors) flag the line as corrupt rather than aborting
/// recovery.
pub fn read_journal(mut input: impl BufRead) -> std::io::Result<Vec<WalEntry>> {
    let mut out = Vec::new();
    let mut lineno = 0;
    let mut raw = Vec::new();
    loop {
        raw.clear();
        if input.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        lineno += 1;
        let Ok(line) = std::str::from_utf8(&raw) else {
            out.push(WalEntry::Corrupt {
                line: lineno,
                reason: "invalid UTF-8".into(),
            });
            continue;
        };
        let line = line.trim_end_matches('\n');
        if line.trim().is_empty() {
            continue;
        }
        let Some((sum, text)) = line.split_once(' ') else {
            out.push(WalEntry::Corrupt {
                line: lineno,
                reason: "missing checksum field".into(),
            });
            continue;
        };
        let Ok(expected) = u64::from_str_radix(sum, 16) else {
            out.push(WalEntry::Corrupt {
                line: lineno,
                reason: "malformed checksum".into(),
            });
            continue;
        };
        if fnv1a(text.as_bytes()) != expected {
            out.push(WalEntry::Corrupt {
                line: lineno,
                reason: "checksum mismatch".into(),
            });
            continue;
        }
        match txtime_parser::parse_command(text.trim_end_matches(';')) {
            Ok(cmd) => out.push(WalEntry::Command(cmd)),
            Err(e) => out.push(WalEntry::Corrupt {
                line: lineno,
                reason: format!("parse error: {e}"),
            }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use txtime_core::RelationType;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn journal_round_trip() {
        let cmds = vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::delete_relation("emp"),
        ];
        let mut buf = Vec::new();
        for c in &cmds {
            append_command(&mut buf, c).unwrap();
        }
        let entries = read_journal(Cursor::new(buf)).unwrap();
        assert_eq!(entries.len(), 2);
        for (e, c) in entries.iter().zip(&cmds) {
            match e {
                WalEntry::Command(got) => assert_eq!(got, c),
                WalEntry::Corrupt { reason, .. } => panic!("corrupt: {reason}"),
            }
        }
    }

    #[test]
    fn group_append_is_byte_identical_to_singles() {
        let cmds = vec![
            Command::define_relation("emp", RelationType::Rollback),
            Command::define_relation("dept", RelationType::Snapshot),
            Command::delete_relation("dept"),
        ];
        let mut singles = Vec::new();
        for c in &cmds {
            append_command(&mut singles, c).unwrap();
        }
        let mut grouped = Vec::new();
        append_commands(&mut grouped, &cmds).unwrap();
        assert_eq!(singles, grouped);
        let entries = read_journal(Cursor::new(grouped)).unwrap();
        assert_eq!(entries.len(), 3);
        for (e, c) in entries.iter().zip(&cmds) {
            match e {
                WalEntry::Command(got) => assert_eq!(got, c),
                WalEntry::Corrupt { reason, .. } => panic!("corrupt: {reason}"),
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Snapshot),
        )
        .unwrap();
        // Flip a byte in the command text.
        let pos = buf.len() - 3;
        buf[pos] ^= 0x01;
        let entries = read_journal(Cursor::new(buf)).unwrap();
        assert!(matches!(entries[0], WalEntry::Corrupt { line: 1, .. }));
    }

    #[test]
    fn garbage_lines_are_flagged_not_fatal() {
        let data = b"nonsense\n".to_vec();
        let entries = read_journal(Cursor::new(data)).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(matches!(entries[0], WalEntry::Corrupt { .. }));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let entries = read_journal(Cursor::new(b"\n\n".to_vec())).unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn invalid_utf8_is_corruption_not_io_failure() {
        let mut buf = Vec::new();
        append_command(
            &mut buf,
            &Command::define_relation("e", RelationType::Snapshot),
        )
        .unwrap();
        buf.extend_from_slice(&[0xff, 0xfe, 0x00, b'\n']);
        let entries = read_journal(Cursor::new(buf)).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(matches!(entries[0], WalEntry::Command(_)));
        assert!(matches!(
            &entries[1],
            WalEntry::Corrupt { line: 2, reason } if reason.contains("UTF-8")
        ));
    }
}
